//! A social-feed + analytics scenario on a synthetic Twitter stream.
//!
//! The paper's motivating application: ingest a high-velocity tweet
//! stream, then serve (a) "most recent posts by user X" feed queries
//! (small top-K — where Lazy shines) and (b) unbounded time-window
//! analytics (where zone maps on the Embedded CreationTime index prune
//! nearly everything).
//!
//! ```text
//! cargo run --release --example twitter_analytics
//! ```

use leveldbpp::workload::{SeedStats, TweetGenerator};
use leveldbpp::{DbOptions, Document, IndexKind, SecondaryDb, Value};
use std::time::Instant;

fn main() -> leveldbpp::Result<()> {
    const TWEETS: usize = 20_000;

    let db = SecondaryDb::open_in_memory(
        DbOptions::small(),
        &[
            ("UserID", IndexKind::LazyStandalone),
            ("CreationTime", IndexKind::Embedded),
        ],
    )?;

    // --- Ingest phase -----------------------------------------------------
    let mut generator = TweetGenerator::new(SeedStats::compact(), TWEETS, 2024);
    let start = Instant::now();
    let mut heaviest_user = String::new();
    let mut heaviest_count = 0usize;
    let mut per_user = std::collections::HashMap::new();
    let mut first_ts = None;
    let mut last_ts = 0;
    for _ in 0..TWEETS {
        let t = generator.next_tweet();
        let doc = Document::from_value(t.document())?;
        db.put(&t.id, &doc)?;
        let c = per_user.entry(t.user.clone()).or_insert(0usize);
        *c += 1;
        if *c > heaviest_count {
            heaviest_count = *c;
            heaviest_user = t.user.clone();
        }
        first_ts.get_or_insert(t.creation_time);
        last_ts = t.creation_time;
    }
    let ingest = start.elapsed();
    println!(
        "ingested {TWEETS} tweets in {:.2}s ({:.0} ops/s), {} users, db {} KiB",
        ingest.as_secs_f64(),
        TWEETS as f64 / ingest.as_secs_f64(),
        per_user.len(),
        db.total_bytes() / 1024,
    );

    // --- Feed queries: top-10 latest posts of the heaviest poster ---------
    let start = Instant::now();
    let feed = db.lookup("UserID", &Value::str(heaviest_user.clone()), Some(10))?;
    println!(
        "\nfeed: latest 10 of {} ({} posts total) in {:?}:",
        heaviest_user,
        heaviest_count,
        start.elapsed()
    );
    for h in feed.iter().take(3) {
        let text = h.doc.get("Text").and_then(|t| t.as_str()).unwrap_or("");
        println!(
            "  {} @{}: {:.30}…",
            String::from_utf8_lossy(&h.key),
            h.seq,
            text
        );
    }
    assert_eq!(feed.len(), 10);
    for w in feed.windows(2) {
        assert!(w[0].seq > w[1].seq, "feed must be newest-first");
    }

    // --- Analytics: tweets-per-minute histogram over a window -------------
    let t0 = first_ts.unwrap();
    let window_lo = t0 + (last_ts - t0) / 3;
    let window_hi = window_lo + 300; // five minutes
    let start = Instant::now();
    let hits = db.range_lookup(
        "CreationTime",
        &Value::Int(window_lo),
        &Value::Int(window_hi),
        None,
    )?;
    let mut histogram = std::collections::BTreeMap::new();
    for h in &hits {
        let ts = h.doc.get("CreationTime").unwrap().as_int().unwrap();
        *histogram.entry((ts - window_lo) / 60).or_insert(0usize) += 1;
    }
    println!(
        "\nanalytics: {} tweets in a 5-minute window (zone-map pruned scan, {:?}):",
        hits.len(),
        start.elapsed()
    );
    for (minute, count) in &histogram {
        println!(
            "  minute {minute}: {count} tweets {}",
            "#".repeat(count / 20 + 1)
        );
    }
    assert!(!hits.is_empty());

    // --- Moderation: delete a user's posts and verify they vanish ---------
    let victim = feed[0].key.clone();
    db.delete(&victim)?;
    let after = db.lookup("UserID", &Value::str(heaviest_user), Some(10))?;
    assert!(after.iter().all(|h| h.key != victim));
    println!(
        "\ndeleted {} — feed updated, all consistent",
        String::from_utf8_lossy(&victim)
    );
    Ok(())
}
