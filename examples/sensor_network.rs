//! A wireless-sensor-network store on the Embedded Index.
//!
//! The paper's space-constrained use case: "to create a local key-value
//! store on a mobile device ... a sensor generates data of the form
//! (measurement id, temperature, humidity) and needs support for secondary
//! attribute queries". The Embedded Index adds *no* separate index table —
//! perfect where flash space is the bottleneck — while range queries on the
//! time-correlated measurement id are served almost entirely from zone
//! maps.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use leveldbpp::{DbOptions, Document, IndexKind, SecondaryDb, Value};

fn main() -> leveldbpp::Result<()> {
    const READINGS: usize = 15_000;

    // Both attributes embedded: zero extra tables on flash.
    let db = SecondaryDb::open_in_memory(
        DbOptions::small(),
        &[
            ("SensorID", IndexKind::Embedded),
            ("Timestamp", IndexKind::Embedded),
        ],
    )?;

    // Simulate 8 sensors reporting on a shared clock with a deterministic
    // pseudo-random walk per sensor.
    let mut temps = [20.0f64; 8];
    let mut state = 0x5eed_5eedu64;
    let mut rand01 = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 10_000) as f64 / 10_000.0
    };
    for i in 0..READINGS {
        let sensor = i % 8;
        temps[sensor] += rand01() - 0.5;
        let mut doc = Document::new();
        doc.set("SensorID", Value::str(format!("s{sensor}")))
            .set("Timestamp", Value::Int(1_700_000_000 + i as i64))
            .set(
                "TemperatureMilli",
                Value::Int((temps[sensor] * 1000.0) as i64),
            )
            .set("HumidityPct", Value::Int((40.0 + 20.0 * rand01()) as i64));
        db.put(format!("m{i:08}"), &doc)?;
    }
    db.flush()?;

    println!(
        "stored {READINGS} readings; primary {} KiB, index tables {} B (embedded ⇒ zero)",
        db.primary_bytes() / 1024,
        db.index_bytes()
    );
    assert_eq!(db.index_bytes(), 0);

    // Recent readings from one sensor (validity checks skip overwritten
    // measurements automatically).
    let recent = db.lookup("SensorID", &Value::str("s3"), Some(5))?;
    println!("\nlatest 5 readings from s3:");
    for h in &recent {
        println!(
            "  {}: temp {:.1}°C",
            String::from_utf8_lossy(&h.key),
            h.doc.get("TemperatureMilli").unwrap().as_int().unwrap() as f64 / 1000.0
        );
    }
    assert_eq!(recent.len(), 5);

    // A time-window query over the measurement clock: zone maps prune all
    // files/blocks outside the window, so this touches a tiny slice of the
    // store. Compare I/O before and after to see it.
    let before = db.primary_io();
    let window = db.range_lookup(
        "Timestamp",
        &Value::Int(1_700_005_000),
        &Value::Int(1_700_005_299),
        None,
    )?;
    let io = db.primary_io().since(&before);
    println!(
        "\ntime-window query: {} readings, {} block reads, {} blocks zone-pruned, {} files pruned",
        window.len(),
        io.block_reads,
        io.zonemap_prunes,
        io.file_zonemap_prunes,
    );
    assert_eq!(window.len(), 300);
    assert!(
        io.file_zonemap_prunes + io.zonemap_prunes > 0,
        "zone maps should have pruned something"
    );

    // Retention: drop the oldest 1000 measurements; space is reclaimed by
    // compaction with no index table to repair.
    for i in 0..1000 {
        db.delete(format!("m{i:08}"))?;
    }
    db.flush()?;
    let survivors = db.range_lookup(
        "Timestamp",
        &Value::Int(1_700_000_000),
        &Value::Int(1_700_000_999),
        None,
    )?;
    assert!(survivors.is_empty());
    println!("\nretention pass dropped 1000 oldest readings; window now empty ✓");
    Ok(())
}
