//! Run the YCSB core workloads (A–F) against the store and report
//! throughput — the standard primary-key benchmark the paper's generator
//! extends with secondary-attribute control.
//!
//! ```text
//! cargo run --release --example ycsb
//! ```

use leveldbpp::workload::{YcsbKind, YcsbOp, YcsbWorkload};
use leveldbpp::{DbOptions, Document, IndexKind, SecondaryDb, Value};
use std::time::Instant;

fn main() -> leveldbpp::Result<()> {
    const RECORDS: usize = 5_000;
    const OPS: usize = 20_000;

    println!("YCSB core workloads: {RECORDS} records, {OPS} ops each\n");
    println!("{:<9} {:>12} {:>10}  note", "workload", "ops/sec", "µs/op");

    for (kind, note) in [
        (YcsbKind::A, "50/50 read/update, zipfian"),
        (YcsbKind::B, "95/5 read/update"),
        (YcsbKind::C, "read-only"),
        (YcsbKind::D, "read-latest + inserts"),
        (YcsbKind::E, "short scans + inserts"),
        (YcsbKind::F, "read-modify-write"),
    ] {
        let db = SecondaryDb::open_in_memory(DbOptions::small(), &[("UserID", IndexKind::None)])?;
        let mut workload = YcsbWorkload::new(kind, RECORDS, 7);
        for t in workload.load_phase(RECORDS) {
            db.put(&t.id, &Document::from_value(t.document())?)?;
        }
        db.flush()?;

        let start = Instant::now();
        for _ in 0..OPS {
            match workload.next_op() {
                YcsbOp::Read { key } => {
                    db.get(&key)?;
                }
                YcsbOp::Update(t) | YcsbOp::Insert(t) => {
                    db.put(&t.id, &Document::from_value(t.document())?)?;
                }
                YcsbOp::Scan { start, len } => {
                    db.scan_primary(&start, "t999999999", Some(len))?;
                }
                YcsbOp::ReadModifyWrite(t) => {
                    if let Some(mut doc) = db.get(&t.id)? {
                        doc.set("Text", Value::str("rmw"));
                        db.put(&t.id, &doc)?;
                    }
                }
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{:<9} {:>12.0} {:>10.1}  {}",
            format!("YCSB-{}", kind.name()),
            OPS as f64 / elapsed,
            elapsed * 1e6 / OPS as f64,
            note
        );
    }
    Ok(())
}
