//! Build a small on-disk database — the seeder for tooling walkthroughs
//! and the CI repair smoke stage (`scripts/repair_smoke.sh`).
//!
//! ```text
//! cargo run --release --example seed_db -- path/to/dbdir [records=400]
//! ```
//!
//! Writes `records` JSON documents (primary keys `rec00000`…) spanning
//! several data blocks, flushes, and exits. The directory can then be
//! inspected with `ldbpp_tool`, validated with `check`, corrupted by
//! hand, and salvaged with `ldbpp_tool repair`.
//!
//! Set `LDBPP_SHARDS=N` to seed a hash-partitioned database instead
//! (DESIGN.md §15) — the CI sharded smoke stage seeds a 2-shard one and
//! runs `ldbpp_tool check` over it.

use leveldbpp::{DbOptions, DiskEnv, Document, IndexKind, SecondaryDb, SecondaryDbOptions, Value};

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(dir) = args.next() else {
        eprintln!("usage: seed_db <db-dir> [records]");
        std::process::exit(2);
    };
    let records: usize = args.next().and_then(|n| n.parse().ok()).unwrap_or(400);
    let db = SecondaryDb::open(
        DiskEnv::new(),
        &dir,
        SecondaryDbOptions {
            base: DbOptions::small(),
            shards: SecondaryDbOptions::shards_from_env(),
            ..Default::default()
        },
        &[("UserID", IndexKind::Embedded)],
    )
    .expect("open");
    for i in 0..records {
        let mut doc = Document::new();
        doc.set("UserID", Value::str(format!("u{}", i % 16)))
            .set("N", Value::Int(i as i64))
            .set("Body", Value::str("x".repeat(48)));
        db.put(format!("rec{i:05}"), &doc).expect("put");
    }
    db.flush().expect("flush");
    println!("seeded {records} records into {dir}");
}
