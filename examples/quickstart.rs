//! Quickstart: open a LevelDB++ database, write JSON records, and query
//! them by primary key, by a secondary attribute, and by attribute range.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use leveldbpp::{DbOptions, Document, IndexKind, SecondaryDb, Value};

fn main() -> leveldbpp::Result<()> {
    // A database with two secondary indexes, picking a different technique
    // for each attribute: posting lists with lazy maintenance for UserID,
    // and the zero-space Embedded Index (bloom filters + zone maps inside
    // the primary SSTables) for the time-correlated CreationTime.
    let db = SecondaryDb::open_in_memory(
        DbOptions::small(),
        &[
            ("UserID", IndexKind::LazyStandalone),
            ("CreationTime", IndexKind::Embedded),
        ],
    )?;

    // PUT a few tweets.
    for (id, user, time, text) in [
        ("t1", "alice", 100, "hello world"),
        ("t2", "bob", 105, "good morning"),
        ("t3", "alice", 112, "another tweet"),
        ("t4", "carol", 118, "rust is fun"),
        ("t5", "alice", 125, "third one"),
    ] {
        let mut doc = Document::new();
        doc.set("UserID", Value::str(user))
            .set("CreationTime", Value::Int(time))
            .set("Text", Value::str(text));
        db.put(id, &doc)?;
    }

    // GET by primary key.
    let t2 = db.get("t2")?.expect("t2 exists");
    println!("GET t2             -> {t2}");

    // Overwrite and delete behave like any LSM store.
    let mut edited = db.get("t4")?.unwrap();
    edited.set("Text", Value::str("rust is VERY fun"));
    db.put("t4", &edited)?;
    db.delete("t2")?;
    assert!(db.get("t2")?.is_none());

    // LOOKUP: the 2 most recent tweets by alice.
    let hits = db.lookup("UserID", &Value::str("alice"), Some(2))?;
    println!("LOOKUP alice top-2 ->");
    for h in &hits {
        println!(
            "  {} (seq {}): {}",
            String::from_utf8_lossy(&h.key),
            h.seq,
            h.doc
        );
    }
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].key, b"t5");

    // RANGELOOKUP on the time-correlated attribute: zone maps prune the
    // scan down to the blocks that can overlap [110, 120].
    let window = db.range_lookup("CreationTime", &Value::Int(110), &Value::Int(120), None)?;
    println!("RANGELOOKUP CreationTime in [110, 120] ->");
    for h in &window {
        println!("  {}: {}", String::from_utf8_lossy(&h.key), h.doc);
    }
    assert_eq!(window.len(), 2); // t3 and t4 (t2 was deleted)

    println!(
        "sizes: primary {} B, index tables {} B",
        db.primary_bytes(),
        db.index_bytes()
    );
    Ok(())
}
