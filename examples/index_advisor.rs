//! The index advisor — the paper's Figure 2 decision strategy, executable.
//!
//! Describes a few application workloads, asks the advisor which index
//! technique to use, then *verifies the advice empirically* by running the
//! workload against every technique and comparing cost.
//!
//! ```text
//! cargo run --release --example index_advisor
//! ```

use leveldbpp::advisor::{recommend, WorkloadProfile};
use leveldbpp::workload::{MixedKind, MixedWorkload, Operation, SeedStats};
use leveldbpp::{DbOptions, Document, IndexKind, SecondaryDb, Value};
use std::time::Instant;

fn run_workload(kind: IndexKind, mixed: MixedKind, ops: usize) -> (f64, u64) {
    let db = SecondaryDb::open_in_memory(DbOptions::small(), &[("UserID", kind)]).unwrap();
    let mut workload = MixedWorkload::new(mixed, SeedStats::compact(), ops, Some(10), 99);
    let start = Instant::now();
    for _ in 0..ops {
        match workload.next_op() {
            Operation::Put(t) | Operation::Update(t) => {
                let doc = Document::from_value(t.document()).unwrap();
                db.put(&t.id, &doc).unwrap();
            }
            Operation::Get { key } => {
                let _ = db.get(&key).unwrap();
            }
            Operation::LookupUser { user, k } => {
                let _ = db.lookup("UserID", &Value::str(user), k).unwrap();
            }
            _ => {}
        }
    }
    let us_per_op = start.elapsed().as_secs_f64() * 1e6 / ops as f64;
    (us_per_op, db.total_bytes())
}

fn main() {
    let scenarios = [
        (
            "sensor ingest (write-heavy, rare lookups)",
            WorkloadProfile {
                write_fraction: 0.8,
                lookup_fraction: 0.04,
                time_correlated: false,
                space_constrained: false,
                small_top_k: true,
            },
            Some(MixedKind::WriteHeavy),
        ),
        (
            "social feed (read-heavy, small top-K)",
            WorkloadProfile {
                write_fraction: 0.2,
                lookup_fraction: 0.10,
                time_correlated: false,
                space_constrained: false,
                small_top_k: true,
            },
            Some(MixedKind::ReadHeavy),
        ),
        (
            "time-series dashboard (time-correlated attribute)",
            WorkloadProfile {
                time_correlated: true,
                ..WorkloadProfile::balanced()
            },
            None,
        ),
        (
            "analytics export (unbounded group-by scans)",
            WorkloadProfile {
                write_fraction: 0.3,
                lookup_fraction: 0.4,
                time_correlated: false,
                space_constrained: false,
                small_top_k: false,
            },
            None,
        ),
    ];

    for (name, profile, empirical) in scenarios {
        let rec = recommend(&profile);
        println!("\n### {name}");
        println!("advisor says: {}", rec.kind);
        for reason in &rec.reasons {
            println!("  - {reason}");
        }

        if let Some(mixed) = empirical {
            println!("  empirical check ({} mix, 12k ops):", mixed.name());
            let mut best: Option<(IndexKind, f64)> = None;
            for kind in [
                IndexKind::Embedded,
                IndexKind::LazyStandalone,
                IndexKind::CompositeStandalone,
            ] {
                let (us, bytes) = run_workload(kind, mixed, 12_000);
                println!("    {kind:<10} {us:>8.1} µs/op  {:>7} KiB", bytes / 1024);
                if best.map(|(_, b)| us < b).unwrap_or(true) {
                    best = Some((kind, us));
                }
            }
            if let Some((winner, _)) = best {
                println!("    fastest measured: {winner}");
            }
        }
    }
    println!();
}
