//! Tier-1 crash-recovery smoke test through the `leveldbpp` facade.
//!
//! A bounded version of the exhaustive harnesses in
//! `crates/lsm/tests/crash.rs` and `crates/core/tests/crash_secondary.rs`:
//! one mixed workload per index technique, crashed at a spread of I/O
//! operation indices, reopened, and checked for primary/secondary
//! equivalence. Kept deliberately small so the root test suite stays fast;
//! the per-crate harnesses do the full per-index, per-mode sweeps.

use leveldbpp::{Document, FaultEnv, IndexKind, MemEnv, SecondaryDb, SecondaryDbOptions, Value};
use std::collections::BTreeSet;
use std::sync::Arc;

const ATTR: &str = "City";

fn doc(city: &str, n: i64) -> Document {
    let mut d = Document::new();
    d.set(ATTR, Value::str(city));
    d.set("N", Value::Int(n));
    d
}

fn opts() -> SecondaryDbOptions {
    let mut base = leveldbpp::DbOptions::small();
    base.write_buffer_size = 1024;
    SecondaryDbOptions {
        base,
        // CI re-runs this suite with LDBPP_SHARDS=2 to sweep the sharded
        // engine through the same crash points (scripts/ci.sh).
        shards: SecondaryDbOptions::shards_from_env(),
        ..Default::default()
    }
}

/// Drive a fixed workload against a fault env, crashing at op `crash_at`;
/// return the image and the set of acknowledged puts (pk, city).
fn run(kind: IndexKind, crash_at: u64) -> (Arc<MemEnv>, Vec<(String, String)>) {
    let mem = MemEnv::new();
    let fenv = FaultEnv::new(mem.clone());
    fenv.set_crash_point(crash_at);
    let mut acked = Vec::new();
    if let Ok(db) = SecondaryDb::open(fenv, "db", opts(), &[(ATTR, kind)]) {
        for i in 0..12i64 {
            let pk = format!("k{i}");
            let city = format!("city{}", i % 3);
            if db.put(&pk, &doc(&city, i)).is_ok() {
                acked.push((pk, city));
            }
            if i == 6 {
                let _ = db.flush();
            }
        }
    }
    (mem.deep_clone(), acked)
}

#[test]
fn crash_recovery_smoke_all_index_kinds() {
    for kind in [
        IndexKind::Embedded,
        IndexKind::EagerStandalone,
        IndexKind::LazyStandalone,
        IndexKind::CompositeStandalone,
        IndexKind::None,
    ] {
        // Probe for the total op count, then crash at a spread of points.
        let total = {
            let mem = MemEnv::new();
            let fenv = FaultEnv::new(mem);
            let db = SecondaryDb::open(fenv.clone(), "db", opts(), &[(ATTR, kind)]).unwrap();
            for i in 0..12i64 {
                db.put(format!("k{i}"), &doc(&format!("city{}", i % 3), i))
                    .unwrap();
                if i == 6 {
                    db.flush().unwrap();
                }
            }
            drop(db);
            fenv.op_count()
        };

        let step = (total / 12).max(1);
        let mut k = 0;
        while k <= total {
            let (image, acked) = run(kind, k);
            let db = SecondaryDb::open(image, "db", opts(), &[(ATTR, kind)])
                .unwrap_or_else(|e| panic!("{kind:?}: reopen after crash at {k} failed: {e}"));

            // Every acked put is durable...
            for (pk, _) in &acked {
                assert!(
                    db.get(pk).unwrap().is_some(),
                    "{kind:?}: acked put {pk} lost after crash at op {k}"
                );
            }
            // ...and every index answer matches the recovered primary.
            for c in 0..3 {
                let city = format!("city{c}");
                let expect: BTreeSet<&str> = acked
                    .iter()
                    .filter(|(_, ct)| *ct == city)
                    .map(|(pk, _)| pk.as_str())
                    .collect();
                let got: BTreeSet<String> = db
                    .lookup(ATTR, &Value::str(city.clone()), None)
                    .unwrap()
                    .into_iter()
                    .map(|h| String::from_utf8(h.key).unwrap())
                    .collect();
                let got: BTreeSet<&str> = got.iter().map(String::as_str).collect();
                assert_eq!(
                    got, expect,
                    "{kind:?}: LOOKUP({city}) diverges after crash at op {k}"
                );
            }
            k += step;
        }
    }
}

/// Transient write errors surface as `Err` and the engine recovers: the
/// failure-model contract in DESIGN.md §11, exercised end-to-end.
#[test]
fn transient_fault_surfaces_and_reopen_recovers() {
    use leveldbpp::{FaultOp, FaultPlan};
    let mem = MemEnv::new();
    let fenv = FaultEnv::new(mem.clone());
    let db = SecondaryDb::open(
        fenv.clone(),
        "db",
        opts(),
        &[(ATTR, IndexKind::LazyStandalone)],
    )
    .unwrap();
    for i in 0..4i64 {
        db.put(format!("k{i}"), &doc("gent", i)).unwrap();
    }
    fenv.set_plan(FaultPlan {
        fail_kind_at: Some((FaultOp::Append, 0)),
        ..FaultPlan::default()
    });
    assert!(
        db.put("k9", &doc("gent", 9)).is_err(),
        "injected fault must surface"
    );
    fenv.clear_plan();
    drop(db);

    let db = SecondaryDb::open(
        mem.deep_clone(),
        "db",
        opts(),
        &[(ATTR, IndexKind::LazyStandalone)],
    )
    .unwrap();
    assert!(
        db.get("k9").unwrap().is_none(),
        "un-acked write must be absent"
    );
    let hits = db.lookup(ATTR, &Value::str("gent"), None).unwrap();
    assert_eq!(hits.len(), 4, "acked writes must survive reopen");
    db.put("k9", &doc("gent", 9)).unwrap();
}
