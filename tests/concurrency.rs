//! Concurrency stress: the paper's Appendix C examines concurrency effects
//! on the index variants; here we verify the engine is safe and coherent
//! under concurrent readers + a writer (the engine serializes internally —
//! these tests pin down absence of deadlocks, panics and torn reads).

use crossbeam::thread;
use leveldbpp::{DbOptions, Document, IndexKind, SecondaryDb, Value};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn opts() -> DbOptions {
    DbOptions {
        block_size: 512,
        write_buffer_size: 8 << 10,
        max_file_size: 4 << 10,
        base_level_bytes: 32 << 10,
        ..DbOptions::small()
    }
}

#[test]
fn concurrent_readers_during_writes() {
    let db = Arc::new(
        SecondaryDb::open_in_memory(opts(), &[("UserID", IndexKind::LazyStandalone)]).unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicUsize::new(0));

    thread::scope(|s| {
        // Writer: streams tweets in.
        {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            let written = written.clone();
            s.spawn(move |_| {
                for i in 0..4000usize {
                    let mut doc = Document::new();
                    doc.set("UserID", Value::str(format!("u{}", i % 10)))
                        .set("Text", Value::str(format!("tweet {i}")));
                    db.put(format!("t{i:06}"), &doc).unwrap();
                    written.store(i + 1, Ordering::Release);
                }
                stop.store(true, Ordering::Release);
            });
        }
        // GET readers: whatever was acknowledged written must be readable.
        for reader in 0..3 {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            let written = written.clone();
            s.spawn(move |_| {
                let mut checked = 0usize;
                while !stop.load(Ordering::Acquire) || checked < 100 {
                    let upto = written.load(Ordering::Acquire);
                    if upto == 0 {
                        continue;
                    }
                    let i = (checked * 7919 + reader) % upto;
                    let doc = db.get(format!("t{i:06}")).unwrap();
                    assert!(doc.is_some(), "acknowledged write t{i:06} must be visible");
                    checked += 1;
                    if checked > 5000 {
                        break;
                    }
                }
            });
        }
        // LOOKUP reader: results are always internally consistent.
        {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            s.spawn(move |_| {
                let mut rounds = 0;
                while !stop.load(Ordering::Acquire) && rounds < 500 {
                    let hits = db.lookup("UserID", &Value::str("u3"), Some(5)).unwrap();
                    for w in hits.windows(2) {
                        assert!(w[0].seq > w[1].seq, "ordering under concurrency");
                    }
                    for h in &hits {
                        assert_eq!(h.doc.get("UserID").unwrap().as_str(), Some("u3"));
                    }
                    rounds += 1;
                }
            });
        }
    })
    .unwrap();

    // Post-conditions: everything written is indexed.
    let total: usize = (0..10)
        .map(|u| {
            db.lookup("UserID", &Value::str(format!("u{u}")), None)
                .unwrap()
                .len()
        })
        .sum();
    assert_eq!(total, 4000);
}

#[test]
fn background_pipeline_writer_readers_stress() {
    use leveldbpp::{Db, MemEnv};
    let env = MemEnv::new();
    let bg_opts = DbOptions {
        background_work: true,
        l0_slowdown_trigger: 6,
        l0_stall_trigger: 10,
        ..opts()
    };
    let db = Arc::new(Db::open(env.clone(), "bgdb", bg_opts.clone()).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    let written = Arc::new(AtomicUsize::new(0));
    const N: usize = 3000;

    thread::scope(|s| {
        // Writer: the flush/compaction worker runs concurrently the whole
        // time (tiny buffers force constant churn).
        {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            let written = written.clone();
            s.spawn(move |_| {
                let mut last_seq = 0u64;
                for i in 0..N {
                    let key = format!("k{i:06}");
                    let value = format!("{key}=v{i}:{}", "x".repeat(32));
                    let seq = db.put(key.as_bytes(), value.as_bytes()).unwrap();
                    assert!(seq > last_seq, "assigned sequences must be monotone");
                    last_seq = seq;
                    written.store(i + 1, Ordering::Release);
                }
                stop.store(true, Ordering::Release);
            });
        }
        // Readers: every acknowledged write must be readable in full (a
        // torn read would surface as a value mismatch), and the published
        // sequence number must never go backwards.
        for reader in 0..3usize {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            let written = written.clone();
            s.spawn(move |_| {
                let mut checked = 0usize;
                let mut seen_seq = 0u64;
                while !stop.load(Ordering::Acquire) || checked < 200 {
                    let seq = db.last_sequence();
                    assert!(seq >= seen_seq, "published sequence must be monotone");
                    seen_seq = seq;
                    let upto = written.load(Ordering::Acquire);
                    if upto == 0 {
                        continue;
                    }
                    let i = (checked * 6151 + reader) % upto;
                    let key = format!("k{i:06}");
                    let expected = format!("{key}=v{i}:{}", "x".repeat(32));
                    let got = db.get(key.as_bytes()).unwrap();
                    assert_eq!(
                        got.as_deref(),
                        Some(expected.as_bytes()),
                        "torn or missing read for {key}"
                    );
                    checked += 1;
                    if checked > 4000 {
                        break;
                    }
                }
            });
        }
    })
    .unwrap();

    // Settle the tree and re-verify everything.
    db.wait_for_background_idle().unwrap();
    for i in 0..N {
        let key = format!("k{i:06}");
        assert!(
            db.get(key.as_bytes()).unwrap().is_some(),
            "{key} must survive background churn"
        );
    }
    assert!(
        db.level_file_counts().iter().skip(1).any(|&n| n > 0),
        "background compactions should have populated deeper levels"
    );

    // Reopen from the same env: the WAL for a frozen-but-unflushed
    // memtable is only deleted after its flush installs, so recovery
    // replays every acknowledged write.
    drop(Arc::try_unwrap(db).unwrap_or_else(|_| panic!("all Db clones should be gone")));
    let db = Db::open(env, "bgdb", bg_opts).unwrap();
    for i in (0..N).step_by(97) {
        let key = format!("k{i:06}");
        assert!(
            db.get(key.as_bytes()).unwrap().is_some(),
            "{key} must survive reopen"
        );
    }
}

#[test]
fn background_secondary_db_indexes_stay_coherent() {
    let base = DbOptions {
        background_work: true,
        ..opts()
    };
    let db =
        Arc::new(SecondaryDb::open_in_memory(base, &[("UserID", IndexKind::Embedded)]).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    const N: usize = 2500;

    thread::scope(|s| {
        {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            s.spawn(move |_| {
                for i in 0..N {
                    let mut doc = Document::new();
                    doc.set("UserID", Value::str(format!("u{}", i % 10)))
                        .set("Text", Value::str(format!("tweet {i}")));
                    db.put(format!("t{i:06}"), &doc).unwrap();
                }
                stop.store(true, Ordering::Release);
            });
        }
        // Lookups race the writer and the flush worker; results must stay
        // internally consistent (recency-ordered, attribute matches).
        for _ in 0..2 {
            let db = Arc::clone(&db);
            let stop = stop.clone();
            s.spawn(move |_| {
                let mut rounds = 0;
                while !stop.load(Ordering::Acquire) && rounds < 400 {
                    let hits = db.lookup("UserID", &Value::str("u4"), Some(5)).unwrap();
                    for w in hits.windows(2) {
                        assert!(
                            w[0].seq > w[1].seq,
                            "recency ordering under churn: {:?}",
                            hits.iter()
                                .map(|h| (String::from_utf8_lossy(&h.key).into_owned(), h.seq))
                                .collect::<Vec<_>>()
                        );
                    }
                    for h in &hits {
                        assert_eq!(h.doc.get("UserID").unwrap().as_str(), Some("u4"));
                    }
                    rounds += 1;
                }
            });
        }
    })
    .unwrap();

    // After the worker settles, the index must account for every record.
    db.wait_for_background_idle().unwrap();
    let total: usize = (0..10)
        .map(|u| {
            db.lookup("UserID", &Value::str(format!("u{u}")), None)
                .unwrap()
                .len()
        })
        .sum();
    assert_eq!(total, N);
}

/// Contended writers through the group-commit queue: N threads × M keys
/// of disjoint key spaces, all writing concurrently. Every acknowledged
/// write must be readable with its exact value, per-writer sequence
/// numbers must be monotone in issue order, and the group-commit
/// accounting must cover every logical batch (grouped_writes == total
/// puts, histogram sums to the commit count).
#[test]
fn contended_writers_group_commit_correctness() {
    use leveldbpp::{Db, MemEnv};
    const THREADS: usize = 8;
    const M: usize = 400;

    let env = MemEnv::new();
    let bg_opts = DbOptions {
        background_work: true,
        ..opts()
    };
    let db = Arc::new(Db::open(env.clone(), "gcdb", bg_opts.clone()).unwrap());

    thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            s.spawn(move |_| {
                let mut last_seq = 0u64;
                for i in 0..M {
                    let key = format!("w{t}-{i:05}");
                    let value = format!("{key}={}", "g".repeat(24));
                    let seq = db.put(key.as_bytes(), value.as_bytes()).unwrap();
                    assert!(
                        seq > last_seq,
                        "writer {t}: sequence regressed ({seq} after {last_seq})"
                    );
                    last_seq = seq;
                }
            });
        }
    })
    .unwrap();

    db.wait_for_background_idle().unwrap();
    for t in 0..THREADS {
        for i in 0..M {
            let key = format!("w{t}-{i:05}");
            let expected = format!("{key}={}", "g".repeat(24));
            assert_eq!(
                db.get(key.as_bytes()).unwrap().as_deref(),
                Some(expected.as_bytes()),
                "acked write {key} lost or torn"
            );
        }
    }
    let snap = db.stats().snapshot();
    assert_eq!(snap.grouped_writes, (THREADS * M) as u64);
    assert!(snap.group_commits >= 1);
    assert_eq!(snap.group_size_hist.iter().sum::<u64>(), snap.group_commits);

    // Reopen: the grouped WAL records replay like any other batch.
    drop(Arc::try_unwrap(db).unwrap_or_else(|_| panic!("all Db clones should be gone")));
    let db = Db::open(env, "gcdb", bg_opts).unwrap();
    for t in 0..THREADS {
        for i in (0..M).step_by(89) {
            let key = format!("w{t}-{i:05}");
            assert!(
                db.get(key.as_bytes()).unwrap().is_some(),
                "{key} must survive reopen"
            );
        }
    }
}

/// Concurrent `SecondaryDb` writers: the index-first maintenance contract
/// holds per logical batch even when the primary writes of different
/// batches share one group commit — every acknowledged document must be
/// reachable both by primary GET and by index LOOKUP afterwards.
#[test]
fn contended_secondary_writers_stay_indexed() {
    const THREADS: usize = 4;
    const M: usize = 500;

    let base = DbOptions {
        background_work: true,
        ..opts()
    };
    let db = Arc::new(
        SecondaryDb::open_in_memory(base, &[("UserID", IndexKind::LazyStandalone)]).unwrap(),
    );

    thread::scope(|s| {
        for t in 0..THREADS {
            let db = Arc::clone(&db);
            s.spawn(move |_| {
                for i in 0..M {
                    let mut doc = Document::new();
                    doc.set("UserID", Value::str(format!("u{}", (t * M + i) % 10)))
                        .set("Text", Value::str(format!("tweet {t}/{i}")));
                    db.put(format!("c{t}-{i:05}"), &doc).unwrap();
                }
            });
        }
    })
    .unwrap();

    db.wait_for_background_idle().unwrap();
    for t in 0..THREADS {
        for i in 0..M {
            assert!(
                db.get(format!("c{t}-{i:05}")).unwrap().is_some(),
                "acked document c{t}-{i:05} lost"
            );
        }
    }
    let total: usize = (0..10)
        .map(|u| {
            db.lookup("UserID", &Value::str(format!("u{u}")), None)
                .unwrap()
                .len()
        })
        .sum();
    assert_eq!(total, THREADS * M, "index lost documents under contention");
}

#[test]
fn parallel_lookups_on_static_data_agree() {
    let db =
        Arc::new(SecondaryDb::open_in_memory(opts(), &[("UserID", IndexKind::Embedded)]).unwrap());
    for i in 0..2000usize {
        let mut doc = Document::new();
        doc.set("UserID", Value::str(format!("u{}", i % 7)));
        db.put(format!("t{i:05}"), &doc).unwrap();
    }
    db.flush().unwrap();
    let baseline: Vec<usize> = (0..7)
        .map(|u| {
            db.lookup("UserID", &Value::str(format!("u{u}")), None)
                .unwrap()
                .len()
        })
        .collect();

    thread::scope(|s| {
        for _ in 0..4 {
            let db = Arc::clone(&db);
            let baseline = baseline.clone();
            s.spawn(move |_| {
                for round in 0..50 {
                    let u = round % 7;
                    let hits = db
                        .lookup("UserID", &Value::str(format!("u{u}")), None)
                        .unwrap();
                    assert_eq!(hits.len(), baseline[u], "u{u}");
                }
            });
        }
    })
    .unwrap();
}
