//! The chaos harness (DESIGN.md §18): a YCSB-ish read/write mix driven
//! through a [`ChaosProxy`] under randomized fault schedules, checked
//! against a serial in-process oracle.
//!
//! Each schedule derives every fault decision from one seed: the proxy
//! drops, delays, garbles, truncates, splits, and severs frames in both
//! directions while a [`RetryClient`] (reconnect + backoff + idempotent
//! session) pushes the workload through. The invariants, asserted per
//! schedule with the seed in every message:
//!
//! * **Zero lost acked writes** — every key whose PUT/DEL was acked
//!   reads back with the acked value (or stays absent) over a clean
//!   connection afterwards.
//! * **Zero duplicate applies** — every acked write allocated exactly
//!   one sequence number: the shards share one sequence clock, `HELLO`
//!   and reads allocate nothing, so the max `last_sequence` across
//!   shards must equal the count of acked writes. A retried write that
//!   was deduplicated re-acks the original sequence and allocates
//!   nothing new; a double-apply would push the clock past the count.
//! * **Clean `check_integrity`** after the dust settles.
//!
//! 100 randomized schedules split across four test fns (so `cargo test`
//! runs them in parallel), plus a clean-plan control.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ldbpp_proto::{
    ChaosProxy, Client, NetFaultPlan, RetryClient, RetryPolicy, Server, ServerConfig,
};
use leveldbpp::{DbOptions, Document, IndexKind, MemEnv, SecondaryDb, SecondaryDbOptions, Value};

const PUTS: usize = 16;
const DELS: usize = 2;

fn open_db() -> Arc<SecondaryDb> {
    Arc::new(
        SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base: DbOptions::small(),
                shards: 2,
                ..Default::default()
            },
            &[("UserID", IndexKind::LazyStandalone)],
        )
        .expect("open in-memory db"),
    )
}

fn server_config() -> ServerConfig {
    ServerConfig {
        // Tight poll so drains and Busy retry-after hints stay fast.
        read_poll: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        // Generous budget, short backoffs: the schedules are tuned so a
        // persistent client always gets through, and the harness wants
        // wall-clock speed, not production pacing.
        max_attempts: 12,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(40),
        timeout: Duration::from_millis(150),
    }
}

fn doc_for(seed: u64, i: usize) -> Vec<u8> {
    let mut doc = Document::new();
    doc.set("UserID", Value::str(format!("u{}", i % 3)))
        .set("V", Value::Int((seed as i64) ^ (i as i64)));
    doc.to_bytes()
}

fn key_for(seed: u64, i: usize) -> String {
    format!("s{seed:x}-k{i:02}")
}

/// The exactly-once witness: the highest sequence any shard has seen.
/// The shards share one clock, so this is the total number of sequence
/// allocations — one per applied write, zero per retry that deduped.
fn global_seq(db: &SecondaryDb) -> u64 {
    (0..db.shard_count())
        .filter_map(|i| db.shard_primary(i))
        .map(|d| d.last_sequence())
        .max()
        .unwrap_or(0)
}

/// Drive one schedule end to end; returns the number of faults the
/// proxy injected (for the aggregate "the harness actually bites"
/// assertion).
fn run_schedule(seed: u64, plan: NetFaultPlan) -> u64 {
    let db = open_db();
    let server = Server::start(Arc::clone(&db), "127.0.0.1:0", server_config())
        .unwrap_or_else(|e| panic!("seed {seed}: start server: {e}"));
    let mut proxy = ChaosProxy::start(server.local_addr(), plan)
        .unwrap_or_else(|e| panic!("seed {seed}: start proxy: {e}"));
    let mut client =
        RetryClient::with_session(proxy.local_addr().to_string(), retry_policy(), seed | 1);

    // -- workload through the chaos, oracle updated only on ack ------------
    let mut oracle: HashMap<String, Vec<u8>> = HashMap::new();
    let mut acked_writes = 0u64;
    for i in 0..PUTS {
        let key = key_for(seed, i);
        let doc = doc_for(seed, i);
        let seq = client
            .put(key.as_bytes(), &doc)
            .unwrap_or_else(|e| panic!("seed {seed}: put {key}: {e}"));
        assert!(seq > 0, "seed {seed}: put {key} acked seq 0");
        oracle.insert(key, doc);
        acked_writes += 1;
        if i % 5 == 4 {
            // Interleaved read-your-writes probe, still through the proxy.
            let probe = key_for(seed, i / 2);
            let got = client
                .get(probe.as_bytes())
                .unwrap_or_else(|e| panic!("seed {seed}: get {probe}: {e}"));
            assert_eq!(
                got.as_deref(),
                oracle.get(&probe).map(|v| v.as_slice()),
                "seed {seed}: mid-chaos read of {probe} disagrees with oracle"
            );
        }
    }
    for i in 0..DELS {
        let key = key_for(seed, i);
        client
            .del(key.as_bytes())
            .unwrap_or_else(|e| panic!("seed {seed}: del {key}: {e}"));
        oracle.remove(&key);
        acked_writes += 1;
    }
    let faults = proxy.stats().faults_injected();
    proxy.stop();

    // -- verification over a clean link ------------------------------------
    let mut direct = RetryClient::with_session(
        server.local_addr().to_string(),
        retry_policy(),
        seed ^ 0xdead,
    );
    for i in 0..PUTS {
        let key = key_for(seed, i);
        let got = direct
            .get(key.as_bytes())
            .unwrap_or_else(|e| panic!("seed {seed}: verify get {key}: {e}"));
        assert_eq!(
            got.as_deref(),
            oracle.get(&key).map(|v| v.as_slice()),
            "seed {seed}: acked state of {key} lost or wrong after chaos"
        );
    }

    // -- graceful shutdown, then the exactly-once and integrity checks -----
    let mut ctl = Client::connect_with_timeout(server.local_addr(), Duration::from_secs(30))
        .unwrap_or_else(|e| panic!("seed {seed}: control connect: {e}"));
    ctl.shutdown()
        .unwrap_or_else(|e| panic!("seed {seed}: shutdown: {e}"));
    server
        .join()
        .unwrap_or_else(|e| panic!("seed {seed}: join: {e}"));

    assert_eq!(
        global_seq(&db),
        acked_writes,
        "seed {seed}: sequence clock disagrees with acked writes \
         (lost ack or duplicate apply)"
    );
    db.wait_for_background_idle()
        .unwrap_or_else(|e| panic!("seed {seed}: quiesce: {e}"));
    let report = db.check_integrity();
    assert!(
        report.is_clean(),
        "seed {seed}: integrity violations after chaos: {:?}",
        report.violations
    );
    faults
}

/// Run 25 randomized schedules from a seed base; at least one of them
/// must actually have injected faults (the rates are random in
/// `[0, 60]`‰ per direction, so an all-clean batch of 25 means the
/// injector is broken, not unlucky).
fn run_batch(base: u64) {
    let mut total_faults = 0u64;
    for i in 0..25u64 {
        let seed = base + i;
        total_faults += run_schedule(seed, NetFaultPlan::randomized(seed));
    }
    assert!(
        total_faults > 0,
        "25 randomized schedules from base {base:#x} injected zero faults"
    );
}

#[test]
fn chaos_schedules_batch_a() {
    run_batch(0xc4a0_0000);
}

#[test]
fn chaos_schedules_batch_b() {
    run_batch(0xc4a1_0000);
}

#[test]
fn chaos_schedules_batch_c() {
    run_batch(0xc4a2_0000);
}

#[test]
fn chaos_schedules_batch_d() {
    run_batch(0xc4a3_0000);
}

/// Control: the same workload through a transparent proxy must inject
/// nothing and still pass every invariant.
#[test]
fn clean_plan_is_transparent() {
    let faults = run_schedule(0x000c_1ea4, NetFaultPlan::clean(0x000c_1ea4));
    assert_eq!(faults, 0, "clean plan must not inject");
}
