//! End-to-end test of the `ldbpp_tool` inspection CLI binary.

use leveldbpp::{Db, DbOptions, DiskEnv, Document, IndexKind, SecondaryDb, Value};
use std::process::Command;

fn tool() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ldbpp_tool"))
}

#[test]
fn tool_inspects_a_real_database() {
    let dir = std::env::temp_dir().join(format!("ldbpp-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().unwrap().to_string();

    // Build a small database on disk.
    {
        let db = SecondaryDb::open(
            DiskEnv::new(),
            &db_path,
            leveldbpp::SecondaryDbOptions {
                base: DbOptions::small(),
                ..Default::default()
            },
            &[("UserID", IndexKind::Embedded)],
        )
        .unwrap();
        for i in 0..300usize {
            let mut doc = Document::new();
            doc.set("UserID", Value::str(format!("u{}", i % 4)))
                .set("N", Value::Int(i as i64));
            db.put(format!("rec{i:05}"), &doc).unwrap();
        }
        db.flush().unwrap();
    }

    // stats
    let out = tool().args(["stats", &db_path]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("seq=300"), "{stdout}");

    // tables — shows levels, ranges and the UserID zone maps.
    let out = tool().args(["tables", &db_path]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rec00000"), "{stdout}");
    assert!(stdout.contains("UserID:"), "{stdout}");

    // get hit and miss.
    let out = tool().args(["get", &db_path, "rec00042"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"N\":42"));
    let out = tool().args(["get", &db_path, "missing"]).output().unwrap();
    assert!(!out.status.success());

    // scan with prefix and limit.
    let out = tool()
        .args(["scan", &db_path, "rec0001", "5"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.lines().count(), 5, "{stdout}");
    assert!(stdout.starts_with("rec00010"));

    // Refuses to touch a non-database directory (and must not create one).
    let empty = dir.join("not-a-db");
    std::fs::create_dir_all(&empty).unwrap();
    let out = tool()
        .args(["stats", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        !empty.join("CURRENT").exists(),
        "tool must not initialize state"
    );

    // Bad usage exits with code 2.
    let out = tool().output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).unwrap();
    // Silence unused-import lint for Db (the facade re-export is the API
    // under test elsewhere).
    let _ = std::any::type_name::<Db>();
}

#[test]
fn repair_cli_salvages_and_reports() {
    let dir = std::env::temp_dir().join(format!("ldbpp-repair-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().unwrap().to_string();

    {
        let db = Db::open(DiskEnv::new(), &db_path, DbOptions::small()).unwrap();
        for i in 0..200usize {
            db.put(
                format!("k{i:05}").as_bytes(),
                format!("v{i}-{}", "x".repeat(40)).as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
    }

    // Clean database: exit 0 and an explicit verdict.
    let out = tool().args(["repair", &db_path]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok: database is clean"));

    // Corrupt a data block: repair must quarantine the damaged original,
    // exit non-zero, and leave a database that re-opens clean.
    let table = std::fs::read_dir(&db_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".ldb"))
        .expect("no table file on disk")
        .path();
    let mut data = std::fs::read(&table).unwrap();
    data[32] ^= 0xff;
    std::fs::write(&table, &data).unwrap();
    let out = tool().args(["repair", &db_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("quarantined: lost/"), "{stdout}");
    assert!(
        db_dir.join("lost").read_dir().unwrap().next().is_some(),
        "quarantine directory is empty"
    );

    // The repaired tree is clean: a second repair finds nothing wrong.
    let out = tool().args(["repair", &db_path]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Surviving records are served through the normal read path.
    let out = tool().args(["get", &db_path, "k00199"]).output().unwrap();
    assert!(out.status.success(), "survivor key unreadable after repair");

    // Refuses directories that hold no database files at all.
    let empty = dir.join("not-a-db");
    std::fs::create_dir_all(&empty).unwrap();
    let out = tool()
        .args(["repair", empty.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));

    // Bad usage exits with code 2.
    let out = tool().args(["repair"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn tool_check_and_repair_iterate_shards() {
    let dir = std::env::temp_dir().join(format!("ldbpp-shard-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().unwrap().to_string();

    // Build a 2-shard database on disk, with a stand-alone index so the
    // tool has `shard-i_idx_*` engines to iterate too.
    {
        let db = SecondaryDb::open(
            DiskEnv::new(),
            &db_path,
            leveldbpp::SecondaryDbOptions {
                base: DbOptions::small(),
                shards: 2,
                ..Default::default()
            },
            &[("UserID", IndexKind::CompositeStandalone)],
        )
        .unwrap();
        for i in 0..200usize {
            let mut doc = Document::new();
            doc.set("UserID", Value::str(format!("u{}", i % 4)))
                .set("N", Value::Int(i as i64));
            db.put(format!("rec{i:05}"), &doc).unwrap();
        }
        db.flush().unwrap();
    }
    assert!(db_dir.join("LAYOUT").exists());

    // `check` on the root: per-shard lines plus the aggregate, exit 0.
    let out = tool().args(["check", &db_path]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shard-0: clean"), "{stdout}");
    assert!(stdout.contains("shard-1: clean"), "{stdout}");
    assert!(stdout.contains("shard-0_idx_UserID: clean"), "{stdout}");
    assert!(stdout.contains("shard-1_idx_UserID: clean"), "{stdout}");
    assert!(stdout.contains("total: 0 violation(s)"), "{stdout}");
    assert!(stdout.contains("ok: database is clean"), "{stdout}");

    // `stats` on the root points at the shard directories instead.
    let out = tool().args(["stats", &db_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("sharded database root"));
    let shard0 = db_dir.join("shard-0");
    let out = tool()
        .args(["stats", shard0.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Corrupt one table file in shard-1 only: `check` must attribute the
    // damage to shard-1 and keep reporting shard-0 clean (confinement).
    let table = std::fs::read_dir(db_dir.join("shard-1"))
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".ldb"))
        .expect("no table file in shard-1")
        .path();
    let full = std::fs::read(&table).unwrap();
    std::fs::write(&table, &full[..64]).unwrap();
    let out = tool().args(["check", &db_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shard-0: clean"), "{stdout}");
    assert!(stdout.contains("shard-1: 2 violation(s)"), "{stdout}");
    assert!(stdout.contains("shard-1:   [FileSize]"), "{stdout}");

    // `repair` iterates every engine: shard-1 quarantines the torn table,
    // every other engine reports clean, and the aggregate names the one
    // dirty engine. Exit code 1, same contract as single-engine repair.
    let out = tool().args(["repair", &db_path]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shard-1: quarantined: lost/"), "{stdout}");
    assert!(
        stdout.contains("total: 1 of 4 engine(s) needed salvage or stayed dirty"),
        "{stdout}"
    );
    assert!(
        db_dir
            .join("shard-1")
            .join("lost")
            .read_dir()
            .unwrap()
            .next()
            .is_some(),
        "quarantine directory is empty"
    );

    // After salvage the whole tree is clean again: repair exits 0, and the
    // surviving records on the undamaged shard are all intact.
    let out = tool().args(["repair", &db_path]).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("ok: database is clean"));
    let out = tool().args(["check", &db_path]).output().unwrap();
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn check_cli_diagnoses_databases() {
    let dir = std::env::temp_dir().join(format!("ldbpp-check-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db_dir = dir.join("db");
    let db_path = db_dir.to_str().unwrap().to_string();

    {
        let db = Db::open(DiskEnv::new(), &db_path, DbOptions::small()).unwrap();
        for i in 0..200usize {
            db.put(format!("k{i:05}").as_bytes(), format!("v{i}").as_bytes())
                .unwrap();
        }
        db.flush().unwrap();
    }

    let check = || Command::new(env!("CARGO_BIN_EXE_check"));

    // Healthy database: exit 0, "clean" verdict.
    let out = check().arg(&db_path).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("clean"));

    // Truncate a live table file (an orphan would be garbage-collected by
    // recovery at open; torn tables are not): exit 1, diagnostic names it.
    let table = std::fs::read_dir(&db_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".ldb"))
        .expect("no table file on disk")
        .path();
    let full = std::fs::read(&table).unwrap();
    std::fs::write(&table, &full[..64]).unwrap();
    let out = check().arg(&db_path).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("file-size"), "{stdout}");
    assert!(
        stdout.contains(table.file_name().unwrap().to_str().unwrap()),
        "{stdout}"
    );

    // Refuses non-database directories without initializing them.
    let empty = dir.join("not-a-db");
    std::fs::create_dir_all(&empty).unwrap();
    let out = check().arg(empty.to_str().unwrap()).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(!empty.join("CURRENT").exists());

    // Bad usage exits with code 2.
    let out = check().output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    std::fs::remove_dir_all(&dir).unwrap();
}
