//! End-to-end test of the `ldbpp_server` binary: a real process on an
//! ephemeral port, `LDBPP_SHARDS=2`, eight concurrent TCP clients doing
//! mixed PUT/LOOKUP/RANGELOOKUP, final results checked against a serial
//! in-process oracle, then graceful shutdown and a clean
//! `ldbpp_tool check` over the data directory.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::Duration;

use ldbpp_proto::{Client, WireValue};
use leveldbpp::{DbOptions, Document, IndexKind, MemEnv, SecondaryDb, SecondaryDbOptions, Value};

const THREADS: usize = 8;
const KEYS_PER_THREAD: usize = 60;

fn doc_for(t: usize, i: usize) -> Document {
    let mut doc = Document::new();
    doc.set("UserID", Value::str(format!("u{t}")))
        .set("CreationTime", Value::Int((t * 1000 + i) as i64))
        .set("Text", Value::str(format!("tweet {t}/{i}")));
    doc
}

fn key_for(t: usize, i: usize) -> String {
    format!("t{t}-k{i:03}")
}

/// Spawn the server binary and parse the ephemeral port off its stdout.
fn spawn_server(db_dir: &str) -> (Child, SocketAddr) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ldbpp_server"))
        .args([
            db_dir,
            "--listen",
            "127.0.0.1:0",
            "--index",
            "UserID=lazy",
            "--index",
            "CreationTime=composite",
        ])
        .env("LDBPP_SHARDS", "2")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ldbpp_server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("server exited before announcing its port")
            .expect("read server stdout");
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest.parse::<SocketAddr>().expect("parse listen addr");
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn sorted_keys(hits: &[ldbpp_proto::Hit]) -> Vec<Vec<u8>> {
    let mut keys: Vec<Vec<u8>> = hits.iter().map(|h| h.key.clone()).collect();
    keys.sort();
    keys
}

#[test]
fn eight_concurrent_clients_match_serial_oracle() {
    let dir = std::env::temp_dir().join(format!("ldbpp-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let db_dir = dir.join("db").to_str().expect("utf8 path").to_string();

    let (mut child, addr) = spawn_server(&db_dir);

    // -- the storm: 8 client threads, disjoint key ranges, mixed ops ------
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            thread::spawn(move || {
                let mut client =
                    Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect");
                for i in 0..KEYS_PER_THREAD {
                    let seq = client
                        .put(key_for(t, i).as_bytes(), &doc_for(t, i).to_bytes())
                        .expect("put");
                    assert!(seq > 0);
                    // Interleave reads with the writes: their exact answer
                    // depends on the global interleaving, but every hit
                    // must satisfy the predicate and include what this
                    // thread already wrote.
                    if i % 16 == 7 {
                        let hits = client
                            .lookup("UserID", WireValue::Str(format!("u{t}")), None)
                            .expect("lookup");
                        assert!(hits.len() > i, "thread {t}: own writes missing from LOOKUP");
                        for h in &hits {
                            let doc = Document::parse(&h.doc).expect("hit doc");
                            assert_eq!(
                                doc.get("UserID").and_then(Value::as_str),
                                Some(format!("u{t}").as_str())
                            );
                        }
                    }
                    if i % 16 == 13 {
                        let lo = (t * 1000) as i64;
                        let hi = (t * 1000 + i) as i64;
                        let hits = client
                            .range_lookup(
                                "CreationTime",
                                WireValue::Int(lo),
                                WireValue::Int(hi),
                                None,
                            )
                            .expect("range_lookup");
                        assert_eq!(
                            hits.len(),
                            i + 1,
                            "thread {t}: RANGELOOKUP over own writes wrong"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    // -- serial in-process oracle ----------------------------------------
    let oracle = SecondaryDb::open(
        MemEnv::new(),
        "oracle",
        SecondaryDbOptions {
            base: DbOptions::small(),
            shards: 2,
            ..Default::default()
        },
        &[
            ("UserID", IndexKind::LazyStandalone),
            ("CreationTime", IndexKind::CompositeStandalone),
        ],
    )
    .expect("open oracle");
    for t in 0..THREADS {
        for i in 0..KEYS_PER_THREAD {
            oracle
                .put(key_for(t, i), &doc_for(t, i))
                .expect("oracle put");
        }
    }

    // -- final state must match the oracle exactly (as key sets) ---------
    let mut client = Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect");
    for t in 0..THREADS {
        let want: Vec<Vec<u8>> = {
            let mut keys: Vec<Vec<u8>> = oracle
                .lookup("UserID", &Value::str(format!("u{t}")), None)
                .expect("oracle lookup")
                .into_iter()
                .map(|h| h.key)
                .collect();
            keys.sort();
            keys
        };
        let got = client
            .lookup("UserID", WireValue::Str(format!("u{t}")), None)
            .expect("lookup");
        assert_eq!(sorted_keys(&got), want, "LOOKUP(u{t}) diverged from oracle");

        // K-bounded variant: same cardinality contract as the oracle.
        let got_k = client
            .lookup("UserID", WireValue::Str(format!("u{t}")), Some(7))
            .expect("lookup k");
        assert_eq!(got_k.len(), 7);
    }
    for (lo, hi) in [(0i64, 1500), (2500, 5020), (0, i64::MAX)] {
        let want: Vec<Vec<u8>> = {
            let mut keys: Vec<Vec<u8>> = oracle
                .range_lookup("CreationTime", &Value::Int(lo), &Value::Int(hi), None)
                .expect("oracle range")
                .into_iter()
                .map(|h| h.key)
                .collect();
            keys.sort();
            keys
        };
        let got = client
            .range_lookup("CreationTime", WireValue::Int(lo), WireValue::Int(hi), None)
            .expect("range_lookup");
        assert_eq!(
            sorted_keys(&got),
            want,
            "RANGELOOKUP([{lo},{hi}]) diverged from oracle"
        );
    }

    // GET/DEL round-trip over the wire.
    let got = client
        .get(key_for(3, 3).as_bytes())
        .expect("get")
        .expect("present");
    let doc = Document::parse(&got).expect("doc");
    assert_eq!(doc.get("UserID").and_then(Value::as_str), Some("u3"));
    client.del(key_for(3, 3).as_bytes()).expect("del");
    assert!(client.get(key_for(3, 3).as_bytes()).expect("get").is_none());
    client
        .put(key_for(3, 3).as_bytes(), &doc_for(3, 3).to_bytes())
        .expect("restore");

    // -- STATS surfaces shards, io counters, and a clean integrity check -
    let stats = client.stats(true).expect("stats");
    let stats = Value::parse(&stats).expect("stats JSON parses");
    assert_eq!(stats.get("shards").and_then(Value::as_int), Some(2));
    assert_eq!(
        stats.get("integrity").and_then(|i| i.get("clean")).cloned(),
        Some(Value::Bool(true)),
        "integrity dirty: {stats:?}"
    );
    let wal_bytes = stats
        .get("merged_io")
        .and_then(|io| io.get("wal_bytes_written"))
        .and_then(Value::as_int)
        .expect("merged_io.wal_bytes_written");
    assert!(wal_bytes > 0, "writes must have hit the WAL");
    assert!(
        stats
            .get("server")
            .and_then(|s| s.get("requests"))
            .and_then(Value::as_int)
            .expect("server.requests")
            >= (THREADS * KEYS_PER_THREAD) as i64
    );

    // -- graceful shutdown, then offline integrity check ------------------
    client.shutdown().expect("graceful shutdown");
    let status = child.wait().expect("wait server");
    assert!(status.success(), "server exit status {status:?}");

    let out = Command::new(env!("CARGO_BIN_EXE_ldbpp_tool"))
        .args(["check", &db_dir])
        .output()
        .expect("run ldbpp_tool check");
    assert!(
        out.status.success(),
        "ldbpp_tool check failed:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
