//! Networked analogue of `tests/crash_smoke.rs`: SIGKILL the server
//! mid-write-storm (no graceful drain) and prove that every write whose
//! ack reached a client is durable and the reopened database passes the
//! structural integrity checker.
//!
//! The server runs with its default `wal_sync = true`, so an ack implies
//! the WAL record was flushed out of user space and fsynced before the
//! response frame went out — the property this test pins across the
//! process boundary.

use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use ldbpp_proto::Client;
use leveldbpp::{DbOptions, DiskEnv, Document, IndexKind, SecondaryDb, SecondaryDbOptions, Value};

const WRITERS: usize = 4;
const KILL_AFTER_ACKS: usize = 400;

#[test]
fn acked_writes_survive_sigkill() {
    let dir = std::env::temp_dir().join(format!("ldbpp-crash-net-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let db_dir = dir.join("db").to_str().expect("utf8 path").to_string();

    let mut child = Command::new(env!("CARGO_BIN_EXE_ldbpp_server"))
        .args([
            &db_dir,
            "--listen",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--index",
            "UserID=lazy",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ldbpp_server");
    let addr = {
        use std::io::{BufRead, BufReader};
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited early")
                .expect("read stdout");
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.parse::<std::net::SocketAddr>().expect("addr");
            }
        };
        thread::spawn(move || for _ in lines {});
        addr
    };

    let acks = Arc::new(AtomicUsize::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Each writer returns the keys it saw acked; no shared collection
    // needed, and an ack that races the SIGKILL still counts (the ack
    // implies the fsync already happened).
    let writers: Vec<_> = (0..WRITERS)
        .map(|t| {
            let acks = Arc::clone(&acks);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut acked: Vec<String> = Vec::new();
                let Ok(mut client) = Client::connect_with_timeout(addr, Duration::from_secs(30))
                else {
                    return acked;
                };
                for i in 0..20_000usize {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let key = format!("c{t}-k{i:05}");
                    let mut doc = Document::new();
                    doc.set("UserID", Value::str(format!("u{}", i % 8)))
                        .set("N", Value::Int(i as i64));
                    match client.put(key.as_bytes(), &doc.to_bytes()) {
                        Ok(_) => {
                            acked.push(key);
                            acks.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => break, // server died mid-request
                    }
                }
                acked
            })
        })
        .collect();

    // Let the storm run until enough writes are acked, then SIGKILL —
    // no drain, no flush, memtables full of unflushed records.
    while acks.load(Ordering::Relaxed) < KILL_AFTER_ACKS {
        thread::sleep(Duration::from_millis(5));
    }
    child.kill().expect("SIGKILL server");
    child.wait().expect("reap server");
    stop.store(true, Ordering::Relaxed);

    let mut all_acked: Vec<String> = Vec::new();
    for w in writers {
        all_acked.extend(w.join().expect("writer thread"));
    }
    assert!(
        all_acked.len() >= KILL_AFTER_ACKS,
        "only {} acks before the kill",
        all_acked.len()
    );

    // Reopen: WAL replay must resurrect every acked write.
    let db = SecondaryDb::open(
        DiskEnv::new(),
        &db_dir,
        SecondaryDbOptions {
            base: DbOptions::default(),
            shards: 2,
            ..Default::default()
        },
        &[("UserID", IndexKind::LazyStandalone)],
    )
    .expect("reopen after SIGKILL");

    let mut missing = Vec::new();
    for key in &all_acked {
        if db.get(key).expect("get").is_none() {
            missing.push(key.clone());
        }
    }
    assert!(
        missing.is_empty(),
        "{} acked write(s) lost after SIGKILL, e.g. {:?}",
        missing.len(),
        &missing[..missing.len().min(5)]
    );

    let report = db.check_integrity();
    assert!(report.is_clean(), "integrity dirty after crash: {report}");

    // The index survived too: every record is reachable through LOOKUP.
    let mut via_index = 0usize;
    for u in 0..8 {
        via_index += db
            .lookup("UserID", &Value::str(format!("u{u}")), None)
            .expect("lookup")
            .len();
    }
    assert!(
        via_index >= all_acked.len(),
        "index reaches {via_index} records but {} were acked",
        all_acked.len()
    );
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
