//! Whole-system integration tests across crates, through the public
//! `leveldbpp` facade.

use leveldbpp::workload::{MixedKind, MixedWorkload, Operation, SeedStats, TweetGenerator};
use leveldbpp::{DbOptions, DiskEnv, Document, IndexKind, MemEnv, SecondaryDb, Value};
use std::collections::HashMap;

fn opts() -> DbOptions {
    DbOptions {
        block_size: 512,
        write_buffer_size: 8 << 10,
        max_file_size: 4 << 10,
        base_level_bytes: 32 << 10,
        ..DbOptions::small()
    }
}

#[test]
fn workload_replay_consistency_all_kinds() {
    // Replay the same mixed stream against all four index techniques and a
    // brute-force model; all five views must agree at the end.
    let mut dbs: Vec<(IndexKind, SecondaryDb)> = [
        IndexKind::Embedded,
        IndexKind::EagerStandalone,
        IndexKind::LazyStandalone,
        IndexKind::CompositeStandalone,
    ]
    .into_iter()
    .map(|k| {
        (
            k,
            SecondaryDb::open_in_memory(opts(), &[("UserID", k)]).unwrap(),
        )
    })
    .collect();
    let mut model: HashMap<String, String> = HashMap::new();

    let mut workload = MixedWorkload::new(
        MixedKind::UpdateHeavy,
        SeedStats::compact(),
        6_000,
        Some(10),
        77,
    );
    for _ in 0..6_000 {
        let op = workload.next_op();
        match &op {
            Operation::Put(t) | Operation::Update(t) => {
                let doc = Document::from_value(t.document()).unwrap();
                for (_, db) in &mut dbs {
                    db.put(&t.id, &doc).unwrap();
                }
                model.insert(t.id.clone(), t.user.clone());
            }
            _ => {}
        }
    }

    // Distinct users with at least one tweet.
    let mut per_user: HashMap<&String, usize> = HashMap::new();
    for user in model.values() {
        *per_user.entry(user).or_insert(0) += 1;
    }
    let mut checked = 0;
    for (user, count) in per_user.iter().take(40) {
        for (kind, db) in &dbs {
            let hits = db
                .lookup("UserID", &Value::str((*user).clone()), None)
                .unwrap();
            assert_eq!(hits.len(), *count, "{kind}: user {user}");
        }
        checked += 1;
    }
    assert!(checked > 10);
}

#[test]
fn durability_across_reopen_with_indexes() {
    let dir = std::env::temp_dir().join(format!("ldbpp-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let env = DiskEnv::new();
    let name = dir.join("db");
    let name = name.to_str().unwrap().to_string();
    let specs = [
        ("UserID", IndexKind::LazyStandalone),
        ("CreationTime", IndexKind::CompositeStandalone),
    ];

    let mut expected_u3 = 0usize;
    {
        let db = SecondaryDb::open(
            env.clone(),
            &name,
            leveldbpp::SecondaryDbOptions {
                base: opts(),
                ..Default::default()
            },
            &specs,
        )
        .unwrap();
        let mut generator = TweetGenerator::new(SeedStats::compact(), 2_000, 5);
        for _ in 0..2_000 {
            let t = generator.next_tweet();
            if t.user == "u0000003" {
                expected_u3 += 1;
            }
            db.put(&t.id, &Document::from_value(t.document()).unwrap())
                .unwrap();
        }
        // No flush: some state lives only in WALs.
    }
    {
        let db = SecondaryDb::open(
            env.clone(),
            &name,
            leveldbpp::SecondaryDbOptions {
                base: opts(),
                ..Default::default()
            },
            &specs,
        )
        .unwrap();
        let hits = db.lookup("UserID", &Value::str("u0000003"), None).unwrap();
        assert_eq!(hits.len(), expected_u3, "lazy index recovered");
        let t0 = hits
            .last()
            .unwrap()
            .doc
            .get("CreationTime")
            .unwrap()
            .as_int()
            .unwrap();
        let range = db
            .range_lookup("CreationTime", &Value::Int(t0), &Value::Int(t0), None)
            .unwrap();
        assert!(!range.is_empty(), "composite index recovered");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn advisor_and_cost_are_wired_into_facade() {
    use leveldbpp::advisor::{recommend, WorkloadProfile};
    use leveldbpp::cost;
    let rec = recommend(&WorkloadProfile::balanced());
    assert_ne!(rec.kind, IndexKind::EagerStandalone);
    assert!(cost::wamf_eager(30.0, 4) > cost::wamf_lazy(4) as f64);
}

#[test]
fn io_accounting_is_visible_at_facade() {
    let env = MemEnv::new();
    let db = SecondaryDb::open(
        env.clone(),
        "db",
        leveldbpp::SecondaryDbOptions {
            base: opts(),
            ..Default::default()
        },
        &[("UserID", IndexKind::LazyStandalone)],
    )
    .unwrap();
    let mut generator = TweetGenerator::new(SeedStats::compact(), 3_000, 9);
    for _ in 0..3_000 {
        let t = generator.next_tweet();
        db.put(&t.id, &Document::from_value(t.document()).unwrap())
            .unwrap();
    }
    db.flush().unwrap();
    let p = db.primary_io();
    let i = db.index_io();
    assert!(p.flushes > 0 && p.wal_bytes_written > 0);
    assert!(i.flushes > 0, "index table flushed too");
    // Env-level accounting agrees the data exists on "disk".
    assert!(env.total_bytes() > 0);
    assert_eq!(db.total_bytes(), db.primary_bytes() + db.index_bytes());

    let before = db.primary_io();
    let _ = db
        .lookup("UserID", &Value::str("u0000000"), Some(5))
        .unwrap();
    let after = db.primary_io().since(&before);
    assert!(after.block_reads > 0, "validation GETs read primary blocks");
}

#[test]
fn unicode_and_edge_documents_survive_the_stack() {
    let db =
        SecondaryDb::open_in_memory(opts(), &[("UserID", IndexKind::CompositeStandalone)]).unwrap();
    let mut doc = Document::new();
    doc.set("UserID", Value::str("ユーザー🙂")).set(
        "Text",
        Value::str("emoji 😀 and \"quotes\" and \\ backslashes\n"),
    );
    db.put("t-unicode", &doc).unwrap();
    // A user id containing a NUL byte exercises composite-key escaping.
    let mut doc2 = Document::new();
    doc2.set("UserID", Value::str("weird\u{0}user"));
    db.put("t-nul", &doc2).unwrap();

    let hits = db
        .lookup("UserID", &Value::str("ユーザー🙂"), None)
        .unwrap();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].doc, db.get("t-unicode").unwrap().unwrap());
    let hits = db
        .lookup("UserID", &Value::str("weird\u{0}user"), None)
        .unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn empty_key_rejected_and_errors_informative() {
    let db = SecondaryDb::open_in_memory(opts(), &[("UserID", IndexKind::Embedded)]).unwrap();
    let err = db.put("", &Document::new()).unwrap_err();
    assert!(err.to_string().contains("empty"));
    let err = db.lookup("Undeclared", &Value::str("x"), None).unwrap_err();
    assert!(err.to_string().contains("Undeclared"));
}

#[test]
fn integer_attributes_index_correctly_across_signs() {
    let db =
        SecondaryDb::open_in_memory(opts(), &[("Score", IndexKind::CompositeStandalone)]).unwrap();
    for (i, score) in [-100i64, -1, 0, 1, 99, i64::MIN, i64::MAX]
        .iter()
        .enumerate()
    {
        let mut doc = Document::new();
        doc.set("Score", Value::Int(*score));
        db.put(format!("k{i}"), &doc).unwrap();
    }
    let hits = db
        .range_lookup("Score", &Value::Int(-1), &Value::Int(1), None)
        .unwrap();
    assert_eq!(hits.len(), 3);
    let hits = db
        .range_lookup("Score", &Value::Int(i64::MIN), &Value::Int(i64::MAX), None)
        .unwrap();
    assert_eq!(hits.len(), 7);
}

#[test]
fn backfill_builds_late_declared_indexes() {
    let env = MemEnv::new();
    // Phase 1: write data with no indexes at all.
    {
        let db = SecondaryDb::open(
            env.clone(),
            "db",
            leveldbpp::SecondaryDbOptions {
                base: opts(),
                ..Default::default()
            },
            &[],
        )
        .unwrap();
        let mut generator = TweetGenerator::new(SeedStats::compact(), 1500, 21);
        for _ in 0..1500 {
            let t = generator.next_tweet();
            db.put(&t.id, &Document::from_value(t.document()).unwrap())
                .unwrap();
        }
        db.flush().unwrap();
    }
    // Phase 2: reopen declaring indexes; they start empty.
    let db = SecondaryDb::open(
        env.clone(),
        "db",
        leveldbpp::SecondaryDbOptions {
            base: opts(),
            ..Default::default()
        },
        &[
            ("UserID", IndexKind::LazyStandalone),
            ("CreationTime", IndexKind::Embedded),
        ],
    )
    .unwrap();
    assert!(db
        .lookup("UserID", &Value::str("u0000000"), None)
        .unwrap()
        .is_empty());

    let replayed = db.backfill_indexes().unwrap();
    assert_eq!(replayed, 1500);

    // Stand-alone index answers now, with correct recency ordering.
    let hits = db.lookup("UserID", &Value::str("u0000000"), None).unwrap();
    assert!(!hits.is_empty());
    for w in hits.windows(2) {
        assert!(w[0].seq > w[1].seq);
    }
    // Embedded attribute: files were rewritten with zone maps, so a narrow
    // time range prunes.
    let t0 = hits[0].doc.get("CreationTime").unwrap().as_int().unwrap();
    let before = db.primary_io();
    let window = db
        .range_lookup("CreationTime", &Value::Int(t0), &Value::Int(t0), None)
        .unwrap();
    assert!(!window.is_empty());
    let io = db.primary_io().since(&before);
    assert!(
        io.zonemap_prunes + io.file_zonemap_prunes > 0,
        "rewritten tables must carry zone maps"
    );

    // Idempotent: a second backfill replays nothing new into indexes that
    // are already populated.
    let again = db.backfill_indexes().unwrap();
    assert_eq!(again, 0);
    let hits2 = db.lookup("UserID", &Value::str("u0000000"), None).unwrap();
    assert_eq!(hits.len(), hits2.len());
}

#[test]
fn major_compact_reclaims_shadowed_space() {
    use leveldbpp::Db;
    let db = Db::open(MemEnv::new(), "db", opts()).unwrap();
    for round in 0..5 {
        for i in 0..600usize {
            db.put(
                format!("k{i:04}").as_bytes(),
                format!("round-{round}-{}", "x".repeat(40)).as_bytes(),
            )
            .unwrap();
        }
    }
    db.flush().unwrap();
    let before = db.table_bytes();
    db.major_compact().unwrap();
    let after = db.table_bytes();
    assert!(
        after < before,
        "major compaction should drop shadowed versions: {before} -> {after}"
    );
    for i in (0..600usize).step_by(97) {
        let v = db.get(format!("k{i:04}").as_bytes()).unwrap().unwrap();
        assert!(v.starts_with(b"round-4-"));
    }
}

#[test]
fn ycsb_core_workloads_run_against_the_store() {
    use leveldbpp::workload::{YcsbKind, YcsbOp, YcsbWorkload};
    for kind in [YcsbKind::A, YcsbKind::D, YcsbKind::E, YcsbKind::F] {
        let db = SecondaryDb::open_in_memory(opts(), &[("UserID", IndexKind::None)]).unwrap();
        let mut w = YcsbWorkload::new(kind, 800, 17);
        for t in w.load_phase(800) {
            db.put(&t.id, &Document::from_value(t.document()).unwrap())
                .unwrap();
        }
        let mut reads = 0usize;
        for _ in 0..2500 {
            match w.next_op() {
                YcsbOp::Read { key } => {
                    assert!(db.get(&key).unwrap().is_some(), "{kind:?}: {key}");
                    reads += 1;
                }
                YcsbOp::Update(t) | YcsbOp::Insert(t) => {
                    db.put(&t.id, &Document::from_value(t.document()).unwrap())
                        .unwrap();
                }
                YcsbOp::Scan { start, len } => {
                    let rows = db.scan_primary(&start, "t999999999", Some(len)).unwrap();
                    assert!(rows.len() <= len);
                }
                YcsbOp::ReadModifyWrite(t) => {
                    let mut doc = db.get(&t.id).unwrap().unwrap();
                    doc.set("Text", Value::str("modified"));
                    db.put(&t.id, &doc).unwrap();
                }
            }
        }
        if kind != YcsbKind::E {
            assert!(reads > 0, "{kind:?}");
        }
    }
}

#[test]
fn snapshot_pinning_through_the_facade() {
    let db = SecondaryDb::open_in_memory(opts(), &[("UserID", IndexKind::LazyStandalone)]).unwrap();
    let mut doc = Document::new();
    doc.set("UserID", Value::str("u1"))
        .set("Rev", Value::Int(1));
    db.put("k", &doc).unwrap();
    let snap = db.primary().pin_snapshot();
    doc.set("Rev", Value::Int(2));
    db.put("k", &doc).unwrap();
    // Churn + compact; pinned history must survive.
    for i in 0..2000usize {
        let mut d = Document::new();
        d.set("UserID", Value::str(format!("u{}", i % 5)));
        db.put(format!("fill{i:05}"), &d).unwrap();
    }
    db.primary().major_compact().unwrap();
    let old = db.primary().get_at(b"k", snap.sequence()).unwrap().unwrap();
    let old = Document::parse(&old).unwrap();
    assert_eq!(old.get("Rev").unwrap().as_int(), Some(1));
    assert_eq!(
        db.get("k").unwrap().unwrap().get("Rev").unwrap().as_int(),
        Some(2)
    );
}
