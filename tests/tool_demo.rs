//! Creates an on-disk demo database (used manually with ldbpp_tool too).

use leveldbpp::{Db, DbOptions, DiskEnv};

#[test]
fn build_disk_db_for_tooling() {
    let dir = std::env::temp_dir().join("ldbpp-tool-demo");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Db::open(DiskEnv::new(), dir.to_str().unwrap(), DbOptions::small()).unwrap();
    for i in 0..500 {
        db.put(
            format!("user{i:04}").as_bytes(),
            format!("{{\"name\":\"user {i}\"}}").as_bytes(),
        )
        .unwrap();
    }
    db.flush().unwrap();
    assert!(dir.join("CURRENT").exists());
    // Summary and scan behave on the persisted database.
    let summary = db.debug_summary();
    assert!(summary.contains("seq=500"));
}
