//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! `#![proptest_config]`, `Strategy` with `prop_map`/`boxed`, `any`,
//! `Just`, range and regex-literal string strategies, the `collection`
//! module (`vec`, `btree_map`, `btree_set`, `hash_set`), `prop_oneof!`,
//! and `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Generation is fully deterministic: the RNG is seeded from the test's
//! module path + name + case index, so failures are reproducible without
//! a persistence file. There is **no shrinking** — a failing case prints
//! its inputs verbatim.

pub mod test_runner {
    //! Test configuration and the deterministic case RNG.

    /// Per-test configuration. Only `cases` is honoured by this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 RNG, seeded per (test name, case index).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<T> {
        choices: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                choices: self.choices.clone(),
            }
        }
    }

    impl<T> OneOf<T> {
        /// Union over `choices`; each entry is `(weight, strategy)`.
        pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> OneOf<T> {
            assert!(!choices.is_empty());
            OneOf { choices }
        }
    }

    impl<T: Debug> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.choices.iter().map(|(w, _)| *w as u64).sum();
            let mut r = rng.below(total.max(1));
            for (w, s) in &self.choices {
                if r < *w as u64 {
                    return s.generate(rng);
                }
                r -= *w as u64;
            }
            self.choices[0].1.generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    /// Marker for types producible by [`any`](crate::any).
    pub trait Arbitrary: Debug + Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mostly "reasonable" floats; occasionally extreme ones.
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            (u - 0.5) * 2.0e9
        }
    }

    /// Strategy returned by [`any`](crate::any).
    #[derive(Clone, Debug)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:ident . $i:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    // ---- regex-literal string strategies ----------------------------------

    enum Atom {
        Class(Vec<char>),
        Literal(char),
        Printable,
    }

    fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars>) -> (usize, usize) {
        if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            if let Some((lo, hi)) = spec.split_once(',') {
                (
                    lo.trim().parse().unwrap_or(0),
                    hi.trim().parse().unwrap_or(0),
                )
            } else {
                let n = spec.trim().parse().unwrap_or(1);
                (n, n)
            }
        } else {
            (1, 1)
        }
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut pool = Vec::new();
        let mut prev: Option<char> = None;
        while let Some(c) = chars.next() {
            match c {
                ']' => break,
                '\\' => {
                    if let Some(e) = chars.next() {
                        let lit = match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            other => other,
                        };
                        pool.push(lit);
                        prev = Some(lit);
                    }
                }
                '-' => {
                    // Range if we have a previous char and a next char.
                    match (prev, chars.peek().copied()) {
                        (Some(lo), Some(hi)) if hi != ']' => {
                            chars.next();
                            let (lo, hi) = (lo as u32, hi as u32);
                            for v in (lo + 1)..=hi {
                                if let Some(ch) = char::from_u32(v) {
                                    pool.push(ch);
                                }
                            }
                            prev = None;
                        }
                        _ => {
                            pool.push('-');
                            prev = Some('-');
                        }
                    }
                }
                other => {
                    pool.push(other);
                    prev = Some(other);
                }
            }
        }
        if pool.is_empty() {
            pool.push('a');
        }
        pool
    }

    fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
        let mut atoms = Vec::new();
        let mut chars = pat.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') | Some('p') => {
                        // `\PC` (printable); consume the class letter.
                        chars.next();
                        Atom::Printable
                    }
                    Some('n') => Atom::Literal('\n'),
                    Some('t') => Atom::Literal('\t'),
                    Some('r') => Atom::Literal('\r'),
                    Some(other) => Atom::Literal(other),
                    None => break,
                },
                other => Atom::Literal(other),
            };
            let (lo, hi) = parse_quantifier(&mut chars);
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    /// String literals are regex-subset strategies (char classes, escapes,
    /// `{m,n}` repetition, `\PC` = printable), matching proptest's
    /// `&str`-as-regex behaviour for the patterns this workspace uses.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const PRINTABLE: &[u8] =
                b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 !\"#$%&'()*+,-./:;<=>?@[]^_`{|}~";
            let mut out = String::new();
            for (atom, lo, hi) in parse_pattern(self) {
                let n = if hi > lo {
                    lo + rng.below((hi - lo + 1) as u64) as usize
                } else {
                    lo
                };
                for _ in 0..n {
                    match &atom {
                        Atom::Class(pool) => out.push(pool[rng.below(pool.len() as u64) as usize]),
                        Atom::Literal(c) => out.push(*c),
                        Atom::Printable => {
                            out.push(PRINTABLE[rng.below(PRINTABLE.len() as u64) as usize] as char)
                        }
                    }
                }
            }
            out
        }
    }
}

/// Strategy yielding unconstrained values of `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_map`, `btree_set`, `hash_set`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet, HashSet};
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::Range;

    fn sample_size(size: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(size.start < size.end, "empty size range");
        size.start + rng.below((size.end - size.start) as u64) as usize
    }

    /// Strategy for `Vec`s of `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = sample_size(&self.size, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap`s with `size.start..size.end` entries
    /// (key collisions may yield fewer, down to the range minimum).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy { key, value, size }
    }

    /// See [`btree_map`].
    #[derive(Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.size, rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `BTreeSet`s (key collisions may yield fewer elements).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Strategy for `HashSet`s (collisions may yield fewer elements).
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// See [`hash_set`].
    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq + Debug,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = sample_size(&self.size, rng);
            let mut out = HashSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 10 + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The property-test macro: runs each `fn` body over `cases` generated
/// inputs; a failing case prints its inputs (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case as u64,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(__e) = __result {
                    eprintln!(
                        "proptest: case {}/{} of {} failed with inputs: {}",
                        __case + 1, __config.cases, stringify!($name), __inputs
                    );
                    ::std::panic::resume_unwind(__e);
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (`w => strat`) or uniform union of strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:expr => $s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($w as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::any;
    pub use crate::strategy::{BoxedStrategy, Just, OneOf, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    #[allow(dead_code)]
    enum Op {
        Put(u8, Vec<u8>),
        Del(u8),
        Flush,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_strings(
            x in 3u32..17,
            s in "[a-f]{1,4}",
            v in crate::collection::vec(any::<u8>(), 0..10),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
            prop_assert!(v.len() < 10);
        }

        #[test]
        fn oneof_and_maps(ops in crate::collection::vec(
            prop_oneof![
                3 => (any::<u8>(), crate::collection::vec(any::<u8>(), 0..5))
                    .prop_map(|(k, v)| Op::Put(k, v)),
                1 => any::<u8>().prop_map(Op::Del),
                1 => Just(Op::Flush),
            ],
            1..20,
        )) {
            prop_assert!(!ops.is_empty());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 0);
        let mut b = TestRng::for_case("x", 0);
        let s = crate::collection::btree_set("[a-m]{1,6}", 1..10);
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }

    #[test]
    fn printable_class() {
        let mut rng = TestRng::for_case("p", 1);
        let s = Strategy::generate(&"\\PC{0,64}", &mut rng);
        assert!(s.len() <= 64);
    }
}
