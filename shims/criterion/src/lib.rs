//! Offline stand-in for the `criterion` crate.
//!
//! A minimal but *functional* micro-benchmark runner exposing the subset
//! of criterion's API the workspace uses: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function` (with `BenchmarkId`),
//! `Bencher::iter` / `iter_batched`, and the `criterion_group!` /
//! `criterion_main!` macros. Each sample times a batch of iterations with
//! `std::time::Instant`; min / median / mean per-iteration times are
//! printed to stdout.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _c: self,
            sample_size,
            throughput: None,
        }
    }

    /// Set the default number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a stand-alone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, None, f);
        self
    }

    /// No-op in this shim (criterion parity).
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name plus a parameter.
    pub fn new<P: fmt::Display>(name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotate per-iteration throughput; reported alongside timings.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<I: Into<BenchmarkId>, F>(&mut self, id: I, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.id, self.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Controls how per-sample setup output is batched in
/// [`Bencher::iter_batched`].
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Call setup once per routine invocation.
    PerIteration,
    /// Criterion hint; treated like `PerIteration` here.
    SmallInput,
    /// Criterion hint; treated like `PerIteration` here.
    LargeInput,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, called `iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up + calibration: target ~25ms per sample, at least 1 iter.
    let mut cal = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut cal);
    let per_iter = cal.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(25);
    let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_nanos: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_nanos.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_nanos.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter_nanos[0];
    let median = per_iter_nanos[per_iter_nanos.len() / 2];
    let mean = per_iter_nanos.iter().sum::<f64>() / per_iter_nanos.len() as f64;
    let tp = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (median / 1e9) / (1 << 20) as f64
            )
        }
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (median / 1e9))
        }
        None => String::new(),
    };
    println!(
        "{id:<40} min {:>12}  median {:>12}  mean {:>12}{tp}",
        fmt_nanos(min),
        fmt_nanos(median),
        fmt_nanos(mean)
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Build a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Build a `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim-self-test");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(64));
        let mut ran = 0u32;
        g.bench_function(BenchmarkId::from_parameter("sum"), |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::PerIteration)
        });
        g.finish();
        assert!(ran >= 3);
    }
}
