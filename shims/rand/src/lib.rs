//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `rngs::StdRng` seeded with
//! `SeedableRng::seed_from_u64`, and the `RngExt` extension trait with
//! `random::<T>()` and `random_range(..)`. Fully deterministic
//! (xoshiro256** core seeded via splitmix64), no OS entropy.

use std::ops::{Range, RangeInclusive};

/// Core trait for random-number generators: a source of 64-bit words.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Build an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named RNG types (subset of `rand::rngs`).
pub mod rngs {
    /// The standard deterministic RNG: xoshiro256** with splitmix64
    /// seed expansion. Not cryptographic; stable across runs.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from an RNG's raw output.
pub trait Random: Sized {
    /// Draw a uniformly random value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `random_range` accepts (subset of rand's `SampleRange`).
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods available on every [`RngCore`] (the workspace's
/// spelling of rand's `Rng` trait).
pub trait RngExt: RngCore {
    /// Draw a uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Draw a uniform sample from `range`. Panics on an empty range.
    fn random_range<T, RNG: SampleRange<T>>(&mut self, range: RNG) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
            let n = a.random_range(0..300);
            b.random_range(0..300);
            assert!((0..300).contains(&n));
            let m = a.random_range(5..=9u8);
            b.random_range(5..=9u8);
            assert!((5..=9).contains(&m));
            let k = a.random_range(-10..10i64);
            b.random_range(-10..10i64);
            assert!((-10..10).contains(&k));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
