//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: `crossbeam::channel`
//! (unbounded MPSC channels, here built on `std::sync::mpsc`) and
//! `crossbeam::thread::scope` (built on `std::thread::scope`).

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    /// Handle for spawning threads inside a [`scope`] call.
    ///
    /// Wraps `std::thread::Scope`; spawn closures receive `&Scope` for
    /// crossbeam signature compatibility (they may ignore it).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a scope.
    pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a `&Scope` so it
        /// can spawn further threads, matching crossbeam's API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; all threads spawned through it are
    /// joined before `scope` returns. Always returns `Ok` (a panicking
    /// child propagates its panic on join, as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
    }

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3];
        let sum = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(move |_| 10u64);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 16);
    }
}
