//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the subset the workspace uses: `crossbeam::channel`
//! (unbounded MPSC channels, here built on `std::sync::mpsc`) and
//! `crossbeam::thread::scope` (built on `std::thread::scope`).
//!
//! With the `check` feature, channels and scoped threads double as
//! scheduling points of the deterministic model checker (DESIGN.md
//! §17): sends/receives park at a coordinator decision, scoped spawns
//! register the child as a model thread, and joins park until the child
//! finished so the real join never blocks. Threads outside a model run
//! fall through to the plain std behaviour; the default build compiles
//! none of the instrumentation.

/// Multi-producer channels (subset of `crossbeam::channel`).
pub mod channel {
    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    #[cfg(feature = "check")]
    use std::sync::atomic::{AtomicUsize, Ordering};
    #[cfg(feature = "check")]
    use std::sync::Arc;

    /// Shared channel bookkeeping for the model checker: queue length
    /// and live-sender count drive receive enabledness, so a model
    /// thread never enters a real blocking `recv`.
    #[cfg(feature = "check")]
    struct Meta {
        id: u64,
        len: AtomicUsize,
        senders: AtomicUsize,
    }

    /// Sending half of an unbounded channel (clonable).
    pub struct Sender<T> {
        inner: std::sync::mpsc::Sender<T>,
        #[cfg(feature = "check")]
        meta: Arc<Meta>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
        #[cfg(feature = "check")]
        meta: Arc<Meta>,
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            #[cfg(feature = "check")]
            parking_lot::sched::op_point(parking_lot::sched::OpKind::ChanSend, self.meta.id);
            let r = self.inner.send(value);
            #[cfg(feature = "check")]
            if r.is_ok() {
                self.meta.len.fetch_add(1, Ordering::SeqCst);
            }
            r
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            #[cfg(feature = "check")]
            self.meta.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: self.inner.clone(),
                #[cfg(feature = "check")]
                meta: Arc::clone(&self.meta),
            }
        }
    }

    #[cfg(feature = "check")]
    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.meta.senders.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a value, blocking until one is available; fails when
        /// the channel is empty and every sender was dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            #[cfg(feature = "check")]
            {
                let meta = Arc::clone(&self.meta);
                parking_lot::sched::blocking_point(
                    parking_lot::sched::OpKind::ChanRecv,
                    self.meta.id,
                    Arc::new(move || {
                        meta.len.load(Ordering::SeqCst) > 0
                            || meta.senders.load(Ordering::SeqCst) == 0
                    }),
                );
            }
            let r = self.inner.recv();
            #[cfg(feature = "check")]
            if r.is_ok() {
                self.meta.len.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }

        /// Dequeue a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            #[cfg(feature = "check")]
            parking_lot::sched::op_point(parking_lot::sched::OpKind::ChanRecv, self.meta.id);
            let r = self.inner.try_recv();
            #[cfg(feature = "check")]
            if r.is_ok() {
                self.meta.len.fetch_sub(1, Ordering::SeqCst);
            }
            r
        }
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        #[cfg(feature = "check")]
        let meta = Arc::new(Meta {
            id: parking_lot::sched::chan_id(),
            len: AtomicUsize::new(0),
            senders: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: tx,
                #[cfg(feature = "check")]
                meta: Arc::clone(&meta),
            },
            Receiver {
                inner: rx,
                #[cfg(feature = "check")]
                meta,
            },
        )
    }
}

/// Scoped threads (subset of `crossbeam::thread`).
pub mod thread {
    /// Handle for spawning threads inside a [`scope`] call.
    ///
    /// Wraps `std::thread::Scope`; spawn closures receive `&Scope` for
    /// crossbeam signature compatibility (they may ignore it).
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        #[cfg(feature = "check")]
        model_idx: Option<usize>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic
        /// payload, as with `std::thread`.
        pub fn join(self) -> std::thread::Result<T> {
            // Under a model run, park at a Join scheduling point until
            // the child has logically finished, so the real join below
            // returns without blocking.
            #[cfg(feature = "check")]
            if let Some(idx) = self.model_idx {
                parking_lot::sched::join_child(idx);
            }
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a `&Scope` so it
        /// can spawn further threads, matching crossbeam's API.
        ///
        /// When the spawning thread belongs to a model run, the child
        /// is registered as a model thread *before* the OS thread
        /// starts, so the coordinator controls its every step.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: for<'a> FnOnce(&'a Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            #[cfg(feature = "check")]
            let reg = parking_lot::sched::register_child("scoped");
            #[cfg(feature = "check")]
            let model_idx = reg.as_ref().map(parking_lot::sched::ChildReg::index);
            let handle = inner.spawn(move || {
                let body = move || f(&Scope { inner });
                #[cfg(feature = "check")]
                match reg {
                    Some(r) => parking_lot::sched::run_child(r, body),
                    None => body(),
                }
                #[cfg(not(feature = "check"))]
                body()
            });
            ScopedJoinHandle {
                inner: handle,
                #[cfg(feature = "check")]
                model_idx,
            }
        }
    }

    /// Run `f` with a scope handle; all threads spawned through it are
    /// joined before `scope` returns. Always returns `Ok` (a panicking
    /// child propagates its panic on join, as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_roundtrip() {
        let (tx, rx) = super::channel::unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert!(matches!(
            rx.try_recv(),
            Err(super::channel::TryRecvError::Empty)
        ));
    }

    #[test]
    fn channel_disconnect() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(1).unwrap();
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn scoped_threads_join_and_borrow() {
        let data = [1u64, 2, 3];
        let sum = super::thread::scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u64>());
            let h2 = s.spawn(move |_| 10u64);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 16);
    }
}
