//! Direct tests of the cooperative scheduler runtime (`sched` module):
//! scripted pickers drive small thread sets through locks, condvars and
//! atomics, checking determinism, deadlock detection and abort.
#![cfg(feature = "check")]

use std::sync::atomic::Ordering;
use std::sync::Arc;

use parking_lot::sched::{self, ExecReport, Failure};
use parking_lot::{Condvar, Mutex};

type Body = Box<dyn FnOnce() + Send>;

fn run(threads: Vec<(&str, Body)>, max_steps: u64) -> (ExecReport, Vec<usize>) {
    let mut choices = Vec::new();
    let report = sched::execute(
        threads
            .into_iter()
            .map(|(n, b)| (n.to_string(), b))
            .collect(),
        max_steps,
        &mut |enabled, _last| {
            choices.push(enabled[0].thread);
            0
        },
    );
    (report, choices)
}

#[test]
fn mutex_counter_is_deterministic() {
    let runs: Vec<(u64, Vec<usize>, u64)> = (0..2)
        .map(|_| {
            let counter = Arc::new(Mutex::new(0u64));
            let mk = |c: Arc<Mutex<u64>>| -> Body { Box::new(move || *c.lock() += 1) };
            let (report, choices) = run(
                vec![
                    ("a", mk(Arc::clone(&counter))),
                    ("b", mk(Arc::clone(&counter))),
                ],
                1000,
            );
            assert!(report.failure.is_none(), "{:?}", report.failure);
            let count = *counter.lock();
            (count, choices, report.steps)
        })
        .collect();
    assert_eq!(runs[0].0, 2);
    assert_eq!(runs[0], runs[1], "same picker must replay identically");
}

#[test]
fn condvar_handoff_completes() {
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    let waiter = {
        let s = Arc::clone(&state);
        Box::new(move || {
            let (m, cv) = &*s;
            let mut flag = m.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
        }) as Body
    };
    let setter = {
        let s = Arc::clone(&state);
        Box::new(move || {
            let (m, cv) = &*s;
            *m.lock() = true;
            cv.notify_one();
        }) as Body
    };
    let (report, _) = run(vec![("waiter", waiter), ("setter", setter)], 1000);
    assert!(report.failure.is_none(), "{:?}", report.failure);
}

#[test]
fn lost_wakeup_is_reported_as_deadlock() {
    // The setter flips the flag but never notifies; a schedule that
    // parks the waiter first must be reported as a deadlock.
    let state = Arc::new((Mutex::new(false), Condvar::new()));
    let waiter = {
        let s = Arc::clone(&state);
        Box::new(move || {
            let (m, cv) = &*s;
            let mut flag = m.lock();
            while !*flag {
                cv.wait(&mut flag);
            }
        }) as Body
    };
    let setter = {
        let s = Arc::clone(&state);
        Box::new(move || {
            let (m, _cv) = &*s;
            *m.lock() = true;
            // bug under test: missing notify
        }) as Body
    };
    // "Always pick thread 0 first" runs the waiter into its wait
    // before the setter starts.
    let (report, _) = run(vec![("waiter", waiter), ("setter", setter)], 1000);
    match report.failure {
        Some(Failure::Deadlock { ref blocked }) => {
            assert_eq!(blocked.len(), 1);
            assert_eq!(blocked[0].1, "waiter");
            assert!(blocked[0].2.contains("Condvar"), "{}", blocked[0].2);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn instrumented_atomics_are_scheduling_points() {
    let n = Arc::new(sched::atomic::AtomicU64::new(0));
    let mk = |n: Arc<sched::atomic::AtomicU64>| -> Body {
        Box::new(move || {
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
        })
    };
    // Serialised load/store pairs cannot lose updates under the "first
    // enabled" picker (each thread runs to completion in turn).
    let (report, _) = run(
        vec![("a", mk(Arc::clone(&n))), ("b", mk(Arc::clone(&n)))],
        1000,
    );
    assert!(report.failure.is_none());
    assert_eq!(n.load(Ordering::SeqCst), 2);
    // But an adversarial interleaving (both load before either stores)
    // exhibits the lost update — proving accesses really are
    // interleavable at instruction granularity.
    let n2 = Arc::new(sched::atomic::AtomicU64::new(0));
    let mut step = 0usize;
    let report = sched::execute(
        vec![
            ("a".to_string(), mk(Arc::clone(&n2))),
            ("b".to_string(), mk(Arc::clone(&n2))),
        ],
        1000,
        &mut |enabled, _| {
            step += 1;
            // Alternate threads strictly: a.start, b.start, a.load,
            // b.load, a.store, b.store.
            enabled
                .iter()
                .position(|e| e.thread == (step + 1) % 2)
                .unwrap_or(0)
        },
    );
    assert!(report.failure.is_none());
    assert_eq!(
        n2.load(Ordering::SeqCst),
        1,
        "strict alternation must exhibit the lost update"
    );
}

#[test]
fn panic_in_model_thread_aborts_run() {
    let m = Arc::new(Mutex::new(0u64));
    let panicker = Box::new(|| panic!("boom: seeded failure")) as Body;
    let blocker = {
        let m = Arc::clone(&m);
        Box::new(move || {
            for _ in 0..100 {
                *m.lock() += 1;
            }
        }) as Body
    };
    let (report, _) = run(vec![("panicker", panicker), ("worker", blocker)], 10_000);
    match report.failure {
        Some(Failure::Panic {
            ref name,
            ref message,
            ..
        }) => {
            assert_eq!(name, "panicker");
            assert!(message.contains("boom"), "{message}");
        }
        other => panic!("expected panic failure, got {other:?}"),
    }
}

#[test]
fn step_budget_catches_livelock() {
    let stop = Arc::new(sched::atomic::AtomicBool::new(false));
    let spinner = {
        let stop = Arc::clone(&stop);
        Box::new(move || {
            while !stop.load(Ordering::SeqCst) {
                sched::yield_now();
            }
        }) as Body
    };
    // Nobody ever sets `stop`: the spinner yields forever and the
    // budget must end the run.
    let (report, _) = run(vec![("spinner", spinner)], 200);
    match report.failure {
        Some(Failure::StepBudget { steps }) => assert!(steps >= 200),
        other => panic!("expected step-budget failure, got {other:?}"),
    }
}
