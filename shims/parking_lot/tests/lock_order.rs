//! Regression tests proving the `check`-mode lock sanitizer actually
//! fires: a deliberately seeded A→B / B→A inversion must panic with the
//! witness stacks of both acquisitions, and re-entrant locking must be
//! rejected. Compiled only with `--features check`.
#![cfg(feature = "check")]

use parking_lot::{Mutex, RwLock};
use std::panic;

fn panic_message(r: std::thread::Result<()>) -> String {
    let payload = r.expect_err("expected the sanitizer to panic");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn seeded_inversion_panics_with_both_stacks() {
    let a = Mutex::new(0u32);
    let b = Mutex::new(0u32);

    // Establish the order A -> B.
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }

    // Now take them in the opposite order: the B -> A edge closes a cycle
    // and must panic even though no actual deadlock happens single-threaded.
    let msg = panic_message(panic::catch_unwind(panic::AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    })));

    assert!(
        msg.contains("lock-order cycle detected"),
        "unexpected panic message: {msg}"
    );
    // Both witness stacks: the stored edge's stack and the current one.
    assert!(
        msg.contains("witness stack:"),
        "missing stored-edge stack: {msg}"
    );
    assert!(
        msg.contains("current acquisition stack:"),
        "missing current stack: {msg}"
    );
    // Both acquisition sites of the conflicting edge are named.
    assert!(
        msg.matches("tests/lock_order.rs").count() >= 2,
        "expected both acquisition locations in: {msg}"
    );
}

#[test]
fn rwlock_inversion_against_mutex_panics() {
    let m = Mutex::new(());
    let rw = RwLock::new(());

    {
        let _gm = m.lock();
        let _gr = rw.read();
    }
    let msg = panic_message(panic::catch_unwind(panic::AssertUnwindSafe(|| {
        let _gw = rw.write();
        let _gm = m.lock();
    })));
    assert!(
        msg.contains("lock-order cycle detected"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn reentrant_lock_panics() {
    let m = Mutex::new(());
    let _g = m.lock();
    let msg = panic_message(panic::catch_unwind(panic::AssertUnwindSafe(|| {
        let _g2 = m.lock();
    })));
    assert!(
        msg.contains("re-entrant acquisition"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn reentrant_read_panics() {
    let rw = RwLock::new(());
    let _g = rw.read();
    let msg = panic_message(panic::catch_unwind(panic::AssertUnwindSafe(|| {
        // Shared/shared re-entrancy can deadlock under writer priority;
        // the sanitizer treats it like any other re-entrant acquisition.
        let _g2 = rw.read();
    })));
    assert!(
        msg.contains("re-entrant acquisition"),
        "unexpected panic message: {msg}"
    );
}

#[test]
fn consistent_order_is_quiet() {
    let a = Mutex::new(());
    let b = Mutex::new(());
    for _ in 0..3 {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    // try_lock never adds ordering edges of its own, so probing B then A
    // non-blockingly is fine.
    {
        let _gb = b.try_lock().expect("uncontended");
        let _ga = a.try_lock().expect("uncontended");
    }
}
