//! Deterministic cooperative scheduler for model checking (`check` builds).
//!
//! This module is the execution substrate of the `ldbpp-model` checker
//! (DESIGN.md §17). A *model run* executes a small fixed set of threads
//! over real engine code, but serialises them completely: at every
//! instrumented operation — lock acquisition, condvar wait/notify,
//! atomic access, channel send/recv, scoped-thread spawn/join — the
//! thread parks and a coordinator decides who runs next. Exactly one
//! model thread is ever runnable between decisions, so
//!
//! * every interleaving is a sequence of coordinator choices that an
//!   explorer can enumerate and replay bit-for-bit, and
//! * the underlying `std::sync` primitives are only ever acquired when
//!   the scheduler's *logical* bookkeeping guarantees they are free, so
//!   real blocking never happens inside a model run.
//!
//! Threads that are not part of a model run (the coordinator itself,
//! ordinary test threads, production code) carry no scheduler context
//! in TLS and fall straight through every hook to the plain `std`
//! behaviour. The default (no `check`) build compiles none of this.
//!
//! ## Logical state
//!
//! The coordinator mirrors each primitive's state (mutex owner, rwlock
//! reader/writer sets, condvar wait queues) keyed by the same lazy ids
//! `lockcheck` assigns. A blocked operation is represented as a
//! *pending op*; the coordinator computes the enabled subset at each
//! quiescent point and asks a caller-supplied picker to choose. Condvar
//! semantics are modelled faithfully: `wait` releases the mutex and
//! moves the thread to the condvar's FIFO queue in one step (so lost
//! wakeups are representable), `notify` moves waiters to a pending
//! mutex-reacquire, and there are no spurious wakeups (a scheduler that
//! controls every switch never needs them — schedules that would arise
//! from a spurious wakeup also arise from an adversarial notify order).
//!
//! ## Failure modes
//!
//! A model run ends in one of: clean termination (all threads
//! finished), a panic in a model thread (assertion, lockcheck cycle,
//! vclock violation — the first one wins), a *deadlock* (threads
//! remain but no pending op is enabled — this is how lost wakeups
//! surface), or a *step-budget* overrun (livelock backstop). Any
//! failure aborts the run: every parked thread is woken into a
//! [`SchedAbort`] panic that unwinds its stack (running guard
//! destructors, so logical lock state stays consistent) and the
//! coordinator reports the failure to the explorer, which prints a
//! replayable schedule seed.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as RawU64, Ordering as RawOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

use crate::lockcheck::LockId;

/// Panic payload used to unwind model threads when a run is aborted
/// (failure elsewhere, deadlock, step budget). Not a bug in the model:
/// the catch in the thread wrapper recognises it and finishes quietly.
pub struct SchedAbort;

/// What kind of operation a parked thread wants to perform next.
///
/// The kind (together with [`PendingOp::obj`]) drives enabledness,
/// preemption-free runs, and the independence relation used for
/// sleep-set pruning.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Thread registered, about to run its body (always enabled).
    Start,
    /// `Mutex::lock`; enabled when the mutex is logically free.
    MutexLock,
    /// `Mutex::try_lock`; always enabled (may be granted as a failure).
    MutexTryLock,
    /// `RwLock::read`; enabled when no logical writer holds the lock.
    RwRead,
    /// `RwLock::write`; enabled when no logical reader or writer.
    RwWrite,
    /// Re-acquire the mutex after a condvar wait was notified.
    CondReacquire,
    /// `Condvar::notify_one` / `notify_all`; always enabled.
    CondNotify,
    /// Instrumented atomic load; always enabled.
    AtomicLoad,
    /// Instrumented atomic store; always enabled.
    AtomicStore,
    /// Instrumented atomic read-modify-write; always enabled.
    AtomicRmw,
    /// Channel send (unbounded, always enabled).
    ChanSend,
    /// Channel receive; gated on "message available or disconnected".
    ChanRecv,
    /// Scoped-thread join; enabled when the child thread has finished.
    Join,
    /// Predicate-gated wait (e.g. drain "active ≤ waiters"); enabled
    /// when the predicate, evaluated by the coordinator at a quiescent
    /// point, returns true.
    Gate,
    /// Plain yield point; always enabled.
    Yield,
}

/// A parked thread's declared next operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PendingOp {
    /// Operation kind.
    pub kind: OpKind,
    /// Identity of the object operated on (lock id, atomic id, channel
    /// id, or target thread index for [`OpKind::Join`]). Ids are only
    /// comparable within the same [`Class`].
    pub obj: u64,
    /// Whether enabledness is decided by a caller-supplied predicate.
    /// Gated ops are conservatively dependent with everything.
    pub gated: bool,
}

/// Coarse object-id namespace of an op; ids from different classes come
/// from different counters and must never be compared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Class {
    Lock,
    Cv,
    Atomic,
    Chan,
    /// Start/Join/Yield: commute with everything (see `independent`).
    Free,
}

impl PendingOp {
    fn class(&self) -> Class {
        match self.kind {
            OpKind::MutexLock
            | OpKind::MutexTryLock
            | OpKind::RwRead
            | OpKind::RwWrite
            | OpKind::CondReacquire => Class::Lock,
            OpKind::CondNotify => Class::Cv,
            OpKind::AtomicLoad | OpKind::AtomicStore | OpKind::AtomicRmw => Class::Atomic,
            OpKind::ChanSend | OpKind::ChanRecv => Class::Chan,
            OpKind::Start | OpKind::Join | OpKind::Yield | OpKind::Gate => Class::Free,
        }
    }

    /// Conservative independence (commutativity) relation for sleep-set
    /// pruning: two enabled ops are independent iff executing them in
    /// either order yields the same state. Over-approximating
    /// dependence is sound (less pruning); the only aggressive case
    /// here is `Free`-class ops, which touch no shared object state.
    pub fn independent(&self, other: &PendingOp) -> bool {
        if self.gated || other.gated {
            return false; // predicate may read anything
        }
        let (ca, cb) = (self.class(), other.class());
        if ca == Class::Free || cb == Class::Free {
            return true; // start/join/yield commute with everything
        }
        if ca != cb || self.obj != other.obj {
            return true; // disjoint object state
        }
        match ca {
            Class::Lock => self.kind == OpKind::RwRead && other.kind == OpKind::RwRead,
            Class::Atomic => self.kind == OpKind::AtomicLoad && other.kind == OpKind::AtomicLoad,
            _ => false,
        }
    }
}

/// One entry of the enabled set handed to the picker.
#[derive(Clone, Debug)]
pub struct EnabledOp {
    /// Thread index (position in the `execute` thread list; children
    /// registered during the run are appended in registration order).
    pub thread: usize,
    /// The operation that thread is parked on.
    pub op: PendingOp,
}

/// Why a model run failed.
#[derive(Debug, Clone)]
pub enum Failure {
    /// A model thread panicked (assertion, lockcheck, vclock, seeded
    /// bug detector). Only the first panic is recorded.
    Panic {
        /// Index of the panicking thread.
        thread: usize,
        /// Name of the panicking thread.
        name: String,
        /// Panic payload rendered to a string.
        message: String,
    },
    /// No pending op is enabled but threads remain: a real deadlock or
    /// a lost wakeup.
    Deadlock {
        /// `(thread index, thread name, what it is blocked on)`.
        blocked: Vec<(usize, String, String)>,
    },
    /// The run exceeded the step budget (livelock backstop).
    StepBudget {
        /// The budget that was exhausted.
        steps: u64,
    },
}

impl Failure {
    /// One-line description for reports.
    pub fn describe(&self) -> String {
        match self {
            Failure::Panic {
                thread,
                name,
                message,
            } => format!("thread #{thread} '{name}' panicked: {message}"),
            Failure::Deadlock { blocked } => {
                let parts: Vec<String> = blocked
                    .iter()
                    .map(|(i, n, w)| format!("#{i} '{n}' blocked on {w}"))
                    .collect();
                format!("deadlock: {}", parts.join("; "))
            }
            Failure::StepBudget { steps } => {
                format!("step budget exhausted after {steps} scheduled operations (livelock?)")
            }
        }
    }
}

/// Outcome of one fully-executed (or aborted) model run.
#[derive(Debug)]
pub struct ExecReport {
    /// `None` on clean termination.
    pub failure: Option<Failure>,
    /// Number of scheduling decisions granted.
    pub steps: u64,
}

type GatePred = Arc<dyn Fn() -> bool + Send + Sync>;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TStatus {
    /// Slot registered; OS thread not yet parked at its start point.
    Starting,
    /// Granted and executing real code between yield points.
    Running,
    /// Parked with a pending op, waiting to be granted.
    Parked,
    /// In a condvar's wait queue (not schedulable until notified).
    CvWaiting(u64),
    Finished,
}

struct ThreadState {
    name: String,
    status: TStatus,
    pending: Option<PendingOp>,
    gate: Option<GatePred>,
    scheduled: bool,
    /// Result of a granted `MutexTryLock` (true = acquired).
    try_ok: bool,
}

#[derive(Default)]
struct RwSt {
    writer: Option<usize>,
    readers: Vec<usize>,
}

struct SchedState {
    threads: Vec<ThreadState>,
    /// Logical mutex owners (also used for condvar reacquisition).
    mutexes: HashMap<u64, Option<usize>>,
    rwlocks: HashMap<u64, RwSt>,
    /// Condvar FIFO wait queues: `(thread, mutex to reacquire)`.
    cvs: HashMap<u64, Vec<(usize, u64)>>,
    failure: Option<Failure>,
    aborting: bool,
    steps: u64,
    last_granted: Option<usize>,
}

struct Scheduler {
    st: StdMutex<SchedState>,
    cv: StdCondvar,
}

impl Scheduler {
    fn new() -> Scheduler {
        Scheduler {
            st: StdMutex::new(SchedState {
                threads: Vec::new(),
                mutexes: HashMap::new(),
                rwlocks: HashMap::new(),
                cvs: HashMap::new(),
                failure: None,
                aborting: false,
                steps: 0,
                last_granted: None,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SchedState> {
        self.st.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Clone)]
struct Ctx {
    sched: Arc<Scheduler>,
    me: usize,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

fn current() -> Option<Ctx> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the calling thread is a registered model thread of an active
/// run (i.e. whether scheduler hooks will intercept its operations).
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Object-id counter for scheduler-managed objects that have no
/// `lockcheck` identity (atomics, channels). Distinct id space from
/// lock ids; ops only compare ids within one class.
static NEXT_OBJ: RawU64 = RawU64::new(1);

fn next_obj_id() -> u64 {
    NEXT_OBJ.fetch_add(1, RawOrdering::Relaxed)
}

/// Lazily-assigned identity for instrumented atomics/channels, same
/// shape as `lockcheck::LockId` so construction stays `const`.
pub struct ObjId(RawU64);

impl ObjId {
    /// Unassigned id (assigned on first instrumented access).
    pub const fn new() -> ObjId {
        ObjId(RawU64::new(0))
    }

    fn get(&self) -> u64 {
        let cur = self.0.load(RawOrdering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = next_obj_id();
        match self
            .0
            .compare_exchange(0, fresh, RawOrdering::Relaxed, RawOrdering::Relaxed)
        {
            Ok(_) => fresh,
            Err(raced) => raced,
        }
    }
}

impl Default for ObjId {
    fn default() -> Self {
        ObjId::new()
    }
}

/// Park the current model thread with `op` pending and block until the
/// coordinator grants it. Panics with [`SchedAbort`] if the run aborts.
fn yield_for(ctx: &Ctx, op: PendingOp, gate: Option<GatePred>) {
    let mut st = ctx.sched.lock();
    {
        let t = &mut st.threads[ctx.me];
        t.status = TStatus::Parked;
        t.pending = Some(op);
        t.gate = gate;
        t.scheduled = false;
    }
    ctx.sched.cv.notify_all();
    loop {
        if st.aborting && !st.threads[ctx.me].scheduled {
            st.threads[ctx.me].pending = None;
            st.threads[ctx.me].gate = None;
            drop(st);
            panic::panic_any(SchedAbort);
        }
        if st.threads[ctx.me].scheduled {
            break;
        }
        st = ctx.sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let t = &mut st.threads[ctx.me];
    t.scheduled = false;
    t.status = TStatus::Running;
    t.pending = None;
    t.gate = None;
}

// ---------------------------------------------------------------------------
// Hooks used by the shim primitives (lib.rs) and by instrumented code.
// All are no-ops (returning `None`/`false`) on non-model threads.
// ---------------------------------------------------------------------------

/// Which logical lock state a [`Grant`] releases on drop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GrantKind {
    Mutex,
    Read,
    Write,
}

/// Logical-ownership token for a scheduler-managed lock acquisition.
/// Dropping it (when the shim guard drops) releases the logical lock;
/// condvar wait disarms it instead (the wait itself releases).
pub struct Grant {
    sched: Arc<Scheduler>,
    obj: u64,
    kind: GrantKind,
    me: usize,
    armed: bool,
}

impl Grant {
    fn disarm(mut self) -> u64 {
        self.armed = false;
        self.obj
    }
}

impl Drop for Grant {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = self.sched.lock();
        match self.kind {
            GrantKind::Mutex => {
                st.mutexes.insert(self.obj, None);
            }
            GrantKind::Read => {
                if let Some(rw) = st.rwlocks.get_mut(&self.obj) {
                    if let Some(pos) = rw.readers.iter().position(|&r| r == self.me) {
                        rw.readers.swap_remove(pos);
                    }
                }
            }
            GrantKind::Write => {
                if let Some(rw) = st.rwlocks.get_mut(&self.obj) {
                    rw.writer = None;
                }
            }
        }
    }
}

fn lock_point(id: &LockId, kind: OpKind, grant_kind: GrantKind) -> Option<Grant> {
    let ctx = current()?;
    let obj = id.get();
    yield_for(
        &ctx,
        PendingOp {
            kind,
            obj,
            gated: false,
        },
        None,
    );
    Some(Grant {
        sched: ctx.sched,
        obj,
        kind: grant_kind,
        me: ctx.me,
        armed: true,
    })
}

/// Scheduling point for `Mutex::lock`. `None` when not under a model
/// run; otherwise parks until the logical mutex is granted.
pub(crate) fn mutex_lock(id: &LockId) -> Option<Grant> {
    lock_point(id, OpKind::MutexLock, GrantKind::Mutex)
}

/// Scheduling point for `Mutex::try_lock`. `None` when not under a
/// model run; `Some(None)` = would block; `Some(Some(grant))` = taken.
pub(crate) fn mutex_try_lock(id: &LockId) -> Option<Option<Grant>> {
    let ctx = current()?;
    let obj = id.get();
    yield_for(
        &ctx,
        PendingOp {
            kind: OpKind::MutexTryLock,
            obj,
            gated: false,
        },
        None,
    );
    let ok = ctx.sched.lock().threads[ctx.me].try_ok;
    Some(ok.then(|| Grant {
        sched: ctx.sched,
        obj,
        kind: GrantKind::Mutex,
        me: ctx.me,
        armed: true,
    }))
}

/// Scheduling point for `RwLock::read`.
pub(crate) fn rw_read(id: &LockId) -> Option<Grant> {
    lock_point(id, OpKind::RwRead, GrantKind::Read)
}

/// Scheduling point for `RwLock::write`.
pub(crate) fn rw_write(id: &LockId) -> Option<Grant> {
    lock_point(id, OpKind::RwWrite, GrantKind::Write)
}

/// Condvar wait under the scheduler: atomically (from the model's point
/// of view) release the mutex `grant` covers and join `cv`'s wait
/// queue; block until notified *and* the mutex is logically
/// re-granted. Returns the new grant for the re-acquired mutex.
pub(crate) fn condvar_wait(cv: &LockId, grant: Grant) -> Grant {
    let ctx = current().expect("condvar_wait called off a model thread");
    let sched = Arc::clone(&ctx.sched);
    let cv_id = cv.get();
    let mutex_obj = grant.disarm();
    let mut st = sched.lock();
    st.mutexes.insert(mutex_obj, None);
    st.cvs.entry(cv_id).or_default().push((ctx.me, mutex_obj));
    {
        let t = &mut st.threads[ctx.me];
        t.status = TStatus::CvWaiting(cv_id);
        t.pending = None;
        t.scheduled = false;
    }
    sched.cv.notify_all();
    loop {
        if st.aborting && !st.threads[ctx.me].scheduled {
            // Leave the cv queue consistent for the deadlock report.
            if let Some(q) = st.cvs.get_mut(&cv_id) {
                q.retain(|&(t, _)| t != ctx.me);
            }
            drop(st);
            panic::panic_any(SchedAbort);
        }
        if st.threads[ctx.me].scheduled {
            break;
        }
        st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    let t = &mut st.threads[ctx.me];
    t.scheduled = false;
    t.status = TStatus::Running;
    t.pending = None;
    drop(st);
    Grant {
        sched,
        obj: mutex_obj,
        kind: GrantKind::Mutex,
        me: ctx.me,
        armed: true,
    }
}

/// Timed condvar wait under the scheduler. The model has no clock, so
/// the wait is modelled as the always-legal "timeout raced the notify"
/// outcome: release the mutex, yield (a scheduling point at which any
/// notifier can run), re-acquire, and report that the timeout fired.
/// The thread never joins the cv queue — a notify during the window is
/// a permitted no-op. Predicate loops around `wait_timeout` thereby
/// degenerate to a schedulable poll, which the coordinator can
/// interleave like any other op sequence.
pub(crate) fn condvar_wait_timeout(grant: Grant) -> Grant {
    let ctx = current().expect("condvar_wait_timeout called off a model thread");
    let mutex_obj = grant.disarm();
    ctx.sched.lock().mutexes.insert(mutex_obj, None);
    // The release above is observed at this yield (yield_for notifies
    // the coordinator), so a parked notifier or lock waiter can run
    // before we ask for the mutex back.
    yield_for(
        &ctx,
        PendingOp {
            kind: OpKind::Yield,
            obj: 0,
            gated: false,
        },
        None,
    );
    yield_for(
        &ctx,
        PendingOp {
            kind: OpKind::CondReacquire,
            obj: mutex_obj,
            gated: false,
        },
        None,
    );
    Grant {
        sched: ctx.sched,
        obj: mutex_obj,
        kind: GrantKind::Mutex,
        me: ctx.me,
        armed: true,
    }
}

/// Condvar notify under the scheduler: a scheduling point, then moves
/// up to one (or all) waiters from the cv queue to a pending
/// mutex-reacquire. Returns false when not under a model run.
pub(crate) fn condvar_notify(cv: &LockId, all: bool) -> bool {
    let Some(ctx) = current() else {
        return false;
    };
    let cv_id = cv.get();
    yield_for(
        &ctx,
        PendingOp {
            kind: OpKind::CondNotify,
            obj: cv_id,
            gated: false,
        },
        None,
    );
    let mut st = ctx.sched.lock();
    let woken: Vec<(usize, u64)> = match st.cvs.get_mut(&cv_id) {
        Some(q) if !q.is_empty() => {
            let n = if all { q.len() } else { 1 };
            q.drain(..n).collect()
        }
        _ => Vec::new(),
    };
    for (w, mutex_obj) in woken {
        let t = &mut st.threads[w];
        t.status = TStatus::Parked;
        t.pending = Some(PendingOp {
            kind: OpKind::CondReacquire,
            obj: mutex_obj,
            gated: false,
        });
    }
    true
}

/// Generic always-enabled scheduling point (atomics, channel sends,
/// explicit yields). Returns false when not under a model run.
pub fn op_point(kind: OpKind, obj: u64) -> bool {
    let Some(ctx) = current() else {
        return false;
    };
    yield_for(
        &ctx,
        PendingOp {
            kind,
            obj,
            gated: false,
        },
        None,
    );
    true
}

/// Predicate-gated scheduling point: parks until `pred` (evaluated by
/// the coordinator at quiescent points) returns true. Returns false
/// when not under a model run, in which case the caller must wait by
/// its own means. Used for drain ("active ≤ waiters") and channel recv.
pub fn blocking_point(kind: OpKind, obj: u64, pred: GatePred) -> bool {
    let Some(ctx) = current() else {
        return false;
    };
    yield_for(
        &ctx,
        PendingOp {
            kind,
            obj,
            gated: true,
        },
        Some(pred),
    );
    true
}

/// Explicit yield point for model code.
pub fn yield_now() {
    op_point(OpKind::Yield, 0);
}

// ---------------------------------------------------------------------------
// Child threads (crossbeam scoped spawn/join).
// ---------------------------------------------------------------------------

/// Registration handle for a child model thread, created by the parent
/// *before* the OS thread spawns so the coordinator never races it.
pub struct ChildReg {
    sched: Arc<Scheduler>,
    me: usize,
}

impl ChildReg {
    /// The child's model-thread index (for [`join_child`]).
    pub fn index(&self) -> usize {
        self.me
    }
}

/// Register a child thread slot from the spawning (parent) model
/// thread. `None` when the parent is not under a model run, in which
/// case the child runs unscheduled.
pub fn register_child(name: &str) -> Option<ChildReg> {
    let ctx = current()?;
    let mut st = ctx.sched.lock();
    let me = st.threads.len();
    st.threads.push(ThreadState {
        name: name.to_string(),
        status: TStatus::Starting,
        pending: None,
        gate: None,
        scheduled: false,
        try_ok: false,
    });
    Some(ChildReg {
        sched: Arc::clone(&ctx.sched),
        me,
    })
}

/// Run a registered child thread's body under the scheduler. Panics
/// (including [`SchedAbort`]) are recorded and re-thrown so scoped
/// `join` observes them exactly as without the scheduler.
pub fn run_child<R>(reg: ChildReg, f: impl FnOnce() -> R) -> R {
    let ctx = Ctx {
        sched: Arc::clone(&reg.sched),
        me: reg.me,
    };
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx.clone()));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        yield_for(
            &ctx,
            PendingOp {
                kind: OpKind::Start,
                obj: 0,
                gated: false,
            },
            None,
        );
        f()
    }));
    CURRENT.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(v) => {
            finish_thread(&reg.sched, reg.me, None);
            v
        }
        Err(payload) => {
            finish_thread(&reg.sched, reg.me, Some(&*payload));
            panic::resume_unwind(payload)
        }
    }
}

/// Scheduling point before joining child thread `child` (its index from
/// the order of `register_child` calls): parks until it has finished,
/// so the real join below never blocks.
pub fn join_child(child: usize) {
    if let Some(ctx) = current() {
        yield_for(
            &ctx,
            PendingOp {
                kind: OpKind::Join,
                obj: child as u64,
                gated: false,
            },
            None,
        );
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

fn finish_thread(sched: &Arc<Scheduler>, me: usize, payload: Option<&(dyn std::any::Any + Send)>) {
    let mut st = sched.lock();
    if let Some(p) = payload {
        if !p.is::<SchedAbort>() && st.failure.is_none() {
            let name = st.threads[me].name.clone();
            st.failure = Some(Failure::Panic {
                thread: me,
                name,
                message: panic_message(p),
            });
            st.aborting = true;
        }
    }
    st.threads[me].status = TStatus::Finished;
    sched.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Instrumented atomics.
// ---------------------------------------------------------------------------

/// Atomic integer/bool types that park at every access when the calling
/// thread is part of a model run, and behave exactly like
/// `std::sync::atomic` otherwise. Engine code selects these via
/// `ldbpp_lsm::sync` so the default build re-exports plain std types.
pub mod atomic {
    use super::{op_point, ObjId, OpKind};
    pub use std::sync::atomic::Ordering;

    macro_rules! instrumented_atomic {
        ($name:ident, $raw:ident, $prim:ty) => {
            /// Scheduler-instrumented drop-in for the std atomic of the
            /// same name (subset of the API the engine uses).
            pub struct $name {
                id: ObjId,
                v: std::sync::atomic::$raw,
            }

            impl $name {
                /// Create a new atomic with the given initial value.
                pub const fn new(v: $prim) -> $name {
                    $name {
                        id: ObjId::new(),
                        v: std::sync::atomic::$raw::new(v),
                    }
                }

                /// Atomic load (scheduling point under a model run).
                pub fn load(&self, order: Ordering) -> $prim {
                    op_point(OpKind::AtomicLoad, self.id.get());
                    self.v.load(order)
                }

                /// Atomic store (scheduling point under a model run).
                pub fn store(&self, val: $prim, order: Ordering) {
                    op_point(OpKind::AtomicStore, self.id.get());
                    self.v.store(val, order)
                }

                /// Atomic swap (scheduling point under a model run).
                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    op_point(OpKind::AtomicRmw, self.id.get());
                    self.v.swap(val, order)
                }

                /// Compare-and-exchange (scheduling point under a model run).
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    op_point(OpKind::AtomicRmw, self.id.get());
                    self.v.compare_exchange(current, new, success, failure)
                }

                /// Mutable access without instrumentation (exclusive).
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.v.get_mut()
                }

                /// Consume the atomic, returning the inner value.
                pub fn into_inner(self) -> $prim {
                    self.v.into_inner()
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // No scheduling point: Debug is diagnostic-only.
                    self.v.fmt(f)
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(Default::default())
                }
            }
        };
    }

    instrumented_atomic!(AtomicU64, AtomicU64, u64);
    instrumented_atomic!(AtomicUsize, AtomicUsize, usize);
    instrumented_atomic!(AtomicBool, AtomicBool, bool);

    macro_rules! instrumented_fetch {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// Atomic add (scheduling point under a model run).
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    op_point(OpKind::AtomicRmw, self.id.get());
                    self.v.fetch_add(val, order)
                }

                /// Atomic subtract (scheduling point under a model run).
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    op_point(OpKind::AtomicRmw, self.id.get());
                    self.v.fetch_sub(val, order)
                }

                /// Atomic max (scheduling point under a model run).
                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    op_point(OpKind::AtomicRmw, self.id.get());
                    self.v.fetch_max(val, order)
                }
            }
        };
    }

    instrumented_fetch!(AtomicU64, u64);
    instrumented_fetch!(AtomicUsize, usize);
}

// ---------------------------------------------------------------------------
// Channel identity (logical state lives in the crossbeam shim).
// ---------------------------------------------------------------------------

/// Draw a fresh channel id (crossbeam shim; the channel's logical
/// length/sender-count state lives in the shim, enabledness is
/// expressed via [`blocking_point`]).
pub fn chan_id() -> u64 {
    next_obj_id()
}

// ---------------------------------------------------------------------------
// The coordinator.
// ---------------------------------------------------------------------------

/// Serialises model runs process-wide: logical lock state is keyed by
/// process-global ids and TLS, so two concurrent runs (e.g. parallel
/// `#[test]`s) must take turns.
static EXEC: StdMutex<()> = StdMutex::new(());

/// Suppress default panic printing for model threads: panics there are
/// either deliberate aborts or captured and reported with a schedule
/// seed; the default hook would print thousands of backtraces during
/// exploration. Installed once, delegates for non-model threads.
fn install_quiet_panic_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !active() {
                prev(info);
            }
        }));
    });
}

fn quiescent(st: &SchedState) -> bool {
    st.threads
        .iter()
        .all(|t| !matches!(t.status, TStatus::Starting | TStatus::Running))
}

fn all_finished(st: &SchedState) -> bool {
    st.threads.iter().all(|t| t.status == TStatus::Finished)
}

fn op_enabled(st: &SchedState, t: &ThreadState, op: &PendingOp) -> bool {
    if op.gated {
        return t.gate.as_ref().is_some_and(|g| g());
    }
    match op.kind {
        OpKind::MutexLock | OpKind::CondReacquire => {
            st.mutexes.get(&op.obj).copied().flatten().is_none()
        }
        OpKind::RwRead => st.rwlocks.get(&op.obj).is_none_or(|rw| rw.writer.is_none()),
        OpKind::RwWrite => st
            .rwlocks
            .get(&op.obj)
            .is_none_or(|rw| rw.writer.is_none() && rw.readers.is_empty()),
        OpKind::Join => st
            .threads
            .get(op.obj as usize)
            .is_some_and(|c| c.status == TStatus::Finished),
        _ => true, // Start, try-lock, notify, atomics, sends, yields
    }
}

fn enabled_set(st: &SchedState) -> Vec<EnabledOp> {
    let mut out = Vec::new();
    for (i, t) in st.threads.iter().enumerate() {
        if t.status != TStatus::Parked {
            continue;
        }
        let Some(op) = t.pending else { continue };
        if op_enabled(st, t, &op) {
            out.push(EnabledOp { thread: i, op });
        }
    }
    out
}

fn describe_block(st: &SchedState, t: &ThreadState) -> String {
    match t.status {
        TStatus::CvWaiting(cv) => format!("Condvar#{cv} (waiting, never notified)"),
        TStatus::Parked => match t.pending {
            Some(op) => {
                let holder = match op.kind {
                    OpKind::MutexLock | OpKind::CondReacquire => st
                        .mutexes
                        .get(&op.obj)
                        .copied()
                        .flatten()
                        .map(|h| format!(" held by #{h} '{}'", st.threads[h].name)),
                    _ => None,
                };
                format!("{:?}#{}{}", op.kind, op.obj, holder.unwrap_or_default())
            }
            None => "<no pending op>".to_string(),
        },
        s => format!("<{s:?}>"),
    }
}

fn grant(st: &mut SchedState, thread: usize) {
    let op = st.threads[thread]
        .pending
        .expect("granting a thread with no pending op");
    match op.kind {
        OpKind::MutexLock | OpKind::CondReacquire => {
            st.mutexes.insert(op.obj, Some(thread));
        }
        OpKind::MutexTryLock => {
            let slot = st.mutexes.entry(op.obj).or_insert(None);
            if slot.is_none() {
                *slot = Some(thread);
                st.threads[thread].try_ok = true;
            } else {
                st.threads[thread].try_ok = false;
            }
        }
        OpKind::RwRead => {
            st.rwlocks.entry(op.obj).or_default().readers.push(thread);
        }
        OpKind::RwWrite => {
            st.rwlocks.entry(op.obj).or_default().writer = Some(thread);
        }
        _ => {}
    }
    st.steps += 1;
    st.last_granted = Some(thread);
    // Considered Running from the moment of the grant (the OS thread
    // may take a while to wake): keeps the quiescence check and the
    // enabled set from seeing a granted thread as still parked.
    st.threads[thread].status = TStatus::Running;
    st.threads[thread].scheduled = true;
}

/// Run one complete model execution.
///
/// Spawns one OS thread per `(name, body)` pair, serialises them
/// through the scheduler, and calls `picker(enabled, last_granted)` at
/// every scheduling decision; the picker returns an index into
/// `enabled`. The enabled set is sorted by thread index, so a picker
/// replaying a recorded choice list reproduces the exact interleaving.
///
/// Returns when every thread has finished or the run was aborted
/// (failure/deadlock/step budget). Only one execution runs at a time
/// process-wide.
pub fn execute(
    threads: Vec<(String, Box<dyn FnOnce() + Send>)>,
    max_steps: u64,
    picker: &mut dyn FnMut(&[EnabledOp], Option<usize>) -> usize,
) -> ExecReport {
    install_quiet_panic_hook();
    let _exec = EXEC.lock().unwrap_or_else(|e| e.into_inner());
    let sched = Arc::new(Scheduler::new());
    {
        let mut st = sched.lock();
        for (name, _) in &threads {
            st.threads.push(ThreadState {
                name: name.clone(),
                status: TStatus::Starting,
                pending: None,
                gate: None,
                scheduled: false,
                try_ok: false,
            });
        }
    }
    let mut handles = Vec::with_capacity(threads.len());
    for (i, (name, body)) in threads.into_iter().enumerate() {
        let s = Arc::clone(&sched);
        let h = std::thread::Builder::new()
            .name(format!("model:{name}"))
            .spawn(move || {
                let reg = ChildReg { sched: s, me: i };
                // Swallow the rethrown panic: failures are reported via
                // the run's Failure, not via process unwinding.
                let _ = panic::catch_unwind(AssertUnwindSafe(|| run_child(reg, body)));
            })
            .expect("spawn model thread");
        handles.push(h);
    }

    loop {
        let mut st = sched.lock();
        while !quiescent(&st) {
            st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.failure.is_some() || all_finished(&st) {
            if !all_finished(&st) {
                st.aborting = true;
                sched.cv.notify_all();
                while !all_finished(&st) {
                    st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
            break;
        }
        let enabled = enabled_set(&st);
        if enabled.is_empty() {
            let blocked: Vec<(usize, String, String)> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status != TStatus::Finished)
                .map(|(i, t)| (i, t.name.clone(), describe_block(&st, t)))
                .collect();
            st.failure = Some(Failure::Deadlock { blocked });
            continue; // next iteration takes the abort path
        }
        if st.steps >= max_steps {
            st.failure = Some(Failure::StepBudget { steps: st.steps });
            continue;
        }
        let last = st.last_granted;
        // All model threads are parked: nothing mutates scheduler or
        // model state while the picker runs, so holding the lock is
        // safe and keeps the decision atomic.
        let choice = picker(&enabled, last);
        assert!(
            choice < enabled.len(),
            "picker returned {choice} for an enabled set of {}",
            enabled.len()
        );
        grant(&mut st, enabled[choice].thread);
        sched.cv.notify_all();
    }

    let report = {
        let st = sched.lock();
        ExecReport {
            failure: st.failure.clone(),
            steps: st.steps,
        }
    };
    for h in handles {
        let _ = h.join();
    }
    report
}
