//! Offline stand-in for the `parking_lot` crate, built on `std::sync`.
//!
//! Provides the subset of the API this workspace uses: `Mutex`, `RwLock`,
//! and `Condvar` with parking_lot-style signatures (no `Result` returns —
//! lock poisoning is ignored, matching parking_lot semantics).
//!
//! With the `check` feature enabled every acquisition is additionally
//! recorded in a process-wide lock graph (the `lockcheck` module): lock-order
//! cycles and re-entrant acquisition panic immediately with the acquisition
//! stacks of both sides of the inversion. The default build compiles none
//! of the instrumentation — guards are plain newtypes over `std::sync`.
//!
//! Also with `check`, every primitive doubles as a scheduling point of
//! the deterministic model checker (the `sched` module): when the
//! calling thread belongs to an active model run, acquisitions, condvar
//! waits and notifies park the thread and let the run's coordinator
//! choose the interleaving. Threads outside a model run (all of
//! production, and ordinary tests) take the plain path.

use std::fmt;
use std::sync::TryLockError;

#[cfg(feature = "check")]
pub mod lockcheck;
#[cfg(feature = "check")]
pub mod sched;

/// A mutual-exclusion primitive. `lock()` returns the guard directly;
/// a poisoned lock (panicked holder) is entered anyway, like parking_lot.
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "check")]
    id: lockcheck::LockId,
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`]
/// can temporarily take it (std's condvar consumes and returns guards,
/// parking_lot's mutates them in place).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    lock: &'a std::sync::Mutex<T>,
    #[cfg(feature = "check")]
    token: lockcheck::HeldToken,
    // Declared after `inner` and `token`: drop order releases the real
    // lock, then the held record, then the scheduler's logical lock.
    #[cfg(feature = "check")]
    grant: Option<sched::Grant>,
}

impl<T> Mutex<T> {
    /// Create a new mutex guarding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            #[cfg(feature = "check")]
            id: lockcheck::LockId::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "check")]
        let token = lockcheck::acquire(&self.id, lockcheck::Kind::Mutex, true);
        // Under a model run the scheduler parks here until the logical
        // mutex is free, so the real acquisition below never blocks.
        #[cfg(feature = "check")]
        let grant = sched::mutex_lock(&self.id);
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard {
            inner: Some(guard),
            lock: &self.inner,
            #[cfg(feature = "check")]
            token,
            #[cfg(feature = "check")]
            grant,
        }
    }

    /// Try to acquire the mutex without blocking.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        // Under a model run try_lock is still a scheduling point (its
        // outcome depends on the interleaving); the coordinator decides
        // success against the logical owner.
        #[cfg(feature = "check")]
        if let Some(outcome) = sched::mutex_try_lock(&self.id) {
            let grant = outcome?;
            let inner = match self.inner.try_lock() {
                Ok(g) => g,
                Err(TryLockError::Poisoned(e)) => e.into_inner(),
                Err(TryLockError::WouldBlock) => {
                    unreachable!("sched granted try_lock but the std mutex is held")
                }
            };
            return Some(MutexGuard {
                inner: Some(inner),
                lock: &self.inner,
                token: lockcheck::acquire(&self.id, lockcheck::Kind::Mutex, false),
                grant: Some(grant),
            });
        }
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return None,
        };
        Some(MutexGuard {
            inner: Some(inner),
            lock: &self.inner,
            #[cfg(feature = "check")]
            token: lockcheck::acquire(&self.id, lockcheck::Kind::Mutex, false),
            #[cfg(feature = "check")]
            grant: None,
        })
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard taken during condvar wait")
    }
}

/// A reader-writer lock; read/write return guards directly, poisoning
/// is ignored.
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "check")]
    id: lockcheck::LockId,
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    #[cfg(feature = "check")]
    _token: lockcheck::HeldToken,
    #[cfg(feature = "check")]
    _grant: Option<sched::Grant>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    #[cfg(feature = "check")]
    _token: lockcheck::HeldToken,
    #[cfg(feature = "check")]
    _grant: Option<sched::Grant>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock guarding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            #[cfg(feature = "check")]
            id: lockcheck::LockId::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "check")]
        let token = lockcheck::acquire(&self.id, lockcheck::Kind::Read, true);
        #[cfg(feature = "check")]
        let grant = sched::rw_read(&self.id);
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
            #[cfg(feature = "check")]
            _token: token,
            #[cfg(feature = "check")]
            _grant: grant,
        }
    }

    /// Acquire exclusive write access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "check")]
        let token = lockcheck::acquire(&self.id, lockcheck::Kind::Write, true);
        #[cfg(feature = "check")]
        let grant = sched::rw_write(&self.id);
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
            #[cfg(feature = "check")]
            _token: token,
            #[cfg(feature = "check")]
            _grant: grant,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

/// Why a [`Condvar::wait_timeout`] returned: timeout or notification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed (spurious
    /// wakeups and notifications report false).
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    #[cfg(feature = "check")]
    id: lockcheck::LockId,
    inner: std::sync::Condvar,
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            #[cfg(feature = "check")]
            id: lockcheck::LockId::new(),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded mutex and block until notified;
    /// re-acquires the mutex before returning (parking_lot signature:
    /// mutates the guard in place).
    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Under a model run the wait is modelled logically: release the
        // real and logical mutex, join the condvar's FIFO queue, and
        // park until a modelled notify plus a granted reacquisition.
        // The std condvar is never involved (nothing would signal it).
        #[cfg(feature = "check")]
        if sched::active() {
            let grant = guard.grant.take().unwrap_or_else(|| {
                panic!(
                    "sched: condvar wait on a mutex that was acquired \
                     outside the model run (unsupported pattern)"
                )
            });
            let std_guard = guard.inner.take().expect("guard already taken");
            drop(std_guard);
            guard.token.suspend();
            let regrant = sched::condvar_wait(&self.id, grant);
            guard.inner = Some(guard.lock.lock().unwrap_or_else(|e| e.into_inner()));
            guard.token.resume();
            guard.grant = Some(regrant);
            return;
        }
        let std_guard = guard.inner.take().expect("guard already taken");
        // The mutex is released for the duration of the wait: suspend its
        // held record so other acquisitions don't order against it, then
        // re-record it (with edge checks) once the wait returns.
        #[cfg(feature = "check")]
        guard.token.suspend();
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "check")]
        guard.token.resume();
        guard.inner = Some(std_guard);
        let _ = guard.lock; // keep the field used even if wait is never called elsewhere
    }

    /// Atomically release the guarded mutex and block until notified or
    /// `timeout` elapses; re-acquires the mutex before returning.
    ///
    /// Under an active model run the wait is modelled as an immediate
    /// timeout with a scheduling point in the middle (release, yield so
    /// a notifier can run, re-acquire) — logical time does not advance
    /// in the model, and "the timeout raced the notify" is an outcome a
    /// timed wait always permits. Predicate loops around this call
    /// thereby become schedulable polls instead of untracked sleeps.
    #[track_caller]
    pub fn wait_timeout<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        #[cfg(feature = "check")]
        if sched::active() {
            let _ = timeout;
            let grant = guard.grant.take().unwrap_or_else(|| {
                panic!(
                    "sched: condvar wait_timeout on a mutex that was acquired \
                     outside the model run (unsupported pattern)"
                )
            });
            let std_guard = guard.inner.take().expect("guard already taken");
            drop(std_guard);
            guard.token.suspend();
            let regrant = sched::condvar_wait_timeout(grant);
            guard.inner = Some(guard.lock.lock().unwrap_or_else(|e| e.into_inner()));
            guard.token.resume();
            guard.grant = Some(regrant);
            return WaitTimeoutResult { timed_out: true };
        }
        let std_guard = guard.inner.take().expect("guard already taken");
        #[cfg(feature = "check")]
        guard.token.suspend();
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        #[cfg(feature = "check")]
        guard.token.resume();
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wake one waiting thread. Returns whether a thread was woken
    /// (std cannot report this, so this conservatively returns false).
    pub fn notify_one(&self) -> bool {
        #[cfg(feature = "check")]
        sched::condvar_notify(&self.id, false);
        self.inner.notify_one();
        false
    }

    /// Wake all waiting threads. Returns the number woken (std cannot
    /// report this, so this conservatively returns 0).
    pub fn notify_all(&self) -> usize {
        #[cfg(feature = "check")]
        sched::condvar_notify(&self.id, true);
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn wait_timeout_times_out_and_reacquires() {
        let pair = (Mutex::new(0u32), Condvar::new());
        let mut g = pair.0.lock();
        let res = pair
            .1
            .wait_timeout(&mut g, std::time::Duration::from_millis(5));
        assert!(res.timed_out());
        *g += 1; // the guard is usable again: the mutex was re-acquired
        assert_eq!(*g, 1);
    }

    #[test]
    fn wait_timeout_sees_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                let _ = c.wait_timeout(&mut done, std::time::Duration::from_secs(5));
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*p2;
            let mut done = m.lock();
            while !*done {
                c.wait(&mut done);
            }
        });
        {
            let (m, c) = &*pair;
            *m.lock() = true;
            c.notify_all();
        }
        h.join().unwrap();
    }
}
