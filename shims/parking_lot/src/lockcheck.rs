//! Runtime lock-order sanitizer (compiled only with the `check` feature).
//!
//! Every blocking acquisition through the shim's [`crate::Mutex`] and
//! [`crate::RwLock`] is recorded here:
//!
//! * a **per-thread held list** tracks which locks the current thread
//!   holds and where each was acquired (`#[track_caller]` locations);
//! * a **global lock graph** accumulates one directed edge `A → B` the
//!   first time any thread acquires `B` while holding `A`, together with
//!   a captured acquisition backtrace as the witness for that edge.
//!
//! Before inserting a new edge `A → B` the checker searches the graph for
//! an existing path `B → … → A`. Finding one means two code paths take
//! the same locks in opposite orders — a latent deadlock — and the
//! checker panics immediately with the stored witness stack of the
//! conflicting edge *and* the current acquisition stack, even though no
//! actual deadlock occurred on this run. Re-entrant acquisition of a lock
//! the thread already holds (including shared/shared on one `RwLock`,
//! which can deadlock under writer-priority scheduling) panics likewise.
//!
//! Non-blocking acquisitions (`try_lock`) cannot deadlock the acquiring
//! thread, so they add no edges and are never flagged; they still enter
//! the held list because holding a lock — however it was obtained — and
//! then blocking on another one is an ordering commitment.
//!
//! Lock identity is per instance: each `Mutex`/`RwLock` lazily draws a
//! process-unique id on first acquisition (construction is `const`), and
//! dropping a lock removes its node so short-lived locks (memtable
//! latches) don't grow the graph without bound.

use std::backtrace::Backtrace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;

/// How a lock is being acquired (shown in diagnostics; shared/shared
/// re-entrancy is flagged the same as exclusive re-entrancy).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// `Mutex::lock` / `Mutex::try_lock`.
    Mutex,
    /// `RwLock::read`.
    Read,
    /// `RwLock::write`.
    Write,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Mutex => "mutex",
            Kind::Read => "read",
            Kind::Write => "write",
        })
    }
}

/// Lazily-assigned process-unique identity of one lock instance.
///
/// Zero-cost initialisation keeps `Mutex::new` / `RwLock::new` `const`;
/// the id is drawn from a global counter on first acquisition. Dropping
/// the id (when the owning lock drops) removes its node from the lock
/// graph so instance churn (memtable latches, per-test DBs) doesn't grow
/// the graph without bound.
pub struct LockId(AtomicU64);

impl Drop for LockId {
    fn drop(&mut self) {
        let id = self.0.load(Ordering::Relaxed);
        if id == 0 {
            return;
        }
        with_graph(|g| {
            g.edges.remove(&id);
            for m in g.edges.values_mut() {
                m.remove(&id);
            }
        });
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

impl LockId {
    /// Unassigned id (assigned on first acquisition).
    pub const fn new() -> LockId {
        LockId(AtomicU64::new(0))
    }

    pub(crate) fn get(&self) -> u64 {
        let cur = self.0.load(Ordering::Relaxed);
        if cur != 0 {
            return cur;
        }
        let fresh = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        match self
            .0
            .compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => fresh,
            Err(raced) => raced,
        }
    }
}

impl Default for LockId {
    fn default() -> Self {
        LockId::new()
    }
}

#[derive(Clone, Copy)]
struct HeldEntry {
    id: u64,
    kind: Kind,
    loc: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<HeldEntry>> = const { RefCell::new(Vec::new()) };
}

/// Witness for one lock-graph edge `from → to`: where both locks were
/// acquired when the edge was first observed, and the full stack of the
/// acquisition that created it (kept unresolved; symbolication only
/// happens if the edge is ever printed in a panic).
struct EdgeInfo {
    thread: String,
    holder_kind: Kind,
    holder_loc: String,
    acquire_kind: Kind,
    acquire_loc: String,
    backtrace: Backtrace,
}

#[derive(Default)]
struct Graph {
    /// `edges[a][b]` exists iff some thread acquired `b` while holding `a`.
    edges: HashMap<u64, HashMap<u64, EdgeInfo>>,
}

static GRAPH: StdMutex<Option<Graph>> = StdMutex::new(None);

fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    let mut g = GRAPH.lock().unwrap_or_else(|e| e.into_inner());
    f(g.get_or_insert_with(Graph::default))
}

/// Membership token for the per-thread held list. Dropping it (when the
/// guard drops) retires the record; [`suspend`]/[`resume`] bracket a
/// condvar wait, during which the mutex is not actually held.
///
/// [`suspend`]: HeldToken::suspend
/// [`resume`]: HeldToken::resume
pub struct HeldToken {
    id: u64,
    kind: Kind,
    loc: &'static Location<'static>,
    suspended: bool,
}

impl HeldToken {
    /// Remove the lock from the held list for the duration of a condvar
    /// wait (the mutex is released while waiting).
    pub fn suspend(&mut self) {
        self.suspended = true;
        release(self.id);
    }

    /// Re-record the lock after a condvar wait re-acquired it, running
    /// the same ordering checks as a fresh blocking acquisition.
    pub fn resume(&mut self) {
        self.suspended = false;
        record_acquire(self.id, self.kind, self.loc, true);
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        if !self.suspended {
            release(self.id);
        }
    }
}

/// Record an acquisition of `lock` and return the held-list token.
/// Panics on re-entrant acquisition or a lock-order cycle (blocking
/// acquisitions only).
#[track_caller]
pub fn acquire(lock: &LockId, kind: Kind, blocking: bool) -> HeldToken {
    let loc = Location::caller();
    let id = lock.get();
    record_acquire(id, kind, loc, blocking);
    HeldToken {
        id,
        kind,
        loc,
        suspended: false,
    }
}

fn record_acquire(id: u64, kind: Kind, loc: &'static Location<'static>, blocking: bool) {
    let held: Vec<HeldEntry> = HELD.try_with(|h| h.borrow().clone()).unwrap_or_default();

    if blocking {
        if let Some(prev) = held.iter().find(|h| h.id == id) {
            panic!(
                "lockcheck: re-entrant acquisition of Lock#{id} ({kind} at {loc}): \
                 already held by this thread ({} at {})\ncurrent acquisition stack:\n{}",
                prev.kind,
                prev.loc,
                Backtrace::force_capture()
            );
        }
        if !held.is_empty() {
            check_and_record_edges(id, kind, loc, &held);
        }
    }

    let _ = HELD.try_with(|h| h.borrow_mut().push(HeldEntry { id, kind, loc }));
}

fn check_and_record_edges(
    id: u64,
    kind: Kind,
    loc: &'static Location<'static>,
    held: &[HeldEntry],
) {
    let thread = std::thread::current();
    let thread_name = thread.name().unwrap_or("<unnamed>").to_string();
    let mut conflict: Option<String> = None;

    with_graph(|g| {
        for h in held {
            if h.id == id {
                continue;
            }
            if g.edges.get(&h.id).is_some_and(|m| m.contains_key(&id)) {
                continue; // edge already known, already checked
            }
            // About to add h.id -> id; a path id ->* h.id means a cycle.
            if let Some(path) = find_path(g, id, h.id) {
                conflict = Some(format_cycle(g, id, kind, loc, h, &path, &thread_name));
                return;
            }
            g.edges.entry(h.id).or_default().insert(
                id,
                EdgeInfo {
                    thread: thread_name.clone(),
                    holder_kind: h.kind,
                    holder_loc: h.loc.to_string(),
                    acquire_kind: kind,
                    acquire_loc: loc.to_string(),
                    backtrace: Backtrace::force_capture(),
                },
            );
        }
    });

    if let Some(msg) = conflict {
        panic!("{msg}");
    }
}

/// Depth-first search for a path `from ->* to`; returns the node path
/// (including both endpoints) if one exists.
fn find_path(g: &Graph, from: u64, to: u64) -> Option<Vec<u64>> {
    let mut stack = vec![vec![from]];
    let mut visited = std::collections::HashSet::new();
    visited.insert(from);
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("path never empty");
        if last == to {
            return Some(path);
        }
        if let Some(next) = g.edges.get(&last) {
            for &n in next.keys() {
                if visited.insert(n) {
                    let mut p = path.clone();
                    p.push(n);
                    stack.push(p);
                }
            }
        }
    }
    None
}

fn format_cycle(
    g: &Graph,
    id: u64,
    kind: Kind,
    loc: &Location<'_>,
    holder: &HeldEntry,
    path: &[u64],
    thread_name: &str,
) -> String {
    use std::fmt::Write;
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "lockcheck: lock-order cycle detected\n\
         thread '{thread_name}' is acquiring Lock#{id} ({kind}) at {loc}\n\
         while holding Lock#{} ({} acquired at {})\n\
         but the reverse order Lock#{id} -> Lock#{} is already established:",
        holder.id, holder.kind, holder.loc, holder.id
    );
    for pair in path.windows(2) {
        if let Some(e) = g.edges.get(&pair[0]).and_then(|m| m.get(&pair[1])) {
            let _ = writeln!(
                msg,
                "  edge Lock#{} -> Lock#{}: thread '{}' held Lock#{} ({} at {}) \
                 and acquired Lock#{} ({} at {}); witness stack:\n{}",
                pair[0],
                pair[1],
                e.thread,
                pair[0],
                e.holder_kind,
                e.holder_loc,
                pair[1],
                e.acquire_kind,
                e.acquire_loc,
                e.backtrace
            );
        }
    }
    let _ = write!(
        msg,
        "current acquisition stack:\n{}",
        Backtrace::force_capture()
    );
    msg
}

fn release(id: u64) {
    let _ = HELD.try_with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|e| e.id == id) {
            held.remove(pos);
        }
    });
}

/// Number of edges currently in the lock graph (test aid).
pub fn edge_count() -> usize {
    with_graph(|g| g.edges.values().map(|m| m.len()).sum())
}
