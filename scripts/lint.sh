#!/usr/bin/env bash
# Custom lint pass (invoked from scripts/ci.sh), four rules:
#
#   1. No `.unwrap()` / `.expect(` in non-test code under crates/lsm/src
#      and crates/core/src. Test modules (`#[cfg(test)]`-gated blocks and
#      `tests.rs` files) are exempt; the few justified production sites —
#      infallible slice→array conversions, iterator `valid()` contracts —
#      are enumerated in scripts/lint-allow.txt with a reason each.
#
#   2. No raw `std::sync::Mutex` / `std::sync::RwLock` outside shims/: all
#      engine locking must go through the vendored parking_lot shim so the
#      `check` feature's lock-order sanitizer sees every acquisition. The
#      one exception (the sanitizer's own internals must not instrument
#      themselves) is allowlisted.
#
#   3. No raw `std::sync::atomic` (the source of unchecked
#      `Ordering::Relaxed` / `Ordering::SeqCst` traffic) in the engine
#      crates (crates/lsm, crates/core, crates/proto): atomics that take
#      part in cross-thread protocols must go through the
#      `ldbpp_lsm::sync` shim so the `check` feature's model checker can
#      interleave at every access. Diagnostics-only counters and the
#      checker's own internals are enumerated in scripts/lint-allow.txt
#      with a reason each.
#
#   4. Public fallible / diagnostic APIs must be `#[must_use]`:
#      `Result`-returning public fns get this from `Result` itself (the
#      script verifies the workspace `Result` alias resolves to
#      `std::result::Result`, which is `#[must_use]`); public fns returning
#      a bare report type (`*Report`) must carry an explicit
#      `#[must_use = "..."]`, or a dropped integrity report would silently
#      defeat the check.
#
# Exit 0 when clean; prints every violation and exits 1 otherwise.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'PY'
import os, re, sys

ALLOW_FILE = "scripts/lint-allow.txt"
LINT_DIRS = ["crates/lsm/src", "crates/core/src"]
MUTEX_DIRS = ["crates", "src", "examples", "tests"]

def load_allowlist():
    """Entries are `path|line-substring|reason`; a violation is suppressed
    when an entry's path matches and its substring occurs in the line."""
    allow = []
    with open(ALLOW_FILE) as f:
        for raw in f:
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            path, substr, _reason = line.split("|", 2)
            allow.append((path, substr))
    return allow

ALLOW = load_allowlist()
USED = set()

def allowed(path, line):
    for i, (apath, asub) in enumerate(ALLOW):
        if path == apath and asub in line:
            USED.add(i)
            return True
    return False

violations = []

def rust_files(dirs):
    for d in dirs:
        for dirp, _, files in os.walk(d):
            if "shims" in dirp.split(os.sep):
                continue
            for fn in sorted(files):
                if fn.endswith(".rs"):
                    yield os.path.join(dirp, fn)

def non_test_lines(path):
    """Yield (lineno, line) outside #[cfg(test)]-gated items and comments."""
    lines = open(path).read().splitlines()
    skip_depth = None  # brace depth at which a cfg(test) block ends
    armed = False      # saw #[cfg(test)], waiting for the opening brace
    depth = 0
    for i, line in enumerate(lines, 1):
        code = re.sub(r'//.*', '', line)  # strip line comments (incl. docs)
        if skip_depth is None and not armed and re.search(r'#\[cfg\(test\)\]', line):
            armed = True
            continue
        if armed:
            depth_before = depth
            depth += code.count("{") - code.count("}")
            if "{" in code:
                armed = False
                skip_depth = depth_before
                if depth <= skip_depth:  # single-line item
                    skip_depth = None
            continue
        depth += code.count("{") - code.count("}")
        if skip_depth is not None:
            if depth <= skip_depth:
                skip_depth = None
            continue
        yield i, code

# --- Rule 1: unwrap/expect ban -------------------------------------------
for path in rust_files(LINT_DIRS):
    if path.endswith("tests.rs") or f"{os.sep}tests{os.sep}" in path:
        continue
    for i, code in non_test_lines(path):
        if re.search(r'\.unwrap\(\)|\.expect\(', code) and not allowed(path, code):
            violations.append(f"{path}:{i}: unwrap/expect in non-test code: {code.strip()}")

# --- Rule 2: raw std::sync locks outside shims ----------------------------
for path in rust_files(MUTEX_DIRS):
    for i, code in non_test_lines(path):
        if re.search(r'std::sync::(Mutex|RwLock)\b', code) and not allowed(path, code):
            violations.append(f"{path}:{i}: raw std::sync lock (use the parking_lot shim): {code.strip()}")

# --- Rule 3: raw std::sync::atomic in engine crates -----------------------
ATOMIC_DIRS = ["crates/lsm/src", "crates/core/src", "crates/proto/src"]
for path in rust_files(ATOMIC_DIRS):
    for i, code in non_test_lines(path):
        if re.search(r'std::sync::atomic\b', code) and not allowed(path, code):
            violations.append(
                f"{path}:{i}: raw std::sync::atomic (route protocol atomics through "
                f"ldbpp_lsm::sync so the model checker sees them): {code.strip()}"
            )

# --- Rule 4: #[must_use] coverage of public fallible/report APIs ----------
alias = open("crates/common/src/error.rs").read()
if not re.search(r'pub type Result<T>\s*=\s*std::result::Result<T,\s*Error>', alias):
    violations.append(
        "crates/common/src/error.rs: workspace Result alias no longer resolves to "
        "std::result::Result — Result-returning APIs lose their implicit #[must_use]"
    )
for path in rust_files(LINT_DIRS):
    if path.endswith("tests.rs") or f"{os.sep}tests{os.sep}" in path:
        continue
    lines = open(path).read().splitlines()
    for i, line in enumerate(lines):
        m = re.search(r'pub fn \w+.*->\s*(\w+Report)\b', line)
        if not m:
            continue
        window = "\n".join(lines[max(0, i - 5):i])
        if "#[must_use" not in window and not allowed(path, line):
            violations.append(
                f"{path}:{i+1}: public fn returns {m.group(1)} without #[must_use]: {line.strip()}"
            )

stale = [f"{ALLOW_FILE}: stale entry (matched nothing): {ALLOW[i][0]}|{ALLOW[i][1]}"
         for i in range(len(ALLOW)) if i not in USED]

for v in violations + stale:
    print(v)
sys.exit(1 if (violations or stale) else 0)
PY
echo "lint OK"
