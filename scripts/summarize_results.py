#!/usr/bin/env python3
"""Extract headline numbers from results/*.tsv for EXPERIMENTS.md."""
import csv, pathlib

R = pathlib.Path(__file__).resolve().parent.parent / "results"

def rows(name):
    with open(R / f"{name}.tsv") as f:
        return list(csv.DictReader(f, delimiter="\t"))

def cell(name, match, col):
    for r in rows(name):
        if all(r[k] == v for k, v in match.items()):
            return float(r[col])
    raise KeyError((name, match, col))

def main():
    out = {}
    for v in ["NoIndex", "Embedded", "Eager", "Lazy", "Composite"]:
        out[f"fig8a_{v}_total"] = cell("fig8a", {"variant": v}, "total")
        out[f"fig8b_{v}_total_us"] = cell("fig8b", {"variant": v}, "total_us")
    reads = [cell("fig8c", {"variant": v}, "block_reads_per_get")
             for v in ["NoIndex", "Embedded", "Eager", "Lazy", "Composite"]]
    out["fig8c_reads_min"], out["fig8c_reads_max"] = min(reads), max(reads)
    last = {}
    for r in rows("fig9"):
        last[(r["variant"], r["attr"])] = float(r["cum_index_io_blocks"])
    for (v, a), val in last.items():
        out[f"fig9_{v}_{a}"] = val
    for v in ["NoIndex", "Embedded", "Lazy", "Composite"]:
        for k in ["1", "10", "all"]:
            out[f"fig10a_{v}_k{k}_median"] = cell(
                "fig10a", {"variant": v, "topk": k}, "median_us")
            out[f"fig10a_{v}_k{k}_blocks"] = cell(
                "fig10a", {"variant": v, "topk": k}, "blocks_per_op")
    for v in ["NoIndex", "Embedded", "Eager", "Lazy", "Composite"]:
        for k in ["1", "all"]:
            out[f"fig11bc_{v}_narrow_k{k}_blocks"] = cell(
                "fig11bc", {"variant": v, "query": "range_narrow_0.5pct", "topk": k},
                "blocks_per_op")
    byvw = {}
    for r in rows("fig12_15"):
        byvw[(r["workload"], r["variant"])] = r
    for (w, v), r in byvw.items():
        out[f"fig12_{w}_{v}_mean_us"] = float(r["mean_op_us"])
        out[f"fig13_{w}_{v}_compaction"] = float(r["cum_compaction_blocks"])
        out[f"fig13_{w}_{v}_lookup"] = float(r["cum_lookup_blocks"])
    for k in ["1", "10", "all"]:
        out[f"tab3_k{k}_measured"] = cell("tab3", {"topk": k}, "measured_blocks_per_op")
        out[f"tab3_k{k}_model"] = cell("tab3", {"topk": k}, "model_upper_bound")
    for v in ["Eager", "Lazy", "Composite"]:
        out[f"tab5_{v}_idx_reads"] = cell("tab5", {"variant": v}, "index_reads_per_lookup")
        out[f"tab5_{v}_writebytes"] = cell("tab5", {"variant": v}, "index_write_bytes_per_put")
    for b in ["2", "5", "10", "20"]:
        out[f"appc1_{b}bits_blocks"] = cell("appc1", {"bits_per_key": b}, "blocks_per_op")
    for v in ["Embedded", "Lazy"]:
        for c in ["snaplite", "none"]:
            out[f"appc2_{v}_{c}_bytes"] = cell(
                "appc2", {"variant": v, "compression": c}, "total_bytes")
    out["abl_zone_perblock"] = cell("abl_zonemap", {"granularity": "per-block"}, "blocks_per_op")
    out["abl_zone_fileonly"] = cell(
        "abl_zonemap", {"granularity": "file-level-only"}, "blocks_per_op")
    for m in ["getlite_only", "getlite_confirmed", "full_get"]:
        out[f"abl_getlite_{m}_blocks"] = cell("abl_getlite", {"mode": m}, "blocks_per_op")
        out[f"abl_getlite_{m}_hits"] = cell("abl_getlite", {"mode": m}, "hits_per_op")
    cache = rows("abl_cache")
    out["abl_cache_first_hit"] = float(cache[1]["cache_hit_rate"])
    out["abl_cache_last_hit"] = float(cache[-1]["cache_hit_rate"])
    for k in sorted(out):
        print(f"{k}\t{out[k]}")

if __name__ == "__main__":
    main()
