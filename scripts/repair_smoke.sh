#!/usr/bin/env bash
# Repair smoke test: build a real on-disk database, corrupt a table file,
# run `ldbpp_tool repair`, verify the result with the `check` binary, and
# reopen it through the normal read path. Exercises the operator-facing
# self-healing loop end to end (DESIGN.md §13) on DiskEnv rather than the
# in-memory test Env.
set -euo pipefail
cd "$(dirname "$0")/.."

WORK="$(mktemp -d "${TMPDIR:-/tmp}/ldbpp-repair-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT
DB="$WORK/db"

cargo build --release --quiet --bin ldbpp_tool --bin check
TOOL=target/release/ldbpp_tool
CHECK=target/release/check

cargo run --release --quiet --example seed_db -- "$DB" 400 >/dev/null
[ -f "$DB/CURRENT" ] || { echo "repair smoke: failed to seed database"; exit 1; }

# Healthy database: repair is a clean no-op (exit 0) and check agrees.
"$TOOL" repair "$DB" >/dev/null
"$CHECK" "$DB" >/dev/null

# Corrupt a data block in a live table.
TABLE="$(ls "$DB"/*.ldb | head -n1)"
printf '\xff' | dd of="$TABLE" bs=1 seek=32 count=1 conv=notrunc status=none

# The checker must now complain...
if "$CHECK" "$DB" >/dev/null 2>&1; then
  echo "repair smoke: checker missed seeded corruption"; exit 1
fi
# ...repair must salvage, quarantine, and exit non-zero...
if "$TOOL" repair "$DB" >"$WORK/repair.out" 2>&1; then
  echo "repair smoke: repair of a damaged db reported clean"; exit 1
fi
grep -q "quarantined: lost/" "$WORK/repair.out"
[ -n "$(ls "$DB/lost")" ] || { echo "repair smoke: quarantine empty"; exit 1; }
# ...and the repaired database must check clean and serve reads.
"$CHECK" "$DB" >/dev/null
"$TOOL" scan "$DB" "" 5 >/dev/null
"$TOOL" repair "$DB" >/dev/null   # second repair: nothing left to fix

echo "repair smoke OK"
