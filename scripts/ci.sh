#!/usr/bin/env bash
# The full CI gate, run from anywhere inside the repo:
#   1. formatting (`cargo fmt --check`);
#   2. lints (`cargo clippy`, all targets, warnings are errors);
#   3. tier-1 tests: release build + the root-package suite (the seed's
#      acceptance gate), then the full workspace suite;
#   4. documentation (`scripts/check_docs.sh`: rustdoc with -D warnings
#      plus markdown link check).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== tier-1: release build =="
cargo build --release --quiet

echo "== tier-1: root-package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

./scripts/check_docs.sh

echo "CI OK"
