#!/usr/bin/env bash
# The full CI gate, run from anywhere inside the repo:
#   1. formatting (`cargo fmt --check`);
#   2. lints (`cargo clippy`, all targets, warnings are errors);
#   3. tier-1 tests: release build + the root-package suite (the seed's
#      acceptance gate), then the full workspace suite;
#   4. crash-recovery sweep: the fault-injection harnesses in
#      crates/lsm/tests/crash.rs and crates/core/tests/crash_secondary.rs,
#      which crash a scripted workload at every I/O-operation index and
#      verify recovery for the LSM and all five index techniques. The
#      default budget is bounded (short workloads, capped sweep width);
#      set CRASH_SWEEP_FULL=1 for the exhaustive long-workload sweep.
#   5. analysis gates: the custom lint pass (`scripts/lint.sh`: no
#      unwrap/expect in non-test engine code, no raw std::sync locks
#      outside the shims, #[must_use] on public report APIs) and a
#      sanitizer-enabled test pass (`--features check`: instrumented locks
#      with lock-order-cycle/re-entrancy detection plus the vector-clock
#      checker on the lock-free read path — including the seeded-inversion
#      regression proving the detector fires), plus the deterministic
#      model checker (ldbpp-model): bounded schedule exploration of the
#      group-commit, scatter-gather, and shutdown-drain protocol models
#      with seeded-fault catch tests and the pinned-seed regression
#      corpus. The default budget is bounded (preemption-bounded DFS,
#      ~1.2k schedules per model); set MODEL_FULL=1 for the exhaustive
#      sweep;
#   6. contended-writer smoke: the group-commit suites — multi-writer
#      correctness/failure-contract tests (crates/lsm/tests/
#      group_commit_test.rs), the contended facade tests in
#      tests/concurrency.rs, and the fsync-bound write-scaling bench
#      assertion (4 writers must at least double 1 writer's throughput);
#   7. sharded smoke: re-run the contended facade suite and the tier-1
#      crash smoke with LDBPP_SHARDS=2 (every SecondaryDb in those
#      suites becomes a 2-shard hash-partitioned engine, DESIGN.md §15),
#      run the sharded concurrency tests under the lock-order sanitizer
#      (--features check), then seed a real 2-shard on-disk database via
#      examples/seed_db.rs and `ldbpp_tool check` it (per-shard + aggregate
#      report must be clean);
#   8. server smoke: start a release ldbpp_server (2 shards, ephemeral
#      port), drive a bounded networked YCSB mix through the wire
#      protocol (`repro --server ... net_ycsb`), shut down gracefully,
#      `ldbpp_tool check` the resulting database, and run the 8-client
#      e2e harness once under the concurrency sanitizer
#      (`--features check`, DESIGN.md §16);
#   9. chaos smoke: start a fresh release ldbpp_server and drive the
#      bounded chaos experiment against it (`repro --server ... chaos`):
#      a fault-injecting proxy (frame drops + delays, fixed seed) sits
#      between retrying idempotent clients and the server, every acked
#      write is verified by read-back, and the resulting database must
#      `ldbpp_tool check` clean (DESIGN.md §18);
#  10. repair smoke: build a real on-disk database, corrupt a table,
#      `ldbpp_tool repair` it (must exit non-zero and quarantine the
#      damaged file), verify with the `check` binary, and reopen;
#  11. documentation (`scripts/check_docs.sh`: rustdoc with -D warnings
#      plus markdown link check, and grep gates pinning DESIGN.md §14,
#      §15, §16, §18 + the README's group-commit, sharding, server,
#      and chaos coverage).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "== lint gate (scripts/lint.sh) =="
./scripts/lint.sh

echo "== tier-1: release build =="
cargo build --release --quiet

echo "== tier-1: root-package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== concurrency sanitizer: tier-1 + engine suites with --features check =="
cargo test -q --features check
cargo test -q -p parking_lot --features check
cargo test -q -p ldbpp-lsm --features check

echo "== model checker: schedule exploration (MODEL_FULL=${MODEL_FULL:-0}) =="
MODEL_FULL="${MODEL_FULL:-0}" cargo test -q -p ldbpp-model --features check

echo "== crash-recovery sweep (CRASH_SWEEP_FULL=${CRASH_SWEEP_FULL:-0}) =="
CRASH_SWEEP_FULL="${CRASH_SWEEP_FULL:-0}" cargo test -q -p ldbpp-lsm --test crash
CRASH_SWEEP_FULL="${CRASH_SWEEP_FULL:-0}" cargo test -q -p ldbpp-core --test crash_secondary

echo "== contended-writer smoke: group commit under multi-writer load =="
cargo test -q -p ldbpp-lsm --test group_commit_test
cargo test -q --test concurrency contended_
cargo test -q -p ldbpp-bench --release write_scaling

echo "== sharded smoke: facade suites at LDBPP_SHARDS=2 =="
LDBPP_SHARDS=2 cargo test -q --test concurrency
LDBPP_SHARDS=2 cargo test -q --test crash_smoke
LDBPP_SHARDS=2 cargo test -q --features check --test concurrency

echo "== sharded smoke: seed a 2-shard db on disk and check it =="
sharded_dir="$(mktemp -d)"
server_dir="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$sharded_dir" "$server_dir"
}
trap cleanup EXIT
LDBPP_SHARDS=2 cargo run --release --quiet --example seed_db -- "$sharded_dir/db" 300
test -f "$sharded_dir/db/LAYOUT" || { echo "seed_db: no LAYOUT descriptor"; exit 1; }
./target/release/ldbpp_tool check "$sharded_dir/db"

echo "== server smoke: networked YCSB against a real ldbpp_server process =="
# Start a 2-shard server on an ephemeral port, parse the port off its
# stdout, drive a bounded networked YCSB mix through the wire protocol,
# shut down gracefully, then structurally check the resulting database.
./target/release/ldbpp_server "$server_dir/db" \
    --listen 127.0.0.1:0 --shards 2 --index UserID=lazy \
    > "$server_dir/stdout" &
server_pid=$!
server_addr=""
for _ in $(seq 1 100); do
    server_addr="$(sed -n 's/^listening on //p' "$server_dir/stdout")"
    [ -n "$server_addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "ldbpp_server died at startup"; cat "$server_dir/stdout"; exit 1; }
    sleep 0.1
done
[ -n "$server_addr" ] || { echo "ldbpp_server never announced its port"; exit 1; }
cargo run --release --quiet -p ldbpp-bench --bin repro -- \
    --smoke --out "$server_dir/results" \
    --server "$server_addr" --clients 4 net_ycsb
./target/release/ldbpp_server --shutdown "$server_addr"
wait "$server_pid"
server_pid=""
./target/release/ldbpp_tool check "$server_dir/db"
# One sanitizer-instrumented pass of the 8-client e2e harness.
cargo test -q --features check --test server_e2e

echo "== chaos smoke: faulted wire traffic against a real ldbpp_server process =="
# Same recipe as the server smoke, but the traffic goes through the
# chaos proxy (frame drops + delays at a fixed seed) and retrying
# idempotent clients; the experiment read-back-verifies every acked
# write, then the database must check clean.
chaos_seed=42
./target/release/ldbpp_server "$server_dir/chaosdb" \
    --listen 127.0.0.1:0 --shards 2 --index UserID=lazy \
    > "$server_dir/chaos_stdout" &
server_pid=$!
server_addr=""
for _ in $(seq 1 100); do
    server_addr="$(sed -n 's/^listening on //p' "$server_dir/chaos_stdout")"
    [ -n "$server_addr" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "ldbpp_server died at startup"; cat "$server_dir/chaos_stdout"; exit 1; }
    sleep 0.1
done
[ -n "$server_addr" ] || { echo "ldbpp_server never announced its port"; exit 1; }
cargo run --release --quiet -p ldbpp-bench --bin repro -- \
    --smoke --seed "$chaos_seed" --out "$server_dir/results" \
    --server "$server_addr" chaos \
    || { echo "chaos smoke failed (seed $chaos_seed)"; exit 1; }
./target/release/ldbpp_server --shutdown "$server_addr"
wait "$server_pid"
server_pid=""
./target/release/ldbpp_tool check "$server_dir/chaosdb"

echo "== repair smoke: corrupt -> repair -> check -> reopen =="
./scripts/repair_smoke.sh

./scripts/check_docs.sh

echo "CI OK"
