#!/usr/bin/env bash
# Documentation gate, run from anywhere inside the repo:
#   1. rustdoc for the whole workspace must build with zero warnings
#      (crates/lsm additionally enforces #![deny(missing_docs)] at build
#      time, so public API docs cannot regress silently);
#   2. every relative markdown link (and intra-file anchor) in the
#      top-level *.md files must resolve;
#   3. load-bearing sections must exist: DESIGN.md must keep §14
#      (write-path concurrency / group commit), §15 (sharding), §16
#      (the networked service layer), §17 (model checking), and §18
#      (the network failure model), and the README must keep describing
#      the group-commit write path, the sharded engine, the server
#      quickstart, the model checker, and running under chaos —
#      docs that tests and comments point at may not silently disappear.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo doc --workspace (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== markdown link check =="
python3 - <<'PYEOF'
import os, re, sys

def slugify(heading):
    # GitHub's anchor algorithm: lowercase, drop everything but word
    # characters / spaces / hyphens, then spaces become hyphens.
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")

def anchors_of(path):
    out = set()
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = re.match(r"#+\s+(.*)", line)
            if m:
                out.add(slugify(m.group(1)))
    return out

link_re = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
errors = []
for md in sorted(f for f in os.listdir(".") if f.endswith(".md")):
    with open(md, encoding="utf-8") as f:
        text = f.read()
    # Ignore fenced code blocks: they hold sample code, not links.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for target in link_re.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external; unverifiable offline
        path, _, anchor = target.partition("#")
        path = path or md
        if not os.path.exists(path):
            errors.append(f"{md}: broken link -> {target} (no such file)")
        elif anchor and path.endswith(".md") and anchor not in anchors_of(path):
            errors.append(f"{md}: broken anchor -> {target}")

if errors:
    print("\n".join(errors))
    sys.exit(1)
print(f"all markdown links resolve")
PYEOF

echo "== required sections =="
grep -q "^## 14\. Write-path concurrency" DESIGN.md \
    || { echo "DESIGN.md: missing §14 'Write-path concurrency'"; exit 1; }
grep -Eq "group[ -]commit" README.md \
    || { echo "README.md: no longer documents the group-commit write path"; exit 1; }
grep -q "Tuning write concurrency" README.md \
    || { echo "README.md: missing the 'Tuning write concurrency' subsection"; exit 1; }
grep -q "^## 15\. Shard-per-core" DESIGN.md \
    || { echo "DESIGN.md: missing §15 'Shard-per-core'"; exit 1; }
grep -q "Sharding: scaling past one engine" README.md \
    || { echo "README.md: missing the 'Sharding' subsection"; exit 1; }
grep -q "^## 16\. The networked service layer" DESIGN.md \
    || { echo "DESIGN.md: missing §16 'The networked service layer'"; exit 1; }
grep -q "Serving over the network" README.md \
    || { echo "README.md: missing the 'Serving over the network' subsection"; exit 1; }
grep -q "^## 17\. Model checking" DESIGN.md \
    || { echo "DESIGN.md: missing §17 'Model checking'"; exit 1; }
grep -q "Model checker" README.md \
    || { echo "README.md: no longer documents the model checker"; exit 1; }
grep -q "^## 18\. Network failure model" DESIGN.md \
    || { echo "DESIGN.md: missing §18 'Network failure model'"; exit 1; }
grep -q "Running under chaos" README.md \
    || { echo "README.md: missing the 'Running under chaos' subsection"; exit 1; }
echo "required sections present"

echo "docs OK"
