//! Index-selection strategy — the paper's Figure 2 and "Summary of
//! Results", encoded as an executable decision procedure.
//!
//! The paper's guidance:
//! * **Embedded** when the attribute is time-correlated (zone maps prune
//!   well), when space is a concern (e.g. a local store on a mobile
//!   device), or when the workload has few secondary lookups (< 5 %) and is
//!   write-heavy (> 50 %).
//! * Among the Stand-Alone indexes, **Composite** wins for small-top-K
//!   lookups (social feeds), **Lazy** when queries have no top-K limit
//!   (analytics / group-by), and **Eager** "shows exponential write costs
//!   and is not suitable for any workloads".

use crate::indexes::IndexKind;

/// A description of the expected workload on one indexed attribute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Fraction of all operations that are writes (PUT/DEL), in `[0, 1]`.
    pub write_fraction: f64,
    /// Fraction of all operations that are secondary lookups
    /// (LOOKUP + RANGELOOKUP), in `[0, 1]`.
    pub lookup_fraction: f64,
    /// Whether the attribute's values correlate with insertion time (e.g.
    /// a creation timestamp or monotonically assigned id).
    pub time_correlated: bool,
    /// Whether storage space is a first-order constraint.
    pub space_constrained: bool,
    /// Whether lookups ask for a small top-K (`Some(k)` with small `k`)
    /// rather than full result sets.
    pub small_top_k: bool,
}

impl WorkloadProfile {
    /// A neutral starting profile (mixed workload, no special traits).
    pub fn balanced() -> WorkloadProfile {
        WorkloadProfile {
            write_fraction: 0.5,
            lookup_fraction: 0.1,
            time_correlated: false,
            space_constrained: false,
            small_top_k: true,
        }
    }
}

/// The advisor's verdict with its reasoning chain.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// The suggested index technique.
    pub kind: IndexKind,
    /// Human-readable justification (one line per decision taken).
    pub reasons: Vec<String>,
}

/// Recommend an index technique per the paper's Figure 2.
///
/// ```
/// use ldbpp_core::advisor::{recommend, WorkloadProfile};
/// use ldbpp_core::IndexKind;
///
/// let rec = recommend(&WorkloadProfile {
///     time_correlated: true,
///     ..WorkloadProfile::balanced()
/// });
/// assert_eq!(rec.kind, IndexKind::Embedded);
/// ```
pub fn recommend(profile: &WorkloadProfile) -> Recommendation {
    let mut reasons = Vec::new();

    if profile.time_correlated {
        reasons.push(
            "attribute is time-correlated: zone maps prune most files, so the \
             Embedded Index matches stand-alone lookup speed at no space cost"
                .to_string(),
        );
        return Recommendation {
            kind: IndexKind::Embedded,
            reasons,
        };
    }
    if profile.space_constrained {
        reasons.push("space is constrained: the Embedded Index adds no separate table".to_string());
        return Recommendation {
            kind: IndexKind::Embedded,
            reasons,
        };
    }
    if profile.lookup_fraction < 0.05 && profile.write_fraction > 0.5 {
        reasons.push(format!(
            "write-heavy ({}% writes) with rare lookups ({}%): the Embedded \
             Index's zero-maintenance writes dominate",
            (profile.write_fraction * 100.0).round(),
            (profile.lookup_fraction * 100.0).round()
        ));
        return Recommendation {
            kind: IndexKind::Embedded,
            reasons,
        };
    }

    reasons.push(
        "lookup-significant workload: stand-alone indexes answer from a \
         dedicated table"
            .to_string(),
    );
    if profile.small_top_k {
        reasons.push(
            "queries want a small top-K: Lazy stops at the first level holding \
             K results, beating Composite's full-level traversal"
                .to_string(),
        );
        Recommendation {
            kind: IndexKind::LazyStandalone,
            reasons,
        }
    } else {
        reasons.push(
            "queries return unbounded result sets: Composite avoids Lazy's \
             posting-list parsing CPU at equal I/O"
                .to_string(),
        );
        Recommendation {
            kind: IndexKind::CompositeStandalone,
            reasons,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_correlated_gets_embedded() {
        let p = WorkloadProfile {
            time_correlated: true,
            ..WorkloadProfile::balanced()
        };
        assert_eq!(recommend(&p).kind, IndexKind::Embedded);
    }

    #[test]
    fn space_constrained_gets_embedded() {
        let p = WorkloadProfile {
            space_constrained: true,
            ..WorkloadProfile::balanced()
        };
        assert_eq!(recommend(&p).kind, IndexKind::Embedded);
    }

    #[test]
    fn sensor_network_profile_gets_embedded() {
        // The paper's example: write-heavy sensor ingest with rare lookups.
        let p = WorkloadProfile {
            write_fraction: 0.8,
            lookup_fraction: 0.04,
            time_correlated: false,
            space_constrained: false,
            small_top_k: true,
        };
        let r = recommend(&p);
        assert_eq!(r.kind, IndexKind::Embedded);
        assert!(r.reasons[0].contains("write-heavy"));
    }

    #[test]
    fn social_feed_profile_gets_lazy() {
        // "much more reads than writes in Facebook and Twitter ... an ideal
        // index to store user posts which is sensitive to top-k".
        let p = WorkloadProfile {
            write_fraction: 0.2,
            lookup_fraction: 0.3,
            time_correlated: false,
            space_constrained: false,
            small_top_k: true,
        };
        assert_eq!(recommend(&p).kind, IndexKind::LazyStandalone);
    }

    #[test]
    fn analytics_profile_gets_composite() {
        // "Composite is a good solution for general analytics platforms
        // where one may group by year or department".
        let p = WorkloadProfile {
            write_fraction: 0.3,
            lookup_fraction: 0.4,
            time_correlated: false,
            space_constrained: false,
            small_top_k: false,
        };
        assert_eq!(recommend(&p).kind, IndexKind::CompositeStandalone);
    }

    #[test]
    fn eager_is_never_recommended() {
        // "Eager Index shows exponential write costs and is not suitable
        // for any workloads."
        for wf in [0.0, 0.3, 0.6, 0.9] {
            for lf in [0.0, 0.1, 0.5] {
                for tc in [false, true] {
                    for sc in [false, true] {
                        for tk in [false, true] {
                            let p = WorkloadProfile {
                                write_fraction: wf,
                                lookup_fraction: lf,
                                time_correlated: tc,
                                space_constrained: sc,
                                small_top_k: tk,
                            };
                            assert_ne!(recommend(&p).kind, IndexKind::EagerStandalone);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reasons_are_informative() {
        let r = recommend(&WorkloadProfile::balanced());
        assert!(!r.reasons.is_empty());
        for reason in &r.reasons {
            assert!(reason.len() > 20);
        }
    }
}
