//! Analytical cost models — the paper's Tables 3 and 5 and its write
//! amplification (WAMF) analysis (§3.1, §4.3).
//!
//! These are used two ways: unit tests check the formulas against the
//! paper's own worked numbers (`WAMF_Eager = 4290`, `WAMF_Lazy = 132` for
//! the 10 GB experiment), and the benchmark harness compares predictions
//! against measured block I/O.

/// Level size ratio `N` (the paper sets N = 10).
pub const LEVEL_RATIO: u64 = 10;

/// Write amplification of a leveled LSM table receiving plain writes:
/// `2·(N+1)·(L−1)` (the paper cites this from the RocksDB analysis; with
/// N = 10 it is `22·(L−1)`).
pub fn wamf_leveled(levels: u64) -> u64 {
    2 * (LEVEL_RATIO + 1) * levels.saturating_sub(1)
}

/// WAMF of the Lazy and Composite index tables — same as a plain table,
/// "because they write a simple key value pair on every write".
pub fn wamf_lazy(levels: u64) -> u64 {
    wamf_leveled(levels)
}

/// WAMF of the Composite index table.
pub fn wamf_composite(levels: u64) -> u64 {
    wamf_leveled(levels)
}

/// WAMF of the Eager index table: every write rewrites the whole posting
/// list, so a record is rewritten `PL_S` times more: `PL_S · 22·(L−1)`.
pub fn wamf_eager(avg_posting_len: f64, levels: u64) -> f64 {
    avg_posting_len * wamf_leveled(levels) as f64
}

/// Expected minimal bloom false-positive rate for `bits_per_key` (the
/// paper's `2^(−m/S·ln 2)`, Appendix A.3).
pub fn bloom_fp_rate(bits_per_key: f64) -> f64 {
    0.5f64.powf(bits_per_key * std::f64::consts::LN_2)
}

// ---------------------------------------------------------------------------
// Table 3 — Embedded Index
// ---------------------------------------------------------------------------

/// Worst-case read I/O (block accesses) of an Embedded-Index LOOKUP:
/// `(K + ε) + fp · b·(10^(L+1) − 1)/9` where `b` is the number of blocks
/// in level 0 and `ε` the extra blocks scanned to finish a level.
pub fn embedded_lookup_reads(k: u64, epsilon: u64, fp: f64, l0_blocks: u64, levels: u32) -> f64 {
    let total_blocks = l0_blocks as f64 * (10f64.powi(levels as i32 + 1) - 1.0) / 9.0;
    (k + epsilon) as f64 + fp * total_blocks
}

/// Worst-case read I/O of an Embedded-Index RANGELOOKUP on a
/// time-correlated attribute: `K + ε` (zone maps prune everything else).
pub fn embedded_rangelookup_reads_time_correlated(k: u64, epsilon: u64) -> u64 {
    k + epsilon
}

/// Worst-case read I/O of an Embedded-Index RANGELOOKUP on a non
/// time-correlated attribute: all data blocks, "same as if there is no
/// index".
pub fn embedded_rangelookup_reads_uncorrelated(total_blocks: u64) -> u64 {
    total_blocks
}

/// Embedded-Index write I/O per PUT/DEL: one WAL-backed write, no index
/// maintenance I/O (Table 3's "1" write, "0" reads).
pub fn embedded_write_ios() -> (u64, u64) {
    (0, 1)
}

// ---------------------------------------------------------------------------
// Table 5 — Stand-Alone Indexes
// ---------------------------------------------------------------------------

/// Per-PUT index-table I/O `(reads, writes)` with `l` indexed attributes.
pub fn standalone_put_index_ios(kind: StandaloneKind, l: u64) -> (u64, u64) {
    match kind {
        StandaloneKind::Eager => (l, l), // read-modify-write each list
        StandaloneKind::Lazy | StandaloneKind::Composite => (0, l),
    }
}

/// LOOKUP I/O: `(data_table_reads, index_table_reads)` for `k_matched`
/// validated matches in a store with `levels` populated levels.
pub fn standalone_lookup_reads(kind: StandaloneKind, k_matched: u64, levels: u64) -> (u64, u64) {
    match kind {
        // All lower lists are obsolete: one index read.
        StandaloneKind::Eager => (k_matched, 1),
        // The list may be fragmented across every level.
        StandaloneKind::Lazy | StandaloneKind::Composite => (k_matched, levels),
    }
}

/// RANGELOOKUP I/O: every variant may touch all `m_blocks` index blocks
/// holding keys in the range, plus one data-table read per match.
pub fn standalone_rangelookup_reads(k_matched: u64, m_blocks: u64) -> (u64, u64) {
    (k_matched, m_blocks)
}

/// The stand-alone techniques of Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StandaloneKind {
    /// Read-modify-write posting lists.
    Eager,
    /// Append-only posting fragments.
    Lazy,
    /// Composite keys.
    Composite,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_wamf_numbers() {
        // §5.2.1, L = 4 in the index tables, N = 10 ⇒ 2·(N+1)·(L−1) = 66
        // per index. With PL_S = 30 (UserID) and PL_S = 35 (CreationTime):
        // WAMF_Eager = 30·66 + 35·66 = 4290 across both indexes, and
        // WAMF_Lazy = WAMF_Composite = 2·66 = 132.
        assert_eq!(wamf_leveled(4), 66);
        assert_eq!(wamf_lazy(4), 66);
        assert_eq!(wamf_composite(4), 66);
        let eager_both = wamf_eager(30.0, 4) + wamf_eager(35.0, 4);
        assert_eq!(eager_both as u64, 4290);
        assert_eq!(wamf_lazy(4) + wamf_composite(4), 132);
        assert!(eager_both / wamf_lazy(4) as f64 > 10.0, "Eager ≫ Lazy");
    }

    #[test]
    fn bloom_fp_rate_matches_known_points() {
        // 10 bits/key ≈ 0.0082 minimal fp rate.
        let fp10 = bloom_fp_rate(10.0);
        assert!((fp10 - 0.00819).abs() < 5e-4, "{fp10}");
        assert!(bloom_fp_rate(20.0) < fp10);
        assert!(bloom_fp_rate(2.0) > 0.3);
    }

    #[test]
    fn embedded_lookup_cost_grows_with_levels_and_fp() {
        let base = embedded_lookup_reads(10, 2, 0.01, 100, 2);
        let more_levels = embedded_lookup_reads(10, 2, 0.01, 100, 3);
        let worse_fp = embedded_lookup_reads(10, 2, 0.1, 100, 2);
        assert!(more_levels > base);
        assert!(worse_fp > base);
        // With a perfect filter the cost is exactly K + ε.
        assert_eq!(embedded_lookup_reads(10, 2, 0.0, 100, 5), 12.0);
    }

    #[test]
    fn table3_rangelookup_cases() {
        assert_eq!(embedded_rangelookup_reads_time_correlated(10, 3), 13);
        assert_eq!(embedded_rangelookup_reads_uncorrelated(123_456), 123_456);
        assert_eq!(embedded_write_ios(), (0, 1));
    }

    #[test]
    fn table5_put_ios() {
        assert_eq!(standalone_put_index_ios(StandaloneKind::Eager, 2), (2, 2));
        assert_eq!(standalone_put_index_ios(StandaloneKind::Lazy, 2), (0, 2));
        assert_eq!(
            standalone_put_index_ios(StandaloneKind::Composite, 3),
            (0, 3)
        );
    }

    #[test]
    fn table5_lookup_ios() {
        // Eager: K' + 1; Lazy/Composite: K' + L.
        assert_eq!(
            standalone_lookup_reads(StandaloneKind::Eager, 10, 4),
            (10, 1)
        );
        assert_eq!(
            standalone_lookup_reads(StandaloneKind::Lazy, 10, 4),
            (10, 4)
        );
        assert_eq!(
            standalone_lookup_reads(StandaloneKind::Composite, 10, 4),
            (10, 4)
        );
        assert_eq!(standalone_rangelookup_reads(7, 20), (7, 20));
    }
}
