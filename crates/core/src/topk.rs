//! The top-K min-heap of the paper's Algorithm 1.
//!
//! "To efficiently compute the top-k entries, we maintain a min-heap
//! ordered by the sequence number": the heap keeps the K most-recent
//! candidates; a new candidate replaces the root only if it is newer.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bounded min-heap keeping the `k` entries with the largest sequence
/// numbers (`k = None` ⇒ unbounded, the paper's "no limit on top-k").
#[derive(Debug)]
pub struct TopK<T> {
    k: Option<usize>,
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    items: Vec<Option<(u64, T)>>,
    evicted: usize,
}

impl<T> TopK<T> {
    /// A heap bounded at `k` entries (`None` = unbounded).
    pub fn new(k: Option<usize>) -> TopK<T> {
        TopK {
            k,
            heap: BinaryHeap::new(),
            items: Vec::new(),
            evicted: 0,
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `k` entries are held (never true when unbounded).
    pub fn is_full(&self) -> bool {
        match self.k {
            Some(k) => self.heap.len() >= k,
            None => false,
        }
    }

    /// Would a candidate with sequence `seq` be admitted right now?
    ///
    /// The paper's Algorithm 1 check: admitted if the heap is not full, or
    /// if `seq` is newer than the oldest retained entry. Calling this
    /// before the (possibly expensive) validity check saves work.
    pub fn would_admit(&self, seq: u64) -> bool {
        if !self.is_full() {
            return true;
        }
        match self.heap.peek() {
            Some(Reverse((min_seq, _))) => seq > *min_seq,
            None => false, // only reachable with k = 0
        }
    }

    /// Offer a candidate; returns true if it was admitted.
    pub fn add(&mut self, seq: u64, item: T) -> bool {
        if !self.would_admit(seq) {
            return false;
        }
        if self.is_full() {
            if let Some(Reverse((_, idx))) = self.heap.pop() {
                self.items[idx as usize] = None;
                self.evicted += 1;
            }
        }
        let idx = self.items.len() as u64;
        self.items.push(Some((seq, item)));
        self.heap.push(Reverse((seq, idx)));
        true
    }

    /// Number of admitted candidates later displaced by newer ones.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Drain into a list ordered newest-first.
    pub fn into_sorted(self) -> Vec<(u64, T)> {
        let mut out: Vec<(u64, T)> = self.items.into_iter().flatten().collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_newest() {
        let mut h = TopK::new(Some(3));
        for seq in [5u64, 1, 9, 3, 7, 2] {
            h.add(seq, format!("v{seq}"));
        }
        let out = h.into_sorted();
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![9, 7, 5]);
        assert_eq!(out[0].1, "v9");
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut h = TopK::new(None);
        for seq in 0..100u64 {
            assert!(h.add(seq, seq));
        }
        assert!(!h.is_full());
        assert_eq!(h.len(), 100);
        let out = h.into_sorted();
        assert_eq!(out.first().unwrap().0, 99);
        assert_eq!(out.last().unwrap().0, 0);
    }

    #[test]
    fn would_admit_respects_bound() {
        let mut h = TopK::new(Some(2));
        assert!(h.would_admit(0));
        h.add(10, ());
        h.add(20, ());
        assert!(h.is_full());
        assert!(!h.would_admit(5));
        assert!(!h.would_admit(10), "ties lose to incumbents");
        assert!(h.would_admit(15));
        assert!(h.add(15, ()));
        assert_eq!(h.evicted(), 1);
        let seqs: Vec<u64> = h.into_sorted().iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![20, 15]);
    }

    #[test]
    fn rejected_candidates_not_stored() {
        let mut h = TopK::new(Some(1));
        h.add(9, "keep");
        assert!(!h.add(3, "drop"));
        assert_eq!(h.len(), 1);
        assert_eq!(h.into_sorted(), vec![(9, "keep")]);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut h = TopK::new(Some(0));
        assert!(!h.add(5, ()));
        assert!(h.is_empty());
    }
}
