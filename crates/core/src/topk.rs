//! The top-K min-heap of the paper's Algorithm 1, plus the multi-shard
//! K-bounded merges used by the scatter-gather read path.
//!
//! "To efficiently compute the top-k entries, we maintain a min-heap
//! ordered by the sequence number": the heap keeps the K most-recent
//! candidates; a new candidate replaces the root only if it is newer.
//!
//! A hash-partitioned [`crate::SecondaryDb`] answers LOOKUP/RANGELOOKUP by
//! asking every shard for its own (already K-bounded, newest-first) hit
//! list and merging the lists through [`merge_newest_first`]; primary-key
//! range scans gather per-shard key-ordered streams through
//! [`merge_key_ordered`]. Both merges stop as soon as K results are out,
//! touching at most `K + shards - 1` input entries.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A bounded min-heap keeping the `k` entries with the largest sequence
/// numbers (`k = None` ⇒ unbounded, the paper's "no limit on top-k").
#[derive(Debug)]
pub struct TopK<T> {
    k: Option<usize>,
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    items: Vec<Option<(u64, T)>>,
    evicted: usize,
}

impl<T> TopK<T> {
    /// A heap bounded at `k` entries (`None` = unbounded).
    pub fn new(k: Option<usize>) -> TopK<T> {
        TopK {
            k,
            heap: BinaryHeap::new(),
            items: Vec::new(),
            evicted: 0,
        }
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing has been added.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// True once `k` entries are held (never true when unbounded).
    pub fn is_full(&self) -> bool {
        match self.k {
            Some(k) => self.heap.len() >= k,
            None => false,
        }
    }

    /// Would a candidate with sequence `seq` be admitted right now?
    ///
    /// The paper's Algorithm 1 check: admitted if the heap is not full, or
    /// if `seq` is newer than the oldest retained entry. Calling this
    /// before the (possibly expensive) validity check saves work.
    pub fn would_admit(&self, seq: u64) -> bool {
        if !self.is_full() {
            return true;
        }
        match self.heap.peek() {
            Some(Reverse((min_seq, _))) => seq > *min_seq,
            None => false, // only reachable with k = 0
        }
    }

    /// Offer a candidate; returns true if it was admitted.
    pub fn add(&mut self, seq: u64, item: T) -> bool {
        if !self.would_admit(seq) {
            return false;
        }
        if self.is_full() {
            if let Some(Reverse((_, idx))) = self.heap.pop() {
                self.items[idx as usize] = None;
                self.evicted += 1;
            }
        }
        let idx = self.items.len() as u64;
        self.items.push(Some((seq, item)));
        self.heap.push(Reverse((seq, idx)));
        true
    }

    /// Number of admitted candidates later displaced by newer ones.
    pub fn evicted(&self) -> usize {
        self.evicted
    }

    /// Drain into a list ordered newest-first.
    pub fn into_sorted(self) -> Vec<(u64, T)> {
        let mut out: Vec<(u64, T)> = self.items.into_iter().flatten().collect();
        out.sort_by_key(|e| std::cmp::Reverse(e.0));
        out
    }
}

/// K-bounded heap merge of per-shard top-K results.
///
/// Every input list must already be sorted newest-first (descending
/// sequence) — exactly what each index technique's `lookup`/`range_lookup`
/// returns — and the output preserves that order globally: the K largest
/// sequences across all lists, ties broken toward the lower shard index so
/// the merge is deterministic even for equal sequences (which cannot occur
/// between shards sharing one [`ldbpp_lsm::db::SharedSequence`] clock, but
/// can in ad-hoc unit-test inputs). `k = None` concatenates everything in
/// global recency order.
pub fn merge_newest_first<T>(
    lists: Vec<Vec<T>>,
    k: Option<usize>,
    seq_of: impl Fn(&T) -> u64,
) -> Vec<T> {
    merge_by_rank(lists, k, |item| Reverse(seq_of(item)))
}

/// Bounded heap merge of per-shard key-ordered streams (ascending by the
/// rank `key_of` returns) — the scatter-gather form of a primary-key range
/// scan, where each shard contributes a disjoint, sorted slice of the key
/// space. Ties (impossible for hash-partitioned primaries, possible in
/// arbitrary inputs) break toward the lower shard index.
pub fn merge_key_ordered<T, R: Ord>(
    lists: Vec<Vec<T>>,
    limit: Option<usize>,
    key_of: impl Fn(&T) -> R,
) -> Vec<T> {
    merge_by_rank(lists, limit, key_of)
}

/// Shared merge body: repeatedly emit the head with the smallest rank
/// (`Reverse<seq>` for newest-first merges, the key itself for ascending
/// ones), stopping at `k`. The heap holds one entry per non-exhausted
/// list, so the merge is `O((k + n) log n)` for `n` shards.
fn merge_by_rank<T, R: Ord>(
    mut lists: Vec<Vec<T>>,
    k: Option<usize>,
    rank_of: impl Fn(&T) -> R,
) -> Vec<T> {
    if k == Some(0) {
        return Vec::new();
    }
    // Single-shard fast path: the list is already in output order.
    if lists.len() == 1 {
        let mut only = lists.pop().unwrap_or_default();
        if let Some(k) = k {
            only.truncate(k);
        }
        return only;
    }
    let mut iters: Vec<std::vec::IntoIter<T>> = lists.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<T>> = iters.iter_mut().map(Iterator::next).collect();
    // Min-heap via Reverse: pop order is (rank asc, shard index asc).
    let mut heap: BinaryHeap<Reverse<(R, usize)>> = heads
        .iter()
        .enumerate()
        .filter_map(|(shard, head)| head.as_ref().map(|t| Reverse((rank_of(t), shard))))
        .collect();
    let mut out = Vec::new();
    while let Some(Reverse((_, shard))) = heap.pop() {
        // Invariant: every heap entry was pushed together with its head.
        let Some(item) = heads[shard].take() else {
            continue;
        };
        out.push(item);
        if k.is_some_and(|k| out.len() >= k) {
            break;
        }
        if let Some(next) = iters[shard].next() {
            heap.push(Reverse((rank_of(&next), shard)));
            heads[shard] = Some(next);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_newest() {
        let mut h = TopK::new(Some(3));
        for seq in [5u64, 1, 9, 3, 7, 2] {
            h.add(seq, format!("v{seq}"));
        }
        let out = h.into_sorted();
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![9, 7, 5]);
        assert_eq!(out[0].1, "v9");
    }

    #[test]
    fn unbounded_keeps_everything() {
        let mut h = TopK::new(None);
        for seq in 0..100u64 {
            assert!(h.add(seq, seq));
        }
        assert!(!h.is_full());
        assert_eq!(h.len(), 100);
        let out = h.into_sorted();
        assert_eq!(out.first().unwrap().0, 99);
        assert_eq!(out.last().unwrap().0, 0);
    }

    #[test]
    fn would_admit_respects_bound() {
        let mut h = TopK::new(Some(2));
        assert!(h.would_admit(0));
        h.add(10, ());
        h.add(20, ());
        assert!(h.is_full());
        assert!(!h.would_admit(5));
        assert!(!h.would_admit(10), "ties lose to incumbents");
        assert!(h.would_admit(15));
        assert!(h.add(15, ()));
        assert_eq!(h.evicted(), 1);
        let seqs: Vec<u64> = h.into_sorted().iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![20, 15]);
    }

    #[test]
    fn rejected_candidates_not_stored() {
        let mut h = TopK::new(Some(1));
        h.add(9, "keep");
        assert!(!h.add(3, "drop"));
        assert_eq!(h.len(), 1);
        assert_eq!(h.into_sorted(), vec![(9, "keep")]);
    }

    #[test]
    fn zero_k_accepts_nothing() {
        let mut h = TopK::new(Some(0));
        assert!(!h.add(5, ()));
        assert!(h.is_empty());
    }

    #[test]
    fn merge_newest_first_is_k_bounded_and_ordered() {
        let lists = vec![
            vec![(9u64, "a9"), (5, "a5"), (1, "a1")],
            vec![(8u64, "b8"), (7, "b7"), (2, "b2")],
        ];
        let out = merge_newest_first(lists.clone(), Some(4), |e| e.0);
        assert_eq!(out, vec![(9, "a9"), (8, "b8"), (7, "b7"), (5, "a5")]);
        let all = merge_newest_first(lists, None, |e| e.0);
        let seqs: Vec<u64> = all.iter().map(|e| e.0).collect();
        assert_eq!(seqs, vec![9, 8, 7, 5, 2, 1]);
    }

    #[test]
    fn merge_newest_first_breaks_ties_by_shard_index() {
        let lists = vec![vec![(5u64, "shard0")], vec![(5u64, "shard1")]];
        let out = merge_newest_first(lists, None, |e| e.0);
        assert_eq!(out, vec![(5, "shard0"), (5, "shard1")]);
    }

    #[test]
    fn merge_newest_first_single_list_passthrough() {
        let out = merge_newest_first(vec![vec![(3u64, ()), (1, ())]], Some(1), |e| e.0);
        assert_eq!(out, vec![(3, ())]);
        assert!(merge_newest_first(Vec::<Vec<(u64, ())>>::new(), None, |e| e.0).is_empty());
        assert!(merge_newest_first(vec![vec![(3u64, ())]], Some(0), |e| e.0).is_empty());
    }

    #[test]
    fn merge_key_ordered_interleaves_disjoint_ranges() {
        let lists = vec![
            vec![b"b".to_vec(), b"d".to_vec()],
            vec![b"a".to_vec(), b"c".to_vec(), b"e".to_vec()],
        ];
        let out = merge_key_ordered(lists, None, Clone::clone);
        assert_eq!(
            out,
            vec![
                b"a".to_vec(),
                b"b".to_vec(),
                b"c".to_vec(),
                b"d".to_vec(),
                b"e".to_vec(),
            ]
        );
        let bounded = merge_key_ordered(vec![vec![2u64, 9], vec![1, 3]], Some(3), |&k| k);
        assert_eq!(bounded, vec![1, 2, 3]);
    }
}
