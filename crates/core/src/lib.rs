//! LevelDB++ core: five secondary-indexing techniques over the LSM engine.
//!
//! This crate is the paper's primary contribution: a unified database
//! ([`SecondaryDb`]) supporting `GET`/`PUT`/`DEL` on the primary key plus
//! `LOOKUP(A, a, K)` and `RANGELOOKUP(A, a, b, K)` on secondary attributes,
//! backed by a per-attribute choice of index:
//!
//! | [`IndexKind`]            | Mechanism |
//! |--------------------------|-----------|
//! | `Embedded`               | per-block bloom filters + zone maps inside the primary table's SSTables (paper §3) |
//! | `EagerStandalone`        | posting-list table, read-modify-write per write (§4.1.1) |
//! | `LazyStandalone`         | posting-list fragments merged at compaction via a merge operator (§4.1.2) |
//! | `CompositeStandalone`    | `(secondary ‖ primary)` composite-key table, prefix scans (§4.2) |
//!
//! [`cost`] implements the analytical I/O models of the paper's Tables 3
//! and 5, and [`advisor`] the index-selection strategy of its Figure 2.

pub mod advisor;
pub mod cost;
pub mod doc;
pub mod indexes;
#[cfg(feature = "check")]
pub mod model_bugs;
pub mod secondary_db;
pub mod topk;

pub use doc::{Document, JsonAttrExtractor};
pub use indexes::{IndexKind, LookupHit};
pub use ldbpp_lsm::check::{CheckCode, IntegrityReport, Violation};
pub use secondary_db::{
    shard_layout, DegradedStats, HealReport, Partial, ReadMode, SecondaryDb, SecondaryDbOptions,
};
