//! The record model: JSON documents with typed secondary attributes.
//!
//! As in the paper, "the secondary attributes and their values are stored
//! inside the value of an entry, which may be in JSON format:
//! `v = {A1: val(A1), …, Al: val(Al)}`".

use ldbpp_common::json::Value;
use ldbpp_common::{Error, Result};
use ldbpp_lsm::attr::{AttrExtractor, AttrValue};

/// A JSON-object record value.
#[derive(Debug, Clone, PartialEq)]
pub struct Document(Value);

impl Document {
    /// An empty document (`{}`).
    pub fn new() -> Document {
        Document(Value::object(Vec::<(String, Value)>::new()))
    }

    /// Wrap an existing JSON value; must be an object.
    pub fn from_value(v: Value) -> Result<Document> {
        match v {
            Value::Object(_) => Ok(Document(v)),
            other => Err(Error::invalid(format!(
                "document must be a JSON object, got {other}"
            ))),
        }
    }

    /// Parse serialized bytes into a document.
    pub fn parse(bytes: &[u8]) -> Result<Document> {
        let text =
            std::str::from_utf8(bytes).map_err(|_| Error::corruption("document is not UTF-8"))?;
        Document::from_value(Value::parse(text)?)
    }

    /// Set a field.
    pub fn set(&mut self, key: impl Into<String>, value: Value) -> &mut Self {
        self.0.insert(key, value);
        self
    }

    /// Get a field.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    /// The typed secondary-attribute value of a field, if it is a string or
    /// integer (other JSON types are not indexable).
    pub fn attr(&self, key: &str) -> Option<AttrValue> {
        match self.0.get(key)? {
            Value::Str(s) => Some(AttrValue::str(s.clone())),
            Value::Int(i) => Some(AttrValue::Int(*i)),
            _ => None,
        }
    }

    /// Serialize to JSON bytes (the stored record value).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_json().into_bytes()
    }

    /// The underlying JSON value.
    pub fn as_value(&self) -> &Value {
        &self.0
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Display for Document {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Extracts [`AttrValue`]s from serialized documents — plugged into the
/// primary table's builder so the Embedded Index's per-block filters are
/// computed at SSTable-build time.
#[derive(Debug, Default, Clone, Copy)]
pub struct JsonAttrExtractor;

impl AttrExtractor for JsonAttrExtractor {
    fn extract(&self, attr: &str, value: &[u8]) -> Option<AttrValue> {
        Document::parse(value).ok()?.attr(attr)
    }

    fn extract_many(&self, attrs: &[String], value: &[u8]) -> Vec<Option<AttrValue>> {
        // Parse the record once for all attributes.
        match Document::parse(value) {
            Ok(doc) => attrs.iter().map(|a| doc.attr(a)).collect(),
            Err(_) => vec![None; attrs.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_serialize() {
        let mut d = Document::new();
        d.set("UserID", Value::str("u1"))
            .set("CreationTime", Value::Int(1234))
            .set("Text", Value::str("hello"));
        let bytes = d.to_bytes();
        let back = Document::parse(&bytes).unwrap();
        assert_eq!(back, d);
        assert_eq!(back.attr("UserID"), Some(AttrValue::str("u1")));
        assert_eq!(back.attr("CreationTime"), Some(AttrValue::Int(1234)));
        assert_eq!(back.attr("Missing"), None);
    }

    #[test]
    fn non_scalar_attrs_not_indexable() {
        let mut d = Document::new();
        d.set("Tags", Value::Array(vec![Value::str("a")]));
        d.set("Score", Value::Float(1.5));
        assert_eq!(d.attr("Tags"), None);
        assert_eq!(d.attr("Score"), None);
    }

    #[test]
    fn rejects_non_objects() {
        assert!(Document::from_value(Value::Int(3)).is_err());
        assert!(Document::parse(b"[1,2]").is_err());
        assert!(Document::parse(b"not json").is_err());
        assert!(Document::parse(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn extractor_matches_doc_attr() {
        let mut d = Document::new();
        d.set("UserID", Value::str("u9"));
        let bytes = d.to_bytes();
        assert_eq!(
            JsonAttrExtractor.extract("UserID", &bytes),
            Some(AttrValue::str("u9"))
        );
        assert_eq!(JsonAttrExtractor.extract("Nope", &bytes), None);
        assert_eq!(JsonAttrExtractor.extract("UserID", b"garbage"), None);
    }
}
