//! Seeded ordering bugs in the index layer for the model checker
//! (compiled only with the `check` feature; every flag defaults to off
//! and the instrumented code is the correct path unless a test flips
//! one). See `ldbpp_lsm::model_bugs` for the engine-level flags and the
//! rationale; `ldbpp-model`'s seeded fault tests prove the detectors
//! fire by asserting exploration finds a failing schedule.

use std::sync::atomic::{AtomicBool, Ordering};

static EAGER_K_PREFIX: AtomicBool = AtomicBool::new(false);
static TOMBSTONE_AFTER_CLEANUP: AtomicBool = AtomicBool::new(false);

/// Seeded bug (the PR 7 Eager range-lookup bug): truncate the candidate
/// heap to a K-prefix *before* validating candidates against the
/// primary. Stale postings (updates that moved a key to another value)
/// occupying a list's newest slots then crowd out valid older entries
/// and the lookup under-fills K — caught by the model's serial-oracle
/// history check.
pub fn eager_k_prefix() -> bool {
    EAGER_K_PREFIX.load(Ordering::Relaxed)
}

/// Enable or disable [`eager_k_prefix`].
pub fn set_eager_k_prefix(on: bool) {
    EAGER_K_PREFIX.store(on, Ordering::Relaxed)
}

/// Seeded bug (the PR 8 dangling-posting ordering): run a delete's
/// index cleanup *before* its primary tombstone. A put racing the
/// delete on the same key can then interleave its index write between
/// the two steps, leaving a live posting whose primary record is
/// deleted — the dangling entry `check_integrity` flags and the
/// index-first write contract exists to prevent.
pub fn tombstone_after_cleanup() -> bool {
    TOMBSTONE_AFTER_CLEANUP.load(Ordering::Relaxed)
}

/// Enable or disable [`tombstone_after_cleanup`].
pub fn set_tombstone_after_cleanup(on: bool) {
    TOMBSTONE_AFTER_CLEANUP.store(on, Ordering::Relaxed)
}
