//! The unified database facade: LevelDB++.
//!
//! A [`SecondaryDb`] is a router over `N` hash-partitioned **engine
//! shards**. Each shard is an independent primary LSM table — its own
//! directory, memtable, WAL, group-commit queue, and background worker —
//! plus, per indexed attribute, one of the paper's index techniques. The
//! facade exposes exactly the paper's operation set (Table 1): `GET`,
//! `PUT`, `DEL`, `LOOKUP(A, a, K)` and `RANGELOOKUP(A, a, b, K)`.
//!
//! * **Writes** route by a hash of the primary key: a `PUT`/`DEL` touches
//!   exactly one shard, so the group-commit protocol (DESIGN.md §14) and
//!   the index-before-primary crash-consistency contract apply per shard
//!   unchanged.
//! * **Reads** (`LOOKUP`, `RANGELOOKUP`, `scan_primary`) scatter across
//!   all shards in parallel and gather through the K-bounded merges in
//!   [`crate::topk`]. Cross-shard recency ordering is exact because all
//!   shards allocate sequence numbers from one shared
//!   [`SharedSequence`] clock.
//! * **Maintenance** (`check_integrity`, `heal`, `flush`, backfill /
//!   rebuild, size and I/O accessors) fans out and aggregates per-shard
//!   results.
//!
//! The default `shards = 1` configuration bypasses the clock and the
//! shard directory scheme entirely: the on-disk layout and every byte the
//! engine writes are identical to the pre-sharding engine, so databases
//! created before this refactor open without migration. See DESIGN.md §15
//! for the full sharding model.

use crate::doc::{Document, JsonAttrExtractor};
use crate::indexes::{
    CompositeIndex, EagerIndex, EmbeddedIndex, EmbeddedValidation, IndexKind, LazyIndex, LookupHit,
    SecondaryIndex,
};
use crate::topk::{merge_key_ordered, merge_newest_first, TopK};
use ldbpp_common::json::Value;
use ldbpp_common::{Error, Result};
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::check::{CheckCode, IntegrityReport};
use ldbpp_lsm::db::{Db, DbOptions, SharedSequence};
use ldbpp_lsm::env::{Env, IoSnapshot, MemEnv};
use ldbpp_lsm::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a scatter-gather read treats a failing shard (DESIGN.md §18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadMode {
    /// Any shard error fails the whole read (the historical behavior):
    /// the caller either sees the complete answer or an error.
    #[default]
    Strict,
    /// Opt-in availability-over-completeness: shards that cannot be read
    /// — their query errors, or their engine carries a sticky
    /// [`fatal_error`](ldbpp_lsm::db::Db::fatal_error) poison — are
    /// skipped, and the surviving shards' results are returned tagged
    /// with the failed-shard set. Only an *all*-shards failure is an
    /// error.
    Degraded,
}

/// A scatter-gather result that may be missing some shards' contribution.
///
/// `failed_shards` is empty for a complete result; a non-empty set means
/// `value` is correct for every shard *not* listed — records routed to a
/// failed shard are simply absent, never wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partial<T> {
    /// The merged result from the shards that answered.
    pub value: T,
    /// Indexes of shards whose contribution is missing.
    pub failed_shards: Vec<usize>,
}

impl<T> Partial<T> {
    /// A result every shard contributed to.
    pub fn complete(value: T) -> Partial<T> {
        Partial {
            value,
            failed_shards: Vec::new(),
        }
    }

    /// True when no shard failed.
    pub fn is_complete(&self) -> bool {
        self.failed_shards.is_empty()
    }
}

/// Rows of a primary-key range scan: `(key, document)` pairs in key
/// order.
pub type ScanRows = Vec<(Vec<u8>, Document)>;

/// Degraded-read counters (surfaced through the server's STATS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradedStats {
    /// Degraded-mode reads that returned with at least one shard missing.
    pub degraded_reads: u64,
    /// Individual shard failures skipped by degraded reads (≥
    /// `degraded_reads`; one read can lose several shards).
    pub failed_shard_reads: u64,
}

/// Configuration for a [`SecondaryDb`].
#[derive(Clone, Debug)]
pub struct SecondaryDbOptions {
    /// Sizing/compression options applied to every shard's primary table
    /// and (unless overridden) every stand-alone index table.
    pub base: DbOptions,
    /// Validation mode for Embedded indexes (ablation knob; the default
    /// GetLite-with-confirmation is both exact and cheap).
    pub embedded_validation: EmbeddedValidation,
    /// Number of hash-partitioned engine shards.
    ///
    /// `1` (the default) keeps the classic single-engine layout,
    /// byte-for-byte identical to the pre-sharding engine. `N > 1` splits
    /// the key space by primary-key hash over `N` independent engines
    /// under `name/shard-0 .. name/shard-N-1`, recorded in a root-level
    /// `LAYOUT` descriptor that [`SecondaryDb::open`] validates on every
    /// reopen — a shard-count mismatch is a hard error, never a silent
    /// reshard. `0` is treated as `1`.
    pub shards: usize,
}

impl Default for SecondaryDbOptions {
    fn default() -> Self {
        SecondaryDbOptions {
            base: DbOptions::default(),
            embedded_validation: EmbeddedValidation::default(),
            shards: 1,
        }
    }
}

impl SecondaryDbOptions {
    /// Shard count from the `LDBPP_SHARDS` environment variable, falling
    /// back to `1` when unset, unparsable, or zero. Lets existing test
    /// suites and smoke scripts run against a sharded engine without code
    /// changes ([`SecondaryDb::open_in_memory`] honours it).
    pub fn shards_from_env() -> usize {
        std::env::var("LDBPP_SHARDS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n >= 1)
            .unwrap_or(1)
    }
}

/// Convert a JSON scalar to a typed attribute value.
pub fn attr_from_json(v: &Value) -> Result<AttrValue> {
    match v {
        Value::Str(s) => Ok(AttrValue::str(s.clone())),
        Value::Int(i) => Ok(AttrValue::Int(*i)),
        other => Err(Error::invalid(format!(
            "attribute values must be strings or integers, got {other}"
        ))),
    }
}

/// What [`SecondaryDb::heal`] found and did (aggregated over all shards).
#[must_use = "healing may have left violations; inspect the report"]
#[derive(Debug, Clone, Default)]
pub struct HealReport {
    /// Violations [`SecondaryDb::check_integrity`] reported before healing.
    pub violations_before: usize,
    /// Violations remaining after healing (0 when the rebuild succeeded;
    /// equal to `violations_before` when no rebuild was needed or the
    /// damage is in the primary table, which index rebuilds cannot fix).
    pub violations_after: usize,
    /// Whether any shard's index tables were dropped and rebuilt.
    pub rebuilt: bool,
    /// Primary records replayed into stand-alone indexes by the rebuild.
    pub replayed: usize,
}

impl HealReport {
    /// True when no violations remain.
    pub fn is_clean(&self) -> bool {
        self.violations_after == 0
    }

    fn absorb(&mut self, other: HealReport) {
        self.violations_before += other.violations_before;
        self.violations_after += other.violations_after;
        self.rebuilt |= other.rebuilt;
        self.replayed += other.replayed;
    }
}

// -- shard layout descriptor ------------------------------------------------

/// First line of the root-level `LAYOUT` descriptor.
const LAYOUT_MAGIC: &str = "ldbpp-shard-layout v1";
/// The only routing hash this engine speaks; recorded so a future hash
/// change cannot silently misroute an existing database.
const ROUTING_HASH: &str = "fnv1a64";

fn layout_path(root: &str) -> String {
    format!("{root}/LAYOUT")
}

fn shard_dir(root: &str, shard: usize) -> String {
    format!("{root}/shard-{shard}")
}

/// Read the shard count recorded in `root`'s `LAYOUT` descriptor.
///
/// Returns `Ok(None)` when no descriptor exists (a legacy single-engine
/// database, or nothing at all); `Ok(Some(n))` for a sharded root; an
/// error when the descriptor is present but unreadable, malformed, or
/// declares a routing hash this build does not implement. Shared with
/// `ldbpp_tool`, which uses it to discover shard directories for `check`
/// and `repair`.
pub fn shard_layout(env: &Arc<dyn Env>, root: &str) -> Result<Option<usize>> {
    let path = layout_path(root);
    if !env.exists(&path) {
        return Ok(None);
    }
    let data = env.read_all(&path)?;
    let text = std::str::from_utf8(&data)
        .map_err(|_| Error::corruption(format!("{path}: layout descriptor is not UTF-8")))?;
    let mut lines = text.lines();
    if lines.next() != Some(LAYOUT_MAGIC) {
        return Err(Error::corruption(format!(
            "{path}: bad layout magic (expected '{LAYOUT_MAGIC}')"
        )));
    }
    let mut shards = None;
    for line in lines {
        if let Some(n) = line.strip_prefix("shards=") {
            shards = n.parse::<usize>().ok();
        } else if let Some(h) = line.strip_prefix("hash=") {
            if h != ROUTING_HASH {
                return Err(Error::not_supported(format!(
                    "{path}: routing hash '{h}' not supported (expected '{ROUTING_HASH}')"
                )));
            }
        }
    }
    match shards {
        Some(n) if n >= 1 => Ok(Some(n)),
        _ => Err(Error::corruption(format!(
            "{path}: missing or invalid shard count"
        ))),
    }
}

fn write_layout(env: &Arc<dyn Env>, root: &str, shards: usize) -> Result<()> {
    env.mkdir_all(root)?;
    let body = format!("{LAYOUT_MAGIC}\nshards={shards}\nhash={ROUTING_HASH}\n");
    env.write_all(&layout_path(root), body.as_bytes())
}

/// FNV-1a 64-bit over the primary key — the routing hash. Stable across
/// platforms and recorded in the layout descriptor, because every byte of
/// on-disk state depends on it: rehashing an existing database would
/// strand records on the wrong shard.
fn route_hash(pk: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in pk {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// -- one engine shard -------------------------------------------------------

/// One hash-partition of the key space: an independent primary `Db` plus
/// this shard's slice of every declared index. All the single-engine
/// semantics (crash-consistency ordering, validation, healing) live here,
/// unchanged from the pre-sharding engine; [`SecondaryDb`] routes and
/// aggregates.
struct EngineShard {
    primary: Arc<Db>,
    indexes: Vec<Box<dyn SecondaryIndex>>,
    /// Attributes declared with [`IndexKind::None`] (full-scan fallback).
    unindexed: Vec<String>,
}

impl EngineShard {
    fn open(
        env: &Arc<dyn Env>,
        name: &str,
        opts: &SecondaryDbOptions,
        specs: &[(&str, IndexKind)],
        clock: Option<Arc<SharedSequence>>,
    ) -> Result<EngineShard> {
        let mut primary_opts = opts.base.clone();
        primary_opts.sequence_clock = clock;
        let embedded_attrs: Vec<String> = specs
            .iter()
            .filter(|(_, k)| *k == IndexKind::Embedded)
            .map(|(a, _)| a.to_string())
            .collect();
        if !embedded_attrs.is_empty() {
            primary_opts.indexed_attrs = embedded_attrs;
            primary_opts.extractor = Some(Arc::new(JsonAttrExtractor));
        }
        let primary = Arc::new(Db::open(Arc::clone(env), name, primary_opts)?);

        let mut indexes: Vec<Box<dyn SecondaryIndex>> = Vec::new();
        let mut unindexed = Vec::new();
        for (attr, kind) in specs {
            let path = format!("{name}_idx_{attr}");
            match kind {
                IndexKind::None => unindexed.push(attr.to_string()),
                IndexKind::Embedded => indexes.push(Box::new(EmbeddedIndex::with_validation(
                    attr,
                    opts.embedded_validation,
                ))),
                IndexKind::EagerStandalone => indexes.push(Box::new(EagerIndex::open(
                    Arc::clone(env),
                    &path,
                    attr,
                    &opts.base,
                )?)),
                IndexKind::LazyStandalone => indexes.push(Box::new(LazyIndex::open(
                    Arc::clone(env),
                    &path,
                    attr,
                    &opts.base,
                )?)),
                IndexKind::CompositeStandalone => indexes.push(Box::new(CompositeIndex::open(
                    Arc::clone(env),
                    &path,
                    attr,
                    &opts.base,
                )?)),
            }
        }
        let shard = EngineShard {
            primary,
            indexes,
            unindexed,
        };
        shard.reconcile_after_recovery()?;
        Ok(shard)
    }

    /// Crash-recovery hygiene for the index-first write path: after an
    /// *unclean* open (any WAL replayed records — a clean shutdown flushes
    /// and rotates every log, so clean reopens replay nothing), drop index
    /// entries whose primary write never landed. Runs before the shard
    /// serves any request, so "no primary record" is definitive; see
    /// [`SecondaryIndex::reconcile_dangling`] for why the strict integrity
    /// cross-check cannot absorb these by sequence arithmetic once
    /// concurrent writers have interleaved group commits.
    fn reconcile_after_recovery(&self) -> Result<()> {
        let unclean = self.primary.stats().snapshot().wal_replays > 0
            || self
                .indexes
                .iter()
                .filter_map(|i| i.index_stats())
                .any(|s| s.snapshot().wal_replays > 0);
        // The erased-keys gate mirrors the checker's: once any key's full
        // history is gone from the primary, a record-less pk in an index
        // is no longer evidence that the entry is crash garbage.
        if !unclean || self.primary.erased_keys() != 0 {
            return Ok(());
        }
        for index in &self.indexes {
            index.reconcile_dangling(&self.primary)?;
        }
        Ok(())
    }

    /// The index handling `attr`, if any.
    fn index_for(&self, attr: &str) -> Option<&dyn SecondaryIndex> {
        self.indexes
            .iter()
            .map(|b| b.as_ref())
            .find(|i| i.attr() == attr)
    }

    /// Write a record and maintain this shard's indexes.
    ///
    /// Crash-consistency ordering: maintain the *stand-alone* indexes
    /// BEFORE the primary write. A crash between the two steps can then
    /// only strand index entries whose primary record never landed —
    /// false positives that every lookup already filters out by
    /// validating candidates against the primary. The opposite order
    /// would strand primary records invisible to LOOKUP (false
    /// negatives), which nothing repairs. This contract holds *per
    /// logical batch* under the shard's group-commit queue (DESIGN.md
    /// §14): each `put` finishes its index writes before enqueueing its
    /// primary write, so whichever group the primary write lands in,
    /// its index entries are already durable-or-earlier. The sequence
    /// the primary write will use is predicted by the caller; concurrent
    /// writers grouping ahead of us can make the real sequence larger,
    /// but validation re-reads the primary anyway, so the race only
    /// skews the recency hint stored in the posting.
    fn put(&self, pk: &[u8], doc: &Document, predicted_seq: u64) -> Result<u64> {
        for index in &self.indexes {
            if index.kind() != IndexKind::Embedded {
                index.on_put(&self.primary, pk, doc, predicted_seq)?;
            }
        }
        let seq = self.primary.put(pk, &doc.to_bytes())?;
        // The Embedded Index shadows the memtable: it must record the real
        // sequence of an entry that actually exists, so it stays after the
        // primary write (it is memory-only — rebuilt on recovery — so the
        // ordering has no crash-consistency cost).
        for index in &self.indexes {
            if index.kind() == IndexKind::Embedded {
                index.on_put(&self.primary, pk, doc, seq)?;
            }
        }
        Ok(seq)
    }

    /// Delete a record and maintain this shard's indexes.
    fn delete(&self, pk: &[u8]) -> Result<()> {
        // Stand-alone indexes need the old record to find which posting
        // list / composite key to mark; the Embedded Index does not (its
        // validity checks absorb stale entries), keeping its DEL at a
        // single write as in the paper's Table 3.
        let needs_old = self.indexes.iter().any(|i| i.kind() != IndexKind::Embedded);
        let old_doc = if needs_old {
            match self.primary.get(pk)? {
                Some(bytes) => Some(Document::parse(&bytes)?),
                None => None,
            }
        } else {
            None
        };
        // Seeded bug (model-checker fault injection, off by default): run
        // the index cleanup *before* the primary tombstone. A concurrent
        // put of the same key can then land its index entry between the
        // two steps and its primary write before the tombstone, leaving a
        // live posting for a deleted record — the dangling entry the
        // correct ordering below makes impossible.
        #[cfg(feature = "check")]
        if crate::model_bugs::tombstone_after_cleanup() {
            let seq = self.primary.last_sequence() + 1;
            for index in &self.indexes {
                index.on_delete(&self.primary, pk, old_doc.as_ref(), seq)?;
            }
            self.primary.delete(pk)?;
            return Ok(());
        }
        // Deletes keep the opposite ordering from puts (primary first): a
        // crash after the tombstone but before the index cleanup leaves a
        // stale index entry, which validation against the primary filters
        // out. Cleaning the index first would instead make a still-live
        // record unfindable if the crash lands between the two steps.
        let seq = self.primary.delete(pk)?;
        for index in &self.indexes {
            index.on_delete(&self.primary, pk, old_doc.as_ref(), seq)?;
        }
        Ok(())
    }

    /// This shard's `LOOKUP`: dispatch to the index, the full-scan
    /// fallback, or an error. Hits come back newest-first, K-bounded.
    fn lookup_attr(
        &self,
        attr: &str,
        value: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        match self.index_for(attr) {
            Some(index) => index.lookup(&self.primary, value, k),
            None if self.unindexed.iter().any(|a| a == attr) => {
                self.full_scan_on(attr, |v| v == value, k)
            }
            None => Err(Error::not_supported(format!(
                "no index declared on attribute '{attr}'"
            ))),
        }
    }

    /// This shard's `RANGELOOKUP` (range already validated by the router).
    fn range_lookup_attr(
        &self,
        attr: &str,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        match self.index_for(attr) {
            Some(index) => index.range_lookup(&self.primary, lo, hi, k),
            None if self.unindexed.iter().any(|a| a == attr) => {
                let (lo, hi) = (lo.clone(), hi.clone());
                self.full_scan_on(attr, move |v| lo <= *v && *v <= hi, k)
            }
            None => Err(Error::not_supported(format!(
                "no index declared on attribute '{attr}'"
            ))),
        }
    }

    /// This shard's slice of a primary-key range scan, in key order.
    /// `snapshot` pins the cursor at a sequence (multi-shard scans pass
    /// the shared clock's value so every shard cuts at the same point).
    fn scan_primary(
        &self,
        lo: &[u8],
        hi: &[u8],
        limit: Option<usize>,
        snapshot: Option<u64>,
    ) -> Result<Vec<(Vec<u8>, Document)>> {
        // Bounded cursor: only files overlapping [lo, hi] are merged and
        // the stream ends at hi without touching further blocks.
        let mut it = match snapshot {
            Some(snap) => self.primary.range_iter_at(lo, hi, snap)?,
            None => self.primary.range_iter(lo, hi)?,
        };
        let mut out = Vec::new();
        while let Some((key, _seq, bytes)) = it.next_entry()? {
            out.push((key, Document::parse(&bytes)?));
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
        }
        Ok(out)
    }

    /// The NoIndex baseline: scan this shard's entire primary table.
    fn full_scan_on(
        &self,
        attr: &str,
        pred: impl Fn(&AttrValue) -> bool,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        let mut heap: TopK<(Vec<u8>, Document)> = TopK::new(k);
        let mut it = self.primary.resolved_iter()?;
        it.seek_to_first();
        while let Some((pk, seq, bytes)) = it.next_entry()? {
            let Ok(doc) = Document::parse(&bytes) else {
                continue;
            };
            if let Some(v) = doc.attr(attr) {
                if pred(&v) {
                    heap.add(seq, (pk, doc));
                }
            }
        }
        Ok(heap
            .into_sorted()
            .into_iter()
            .map(|(seq, (key, doc))| LookupHit { key, seq, doc })
            .collect())
    }

    /// Run the full structural invariant catalogue over this shard.
    fn check_integrity(&self) -> IntegrityReport {
        let mut report = self.primary.check_integrity();
        for index in &self.indexes {
            if let Err(e) = index.check_integrity(&self.primary, &mut report) {
                report.push(
                    CheckCode::TableUnreadable,
                    format!(
                        "{} index '{}': integrity scan failed: {e}",
                        index.kind(),
                        index.attr()
                    ),
                );
            }
        }
        report
    }

    /// Backfill late-declared indexes on this shard; see
    /// [`SecondaryDb::backfill_indexes`].
    fn backfill_indexes(&self) -> Result<usize> {
        self.compact_if_embedded_stale()?;
        let to_fill: Vec<&dyn SecondaryIndex> = self
            .indexes
            .iter()
            .map(|b| b.as_ref())
            .filter(|i| i.needs_backfill())
            .collect();
        if to_fill.is_empty() {
            return Ok(0);
        }
        self.replay_primary_into(&to_fill)
    }

    /// Drop and rebuild this shard's indexes; see
    /// [`SecondaryDb::rebuild_indexes`].
    fn rebuild_indexes(&self) -> Result<usize> {
        self.compact_if_embedded_stale()?;
        let standalone: Vec<&dyn SecondaryIndex> = self
            .indexes
            .iter()
            .map(|b| b.as_ref())
            .filter(|i| i.kind() != IndexKind::Embedded)
            .collect();
        if standalone.is_empty() {
            return Ok(0);
        }
        for index in &standalone {
            index.clear()?;
        }
        self.replay_primary_into(&standalone)
    }

    /// Embedded attrs: any file missing the attribute's file-level zone
    /// map predates the declaration (or survived repair verbatim);
    /// rewrite every file with regenerated per-block filters + zone maps.
    fn compact_if_embedded_stale(&self) -> Result<()> {
        let embedded_attrs: Vec<&str> = self
            .indexes
            .iter()
            .filter(|i| i.kind() == IndexKind::Embedded)
            .map(|i| i.attr())
            .collect();
        if embedded_attrs.is_empty() {
            return Ok(());
        }
        let version = self.primary.current_version();
        let stale = version.files.iter().flatten().any(|f| {
            embedded_attrs
                .iter()
                .any(|attr| f.file_zone(attr).is_none())
        });
        if stale {
            self.primary.major_compact()?;
        }
        Ok(())
    }

    /// Replay every live primary record into `targets` with its original
    /// sequence number (so recency ordering is preserved). Idempotent —
    /// postings and composite entries dedup by primary key.
    fn replay_primary_into(&self, targets: &[&dyn SecondaryIndex]) -> Result<usize> {
        let mut it = self.primary.resolved_iter()?;
        it.seek_to_first();
        let mut replayed = 0usize;
        while let Some((pk, seq, bytes)) = it.next_entry()? {
            let Ok(doc) = Document::parse(&bytes) else {
                continue;
            };
            for index in targets {
                index.on_put(&self.primary, &pk, &doc, seq)?;
            }
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Check this shard and, if its indexes disagree with its primary,
    /// rebuild them and re-check; see [`SecondaryDb::heal`].
    fn heal(&self) -> Result<HealReport> {
        let full = self.check_integrity();
        let violations_before = full.violations.len();
        // Index-attributed violations = full report minus the primary's own.
        let primary_only = self.primary.check_integrity().violations.len();
        if violations_before <= primary_only {
            return Ok(HealReport {
                violations_before,
                violations_after: violations_before,
                rebuilt: false,
                replayed: 0,
            });
        }
        let replayed = self.rebuild_indexes()?;
        let after = self.check_integrity();
        Ok(HealReport {
            violations_before,
            violations_after: after.violations.len(),
            rebuilt: true,
            replayed,
        })
    }

    /// Combined I/O snapshot of this shard's stand-alone index tables.
    fn index_io(&self) -> IoSnapshot {
        IoSnapshot::merge(
            self.indexes
                .iter()
                .filter_map(|i| i.index_stats())
                .map(|stats| stats.snapshot()),
        )
    }
}

/// A key-value store with secondary indexes — the paper's LevelDB++.
///
/// ```
/// use ldbpp_core::{Document, IndexKind, SecondaryDb};
/// use ldbpp_common::json::Value;
/// use ldbpp_lsm::db::DbOptions;
///
/// let db = SecondaryDb::open_in_memory(
///     DbOptions::small(),
///     &[("UserID", IndexKind::CompositeStandalone)],
/// ).unwrap();
///
/// let mut doc = Document::new();
/// doc.set("UserID", Value::str("alice"));
/// db.put("t1", &doc).unwrap();
///
/// let hits = db.lookup("UserID", &Value::str("alice"), None).unwrap();
/// assert_eq!(hits[0].key, b"t1");
/// assert!(db.get("t1").unwrap().is_some());
/// db.delete("t1").unwrap();
/// assert!(db.get("t1").unwrap().is_none());
/// ```
pub struct SecondaryDb {
    shards: Vec<EngineShard>,
    /// Present iff `shards.len() > 1`: the cross-shard sequence clock
    /// that keeps top-K recency ordering globally meaningful.
    clock: Option<Arc<SharedSequence>>,
    /// Degraded reads that returned partial results.
    degraded_reads: AtomicU64,
    /// Shard failures skipped by degraded reads.
    failed_shard_reads: AtomicU64,
}

impl SecondaryDb {
    /// Open a database at `name` with the given per-attribute indexes.
    ///
    /// With `opts.shards == 1` (the default) this is the classic
    /// single-engine layout: the primary table lives directly at `name`
    /// and stand-alone index tables at `{name}_idx_{attr}` — byte-for-byte
    /// what the pre-sharding engine wrote, with no layout descriptor.
    ///
    /// With `opts.shards == N > 1`, `name` becomes a root directory
    /// holding a `LAYOUT` descriptor plus `N` shard engines
    /// (`name/shard-i` primaries, `name/shard-i_idx_{attr}` index
    /// tables). Reopening validates the descriptor: a shard count
    /// mismatch — including asking for shards on an existing unsharded
    /// database — is a hard error, never a silent reshard.
    pub fn open(
        env: Arc<dyn Env>,
        name: &str,
        opts: SecondaryDbOptions,
        specs: &[(&str, IndexKind)],
    ) -> Result<SecondaryDb> {
        let requested = opts.shards.max(1);
        let shard_count = match shard_layout(&env, name)? {
            Some(recorded) if recorded != requested => {
                return Err(Error::invalid(format!(
                    "{name}: shard layout mismatch: directory records {recorded} shard(s) but \
                     open requested {requested}; resharding is not supported — reopen with \
                     shards = {recorded}"
                )));
            }
            Some(recorded) => recorded,
            None => {
                if requested > 1 {
                    if env.exists(&format!("{name}/CURRENT")) {
                        return Err(Error::invalid(format!(
                            "{name}: existing unsharded database cannot be opened with \
                             shards = {requested}; reopen with shards = 1"
                        )));
                    }
                    write_layout(&env, name, requested)?;
                }
                requested
            }
        };
        let clock = if shard_count > 1 {
            Some(SharedSequence::new())
        } else {
            None
        };
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let shard_name = if shard_count == 1 {
                name.to_string()
            } else {
                shard_dir(name, i)
            };
            shards.push(EngineShard::open(
                &env,
                &shard_name,
                &opts,
                specs,
                clock.clone(),
            )?);
        }
        Ok(SecondaryDb {
            shards,
            clock,
            degraded_reads: AtomicU64::new(0),
            failed_shard_reads: AtomicU64::new(0),
        })
    }

    /// Open in a fresh in-memory environment (tests, examples, benches).
    ///
    /// Honours `LDBPP_SHARDS` (see
    /// [`SecondaryDbOptions::shards_from_env`]), so existing suites can be
    /// re-run against a sharded engine by exporting the variable.
    pub fn open_in_memory(base: DbOptions, specs: &[(&str, IndexKind)]) -> Result<SecondaryDb> {
        SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base,
                shards: SecondaryDbOptions::shards_from_env(),
                ..Default::default()
            },
            specs,
        )
    }

    /// Number of engine shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard `pk` routes to (always 0 at `shards = 1`).
    pub fn shard_of(&self, pk: impl AsRef<[u8]>) -> usize {
        if self.shards.len() == 1 {
            return 0;
        }
        (route_hash(pk.as_ref()) % self.shards.len() as u64) as usize
    }

    /// The primary table of shard 0 — at `shards = 1` (the default), *the*
    /// primary table. Single-engine experiments and tools use this; code
    /// that must work sharded should use [`SecondaryDb::shard_primary`].
    pub fn primary(&self) -> &Arc<Db> {
        &self.shards[0].primary
    }

    /// The primary table of shard `i`, if it exists.
    pub fn shard_primary(&self, i: usize) -> Option<&Arc<Db>> {
        self.shards.get(i).map(|s| &s.primary)
    }

    /// Run the full structural invariant catalogue — the LSM checker over
    /// every shard's primary table, then over every stand-alone index
    /// table, plus the cross-check that no live index entry references a
    /// primary key without any record (see
    /// [`SecondaryIndex::check_integrity`] for the crash-consistency
    /// tolerances). On a multi-shard database each violation is prefixed
    /// with its shard (`shard-i: …`), so corruption is attributed to — and
    /// confined within — the shard that holds it. Intended for a quiesced
    /// database; never fails — errors while scanning an index become
    /// violations in the report.
    #[must_use = "the report lists violations; ignoring it defeats the check"]
    pub fn check_integrity(&self) -> IntegrityReport {
        if self.shards.len() == 1 {
            return self.shards[0].check_integrity();
        }
        let mut report = IntegrityReport::default();
        for (i, shard) in self.shards.iter().enumerate() {
            report.merge(&format!("shard-{i}"), shard.check_integrity());
        }
        report
    }

    /// Which technique indexes `attr` (identical on every shard).
    pub fn index_kind(&self, attr: &str) -> IndexKind {
        match self.shards[0].index_for(attr) {
            Some(i) => i.kind(),
            None => IndexKind::None,
        }
    }

    /// Run `query` against every shard — in parallel when there is more
    /// than one — and collect every per-shard outcome *in shard order*,
    /// so downstream merges are deterministic. No short-circuiting: a
    /// failing shard's error sits in its slot (degraded reads need to
    /// know *which* shards failed); a panicking shard thread is resumed
    /// on the caller.
    fn scatter_results<T, F>(&self, query: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(&EngineShard) -> Result<T> + Sync,
    {
        if self.shards.len() == 1 {
            return vec![query(&self.shards[0])];
        }
        // The crossbeam shim's scope: identical to `std::thread::scope` in
        // the default build; under the model checker each scatter child is
        // registered as a model thread, so the explorer interleaves the
        // per-shard reads against concurrent writers.
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let query = &query;
                    scope.spawn(move |_| query(shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        })
        .expect("scatter scope never fails")
    }

    /// Strict scatter: the first shard error fails the whole gather.
    fn scatter<T, F>(&self, query: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(&EngineShard) -> Result<T> + Sync,
    {
        self.scatter_results(query).into_iter().collect()
    }

    /// Scatter under a [`ReadMode`]. Strict delegates to
    /// [`SecondaryDb::scatter`]; degraded drops failing shards — a shard
    /// counts as failed when its query errors or its engine is poisoned
    /// by a sticky fatal error (its answer could not be trusted to be
    /// current) — and reports which. All shards failing is still an
    /// error (the first one), not an empty success.
    fn scatter_mode<T, F>(&self, mode: ReadMode, query: F) -> Result<Partial<Vec<T>>>
    where
        T: Send,
        F: Fn(&EngineShard) -> Result<T> + Sync,
    {
        if mode == ReadMode::Strict {
            return self.scatter(query).map(Partial::complete);
        }
        let outcomes = self.scatter_results(|shard| {
            if let Some(fatal) = shard.primary.fatal_error() {
                return Err(Error::io(format!("shard poisoned: {fatal}")));
            }
            query(shard)
        });
        let mut value = Vec::with_capacity(outcomes.len());
        let mut failed_shards = Vec::new();
        let mut first_err = None;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(v) => value.push(v),
                Err(e) => {
                    failed_shards.push(i);
                    first_err.get_or_insert(e);
                }
            }
        }
        if value.is_empty() {
            if let Some(e) = first_err {
                return Err(e);
            }
        }
        if !failed_shards.is_empty() {
            self.degraded_reads.fetch_add(1, Ordering::Relaxed);
            self.failed_shard_reads
                .fetch_add(failed_shards.len() as u64, Ordering::Relaxed);
        }
        Ok(Partial {
            value,
            failed_shards,
        })
    }

    // -- Table 1 operations --------------------------------------------------

    /// `PUT(k, v)`: write (or overwrite) a record on its shard and
    /// maintain that shard's indexes. Exactly one shard is touched.
    pub fn put(&self, pk: impl AsRef<[u8]>, doc: &Document) -> Result<u64> {
        let pk = pk.as_ref();
        if pk.is_empty() {
            return Err(Error::invalid("empty primary key"));
        }
        let shard = &self.shards[self.shard_of(pk)];
        // Reject inputs an index would later refuse *before* the primary
        // write, so a failed put never leaves the primary and its indexes
        // divergent (posting-list indexes serialize keys into JSON).
        let needs_text_pk = shard.indexes.iter().any(|i| {
            matches!(
                i.kind(),
                IndexKind::EagerStandalone | IndexKind::LazyStandalone
            )
        });
        if needs_text_pk && std::str::from_utf8(pk).is_err() {
            return Err(Error::invalid(
                "posting-list indexes require UTF-8 primary keys",
            ));
        }
        // Recency hint for the stand-alone index write that precedes the
        // primary write (see `EngineShard::put`). Sharded, the prediction
        // comes from the shared clock — the next allocation is at least
        // `current() + 1`, preserving the hint's "no smaller than the real
        // sequence's predecessor" contract across shards.
        let predicted_seq = match &self.clock {
            Some(clock) => clock.current() + 1,
            None => shard.primary.last_sequence() + 1,
        };
        shard.put(pk, doc, predicted_seq)
    }

    /// `DEL(k)`: delete a record on its shard and maintain that shard's
    /// indexes. Exactly one shard is touched.
    pub fn delete(&self, pk: impl AsRef<[u8]>) -> Result<()> {
        let pk = pk.as_ref();
        self.shards[self.shard_of(pk)].delete(pk)
    }

    /// `GET(k)`: fetch a record by primary key (routed, single shard).
    pub fn get(&self, pk: impl AsRef<[u8]>) -> Result<Option<Document>> {
        let pk = pk.as_ref();
        match self.shards[self.shard_of(pk)].primary.get(pk)? {
            Some(bytes) => Ok(Some(Document::parse(&bytes)?)),
            None => Ok(None),
        }
    }

    /// `LOOKUP(A, a, K)`: the K most recent records with `val(A) = a`,
    /// scattered across every shard and gathered newest-first.
    pub fn lookup(&self, attr: &str, value: &Value, k: Option<usize>) -> Result<Vec<LookupHit>> {
        self.lookup_attr(attr, &attr_from_json(value)?, k)
    }

    /// [`SecondaryDb::lookup`] under an explicit [`ReadMode`]. In
    /// degraded mode the result may be partial; inspect
    /// [`Partial::failed_shards`].
    pub fn lookup_mode(
        &self,
        attr: &str,
        value: &Value,
        k: Option<usize>,
        mode: ReadMode,
    ) -> Result<Partial<Vec<LookupHit>>> {
        self.lookup_attr_mode(attr, &attr_from_json(value)?, k, mode)
    }

    /// Typed variant of [`SecondaryDb::lookup`].
    pub fn lookup_attr(
        &self,
        attr: &str,
        value: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        self.lookup_attr_mode(attr, value, k, ReadMode::Strict)
            .map(|p| p.value)
    }

    /// Typed variant of [`SecondaryDb::lookup_mode`].
    pub fn lookup_attr_mode(
        &self,
        attr: &str,
        value: &AttrValue,
        k: Option<usize>,
        mode: ReadMode,
    ) -> Result<Partial<Vec<LookupHit>>> {
        let per_shard = self.scatter_mode(mode, |shard| shard.lookup_attr(attr, value, k))?;
        Ok(Partial {
            value: merge_newest_first(per_shard.value, k, |h| h.seq),
            failed_shards: per_shard.failed_shards,
        })
    }

    /// `RANGELOOKUP(A, a, b, K)`: the K most recent records with
    /// `a ≤ val(A) ≤ b`, scattered across every shard and gathered
    /// newest-first.
    pub fn range_lookup(
        &self,
        attr: &str,
        lo: &Value,
        hi: &Value,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        self.range_lookup_attr(attr, &attr_from_json(lo)?, &attr_from_json(hi)?, k)
    }

    /// [`SecondaryDb::range_lookup`] under an explicit [`ReadMode`].
    pub fn range_lookup_mode(
        &self,
        attr: &str,
        lo: &Value,
        hi: &Value,
        k: Option<usize>,
        mode: ReadMode,
    ) -> Result<Partial<Vec<LookupHit>>> {
        self.range_lookup_attr_mode(attr, &attr_from_json(lo)?, &attr_from_json(hi)?, k, mode)
    }

    /// Typed variant of [`SecondaryDb::range_lookup`].
    pub fn range_lookup_attr(
        &self,
        attr: &str,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        self.range_lookup_attr_mode(attr, lo, hi, k, ReadMode::Strict)
            .map(|p| p.value)
    }

    /// Typed variant of [`SecondaryDb::range_lookup_mode`].
    pub fn range_lookup_attr_mode(
        &self,
        attr: &str,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
        mode: ReadMode,
    ) -> Result<Partial<Vec<LookupHit>>> {
        if lo > hi {
            return Err(Error::invalid("inverted range"));
        }
        let per_shard =
            self.scatter_mode(mode, |shard| shard.range_lookup_attr(attr, lo, hi, k))?;
        Ok(Partial {
            value: merge_newest_first(per_shard.value, k, |h| h.seq),
            failed_shards: per_shard.failed_shards,
        })
    }

    /// Range scan over **primary keys** in `[lo, hi]` (inclusive),
    /// newest-version-resolved, in key order — LevelDB's range-query API
    /// surfaced through the facade. Each shard streams its own bounded
    /// cursor; the per-shard key-ordered slices are gathered through a
    /// K-bounded merge (hash partitioning interleaves keys across shards,
    /// so the merge is what restores global key order).
    pub fn scan_primary(
        &self,
        lo: impl AsRef<[u8]>,
        hi: impl AsRef<[u8]>,
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<u8>, Document)>> {
        self.scan_primary_mode(lo, hi, limit, ReadMode::Strict)
            .map(|p| p.value)
    }

    /// [`SecondaryDb::scan_primary`] under an explicit [`ReadMode`]: in
    /// degraded mode, keys routed to a failed shard are absent from the
    /// scan and the shard is listed in [`Partial::failed_shards`].
    pub fn scan_primary_mode(
        &self,
        lo: impl AsRef<[u8]>,
        hi: impl AsRef<[u8]>,
        limit: Option<usize>,
        mode: ReadMode,
    ) -> Result<Partial<ScanRows>> {
        let (lo, hi) = (lo.as_ref(), hi.as_ref());
        if lo > hi {
            return Err(Error::invalid("inverted range"));
        }
        // Pin the scatter at the shared clock *before* fanning out: every
        // shard cursor cuts at the same sequence, so a scan cannot return
        // a later write on one shard while missing an earlier write on
        // another (cross-shard read skew). Anything committed before the
        // pin is at or below it; anything allocated after is above it.
        // Single-shard scans read one engine and need no pin.
        let snapshot = self.clock.as_ref().map(|c| c.current());
        let per_shard =
            self.scatter_mode(mode, |shard| shard.scan_primary(lo, hi, limit, snapshot))?;
        Ok(Partial {
            value: merge_key_ordered(per_shard.value, limit, |(key, _)| key.clone()),
            failed_shards: per_shard.failed_shards,
        })
    }

    /// Conjunctive multi-attribute lookup: the K most recent records
    /// matching **all** of the given `(attribute, value)` equality
    /// predicates — the multi-dimensional search the paper cites HyperDex
    /// and Innesto for, expressed over this engine's per-attribute indexes.
    ///
    /// Strategy: probe the indexed attribute expected to be most selective
    /// (the first indexed one given), then filter its hits on the remaining
    /// predicates — a standard index-intersection plan specialized to one
    /// driving index. The driving probe is itself a scatter-gather
    /// [`SecondaryDb::lookup`], so the plan is unchanged by sharding.
    pub fn lookup_all(
        &self,
        predicates: &[(&str, Value)],
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        if predicates.is_empty() {
            return Err(Error::invalid("lookup_all needs at least one predicate"));
        }
        // Driving attribute: the first with a real index.
        let driver = predicates
            .iter()
            .position(|(attr, _)| self.shards[0].index_for(attr).is_some())
            .unwrap_or(0);
        let (driver_attr, driver_value) = &predicates[driver];
        let rest: Vec<(&str, AttrValue)> = predicates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != driver)
            .map(|(_, (attr, value))| Ok((*attr, attr_from_json(value)?)))
            .collect::<Result<_>>()?;

        // Over-fetch from the driving index, filter, repeat with a larger
        // K until satisfied or exhausted.
        let mut fetch = k.map(|k| (k * 4).max(16));
        loop {
            let hits = self.lookup(driver_attr, driver_value, fetch)?;
            let exhausted = fetch.is_none_or(|f| hits.len() < f);
            let filtered: Vec<LookupHit> = hits
                .into_iter()
                .filter(|h| {
                    rest.iter()
                        .all(|(attr, want)| h.doc.attr(attr).as_ref() == Some(want))
                })
                .collect();
            if k.is_none_or(|k| filtered.len() >= k) || exhausted {
                let mut filtered = filtered;
                filtered.truncate(k.unwrap_or(usize::MAX));
                return Ok(filtered);
            }
            fetch = fetch.map(|f| f * 4);
        }
    }

    // -- maintenance & accounting ---------------------------------------------

    /// Build indexes that were declared after data already existed, on
    /// every shard.
    ///
    /// Two cases are handled per shard:
    ///
    /// * **Stand-alone indexes whose tables have never been written** are
    ///   populated by scanning every live primary record and replaying
    ///   `on_put` with the record's original sequence number (so recency
    ///   ordering is preserved). The operation is idempotent — postings
    ///   and composite entries dedup by primary key.
    /// * **Embedded attributes missing from existing SSTables** trigger a
    ///   major compaction of the shard's primary table, which rewrites
    ///   every file with the now-declared per-block filters and zone maps.
    ///
    /// Returns the number of records replayed into stand-alone indexes,
    /// summed over shards.
    pub fn backfill_indexes(&self) -> Result<usize> {
        let mut replayed = 0;
        for shard in &self.shards {
            replayed += shard.backfill_indexes()?;
        }
        Ok(replayed)
    }

    /// Drop and rebuild every index from a scan of its shard's primary
    /// table.
    ///
    /// The recovery-path counterpart of [`SecondaryDb::backfill_indexes`]:
    /// where backfill only populates indexes that have *never* been
    /// written, a rebuild assumes the existing index state is suspect —
    /// typically after [`ldbpp_lsm::repair_db`] quarantined index SSTables
    /// or salvaged a subset of the primary — and replaces it wholesale:
    ///
    /// * **Stand-alone indexes** are cleared (every surviving index key is
    ///   tombstoned, so the rebuild shadows any stale on-disk state by
    ///   sequence order) and repopulated by replaying `on_put` for every
    ///   live primary record with its original sequence number.
    /// * **Embedded attributes** missing from any live SSTable's file-level
    ///   zone map trigger a major compaction, which rewrites every file
    ///   with regenerated per-block filters and zone maps.
    ///
    /// Returns the number of records replayed into stand-alone indexes,
    /// summed over shards.
    pub fn rebuild_indexes(&self) -> Result<usize> {
        let mut replayed = 0;
        for shard in &self.shards {
            replayed += shard.rebuild_indexes()?;
        }
        Ok(replayed)
    }

    /// Check integrity and, if any shard's indexes disagree with its
    /// primary, rebuild that shard's indexes and re-check — the
    /// self-healing step that follows [`ldbpp_lsm::repair_db`]. Healing is
    /// per shard: a rebuild is triggered only on shards whose indexes
    /// contribute violations (dangling/ghost postings, unreadable index
    /// tables), so damage confined to one shard never causes rebuild churn
    /// — or downtime — on the others. Damage confined to a primary table
    /// is reported untouched, since rebuilding indexes from a broken
    /// primary cannot help. The returned report aggregates all shards.
    pub fn heal(&self) -> Result<HealReport> {
        let mut total = HealReport::default();
        for shard in &self.shards {
            total.absorb(shard.heal()?);
        }
        Ok(total)
    }

    /// Flush every shard's primary memtable and stand-alone index tables.
    pub fn flush(&self) -> Result<()> {
        for shard in &self.shards {
            shard.primary.flush()?;
            for index in &shard.indexes {
                index.flush()?;
            }
        }
        Ok(())
    }

    /// With `background_work` enabled, block until every shard's primary
    /// table and stand-alone index tables have no pending background flush
    /// or compaction (no-op otherwise). Call before measuring tree shapes
    /// or byte counts so the numbers describe a settled database.
    pub fn wait_for_background_idle(&self) -> Result<()> {
        for shard in &self.shards {
            shard.primary.wait_for_background_idle()?;
            for index in &shard.indexes {
                index.wait_for_background_idle()?;
            }
        }
        Ok(())
    }

    /// Bytes of live SSTables across every shard's primary table.
    pub fn primary_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.primary.table_bytes()).sum()
    }

    /// Bytes of live SSTables across all stand-alone index tables of all
    /// shards.
    pub fn index_bytes(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.indexes.iter())
            .map(|i| i.table_bytes())
            .sum()
    }

    /// Total database size (primary + indexes, all shards).
    pub fn total_bytes(&self) -> u64 {
        self.primary_bytes() + self.index_bytes()
    }

    /// Per-attribute stand-alone index table sizes, summed over shards
    /// (embedded attrs report 0).
    pub fn index_bytes_by_attr(&self) -> Vec<(String, u64)> {
        self.shards[0]
            .indexes
            .iter()
            .enumerate()
            .map(|(pos, i)| {
                let total = self
                    .shards
                    .iter()
                    .filter_map(|s| s.indexes.get(pos))
                    .map(|idx| idx.table_bytes())
                    .sum();
                (i.attr().to_string(), total)
            })
            .collect()
    }

    /// The live I/O counters of one attribute's stand-alone index table on
    /// shard 0 — at `shards = 1`, *the* index table. (A live
    /// [`ldbpp_lsm::env::IoStats`] handle cannot be aggregated across
    /// shards; for cross-shard totals snapshot [`SecondaryDb::index_io`].)
    pub fn index_stats_of(&self, attr: &str) -> Option<Arc<ldbpp_lsm::env::IoStats>> {
        self.shards[0].index_for(attr).and_then(|i| i.index_stats())
    }

    /// Combined I/O snapshot of every stand-alone index table on every
    /// shard.
    pub fn index_io(&self) -> IoSnapshot {
        IoSnapshot::merge(self.shards.iter().map(EngineShard::index_io))
    }

    /// Combined I/O snapshot of every shard's primary table.
    pub fn primary_io(&self) -> IoSnapshot {
        IoSnapshot::merge(self.shards.iter().map(|s| s.primary.stats().snapshot()))
    }

    /// Degraded-read counters since open.
    pub fn degraded_stats(&self) -> DegradedStats {
        DegradedStats {
            degraded_reads: self.degraded_reads.load(Ordering::Relaxed),
            failed_shard_reads: self.failed_shard_reads.load(Ordering::Relaxed),
        }
    }
}
