//! The unified database facade: LevelDB++.
//!
//! A [`SecondaryDb`] is a primary LSM table plus, per indexed attribute,
//! one of the paper's index techniques. It exposes exactly the paper's
//! operation set (Table 1): `GET`, `PUT`, `DEL`, `LOOKUP(A, a, K)` and
//! `RANGELOOKUP(A, a, b, K)`.

use crate::doc::{Document, JsonAttrExtractor};
use crate::indexes::{
    CompositeIndex, EagerIndex, EmbeddedIndex, EmbeddedValidation, IndexKind, LazyIndex, LookupHit,
    SecondaryIndex,
};
use crate::topk::TopK;
use ldbpp_common::json::Value;
use ldbpp_common::{Error, Result};
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::check::{CheckCode, IntegrityReport};
use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::{Env, IoSnapshot, MemEnv};
use std::sync::Arc;

/// Configuration for a [`SecondaryDb`].
#[derive(Clone, Debug, Default)]
pub struct SecondaryDbOptions {
    /// Sizing/compression options applied to the primary table and (unless
    /// overridden) every stand-alone index table.
    pub base: DbOptions,
    /// Validation mode for Embedded indexes (ablation knob; the default
    /// GetLite-with-confirmation is both exact and cheap).
    pub embedded_validation: EmbeddedValidation,
}

/// Convert a JSON scalar to a typed attribute value.
pub fn attr_from_json(v: &Value) -> Result<AttrValue> {
    match v {
        Value::Str(s) => Ok(AttrValue::str(s.clone())),
        Value::Int(i) => Ok(AttrValue::Int(*i)),
        other => Err(Error::invalid(format!(
            "attribute values must be strings or integers, got {other}"
        ))),
    }
}

/// What [`SecondaryDb::heal`] found and did.
#[must_use = "healing may have left violations; inspect the report"]
#[derive(Debug, Clone, Default)]
pub struct HealReport {
    /// Violations [`SecondaryDb::check_integrity`] reported before healing.
    pub violations_before: usize,
    /// Violations remaining after healing (0 when the rebuild succeeded;
    /// equal to `violations_before` when no rebuild was needed or the
    /// damage is in the primary table, which index rebuilds cannot fix).
    pub violations_after: usize,
    /// Whether the index tables were dropped and rebuilt.
    pub rebuilt: bool,
    /// Primary records replayed into stand-alone indexes by the rebuild.
    pub replayed: usize,
}

impl HealReport {
    /// True when no violations remain.
    pub fn is_clean(&self) -> bool {
        self.violations_after == 0
    }
}

/// A key-value store with secondary indexes — the paper's LevelDB++.
///
/// ```
/// use ldbpp_core::{Document, IndexKind, SecondaryDb};
/// use ldbpp_common::json::Value;
/// use ldbpp_lsm::db::DbOptions;
///
/// let db = SecondaryDb::open_in_memory(
///     DbOptions::small(),
///     &[("UserID", IndexKind::CompositeStandalone)],
/// ).unwrap();
///
/// let mut doc = Document::new();
/// doc.set("UserID", Value::str("alice"));
/// db.put("t1", &doc).unwrap();
///
/// let hits = db.lookup("UserID", &Value::str("alice"), None).unwrap();
/// assert_eq!(hits[0].key, b"t1");
/// assert!(db.get("t1").unwrap().is_some());
/// db.delete("t1").unwrap();
/// assert!(db.get("t1").unwrap().is_none());
/// ```
pub struct SecondaryDb {
    primary: Arc<Db>,
    indexes: Vec<Box<dyn SecondaryIndex>>,
    /// Attributes declared with [`IndexKind::None`] (full-scan fallback).
    unindexed: Vec<String>,
}

impl SecondaryDb {
    /// Open a database at `name` with the given per-attribute indexes.
    pub fn open(
        env: Arc<dyn Env>,
        name: &str,
        opts: SecondaryDbOptions,
        specs: &[(&str, IndexKind)],
    ) -> Result<SecondaryDb> {
        let mut primary_opts = opts.base.clone();
        let embedded_attrs: Vec<String> = specs
            .iter()
            .filter(|(_, k)| *k == IndexKind::Embedded)
            .map(|(a, _)| a.to_string())
            .collect();
        if !embedded_attrs.is_empty() {
            primary_opts.indexed_attrs = embedded_attrs;
            primary_opts.extractor = Some(Arc::new(JsonAttrExtractor));
        }
        let primary = Arc::new(Db::open(Arc::clone(&env), name, primary_opts)?);

        let mut indexes: Vec<Box<dyn SecondaryIndex>> = Vec::new();
        let mut unindexed = Vec::new();
        for (attr, kind) in specs {
            let path = format!("{name}_idx_{attr}");
            match kind {
                IndexKind::None => unindexed.push(attr.to_string()),
                IndexKind::Embedded => indexes.push(Box::new(EmbeddedIndex::with_validation(
                    attr,
                    opts.embedded_validation,
                ))),
                IndexKind::EagerStandalone => indexes.push(Box::new(EagerIndex::open(
                    Arc::clone(&env),
                    &path,
                    attr,
                    &opts.base,
                )?)),
                IndexKind::LazyStandalone => indexes.push(Box::new(LazyIndex::open(
                    Arc::clone(&env),
                    &path,
                    attr,
                    &opts.base,
                )?)),
                IndexKind::CompositeStandalone => indexes.push(Box::new(CompositeIndex::open(
                    Arc::clone(&env),
                    &path,
                    attr,
                    &opts.base,
                )?)),
            }
        }
        Ok(SecondaryDb {
            primary,
            indexes,
            unindexed,
        })
    }

    /// Open in a fresh in-memory environment (tests, examples, benches).
    pub fn open_in_memory(base: DbOptions, specs: &[(&str, IndexKind)]) -> Result<SecondaryDb> {
        SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base,
                ..Default::default()
            },
            specs,
        )
    }

    /// The primary table.
    pub fn primary(&self) -> &Arc<Db> {
        &self.primary
    }

    /// Run the full structural invariant catalogue: the LSM checker over
    /// the primary table, then over every stand-alone index table, plus
    /// the cross-check that no live index entry references a primary key
    /// without any record (see
    /// [`SecondaryIndex::check_integrity`] for the
    /// crash-consistency tolerances). Intended for a quiesced
    /// database; never fails — errors while scanning an index become
    /// violations in the report.
    #[must_use = "the report lists violations; ignoring it defeats the check"]
    pub fn check_integrity(&self) -> IntegrityReport {
        let mut report = self.primary.check_integrity();
        for index in &self.indexes {
            if let Err(e) = index.check_integrity(&self.primary, &mut report) {
                report.push(
                    CheckCode::TableUnreadable,
                    format!(
                        "{} index '{}': integrity scan failed: {e}",
                        index.kind(),
                        index.attr()
                    ),
                );
            }
        }
        report
    }

    /// The index handling `attr`, if any.
    fn index_for(&self, attr: &str) -> Option<&dyn SecondaryIndex> {
        self.indexes
            .iter()
            .map(|b| b.as_ref())
            .find(|i| i.attr() == attr)
    }

    /// Which technique indexes `attr`.
    pub fn index_kind(&self, attr: &str) -> IndexKind {
        match self.index_for(attr) {
            Some(i) => i.kind(),
            None => IndexKind::None,
        }
    }

    // -- Table 1 operations --------------------------------------------------

    /// `PUT(k, v)`: write (or overwrite) a record and maintain every index.
    pub fn put(&self, pk: impl AsRef<[u8]>, doc: &Document) -> Result<u64> {
        let pk = pk.as_ref();
        if pk.is_empty() {
            return Err(Error::invalid("empty primary key"));
        }
        // Reject inputs an index would later refuse *before* the primary
        // write, so a failed put never leaves the primary and its indexes
        // divergent (posting-list indexes serialize keys into JSON).
        let needs_text_pk = self.indexes.iter().any(|i| {
            matches!(
                i.kind(),
                IndexKind::EagerStandalone | IndexKind::LazyStandalone
            )
        });
        if needs_text_pk && std::str::from_utf8(pk).is_err() {
            return Err(Error::invalid(
                "posting-list indexes require UTF-8 primary keys",
            ));
        }
        // Crash-consistency ordering: maintain the *stand-alone* indexes
        // BEFORE the primary write. A crash between the two steps can then
        // only strand index entries whose primary record never landed —
        // false positives that every lookup already filters out by
        // validating candidates against the primary. The opposite order
        // would strand primary records invisible to LOOKUP (false
        // negatives), which nothing repairs. This contract holds *per
        // logical batch* under the primary's group-commit queue (DESIGN.md
        // §14): each `put` finishes its index writes before enqueueing its
        // primary write, so whichever group the primary write lands in,
        // its index entries are already durable-or-earlier. The sequence
        // the primary write will use is predicted; concurrent writers
        // grouping ahead of us can make the real sequence larger, but
        // validation re-reads the primary anyway, so the race only skews
        // the recency hint stored in the posting.
        let predicted_seq = self.primary.last_sequence() + 1;
        for index in &self.indexes {
            if index.kind() != IndexKind::Embedded {
                index.on_put(&self.primary, pk, doc, predicted_seq)?;
            }
        }
        let seq = self.primary.put(pk, &doc.to_bytes())?;
        // The Embedded Index shadows the memtable: it must record the real
        // sequence of an entry that actually exists, so it stays after the
        // primary write (it is memory-only — rebuilt on recovery — so the
        // ordering has no crash-consistency cost).
        for index in &self.indexes {
            if index.kind() == IndexKind::Embedded {
                index.on_put(&self.primary, pk, doc, seq)?;
            }
        }
        Ok(seq)
    }

    /// `DEL(k)`: delete a record and maintain every index.
    pub fn delete(&self, pk: impl AsRef<[u8]>) -> Result<()> {
        let pk = pk.as_ref();
        // Stand-alone indexes need the old record to find which posting
        // list / composite key to mark; the Embedded Index does not (its
        // validity checks absorb stale entries), keeping its DEL at a
        // single write as in the paper's Table 3.
        let needs_old = self.indexes.iter().any(|i| i.kind() != IndexKind::Embedded);
        let old_doc = if needs_old {
            match self.primary.get(pk)? {
                Some(bytes) => Some(Document::parse(&bytes)?),
                None => None,
            }
        } else {
            None
        };
        // Deletes keep the opposite ordering from puts (primary first): a
        // crash after the tombstone but before the index cleanup leaves a
        // stale index entry, which validation against the primary filters
        // out. Cleaning the index first would instead make a still-live
        // record unfindable if the crash lands between the two steps.
        let seq = self.primary.delete(pk)?;
        for index in &self.indexes {
            index.on_delete(&self.primary, pk, old_doc.as_ref(), seq)?;
        }
        Ok(())
    }

    /// `GET(k)`: fetch a record by primary key.
    pub fn get(&self, pk: impl AsRef<[u8]>) -> Result<Option<Document>> {
        match self.primary.get(pk.as_ref())? {
            Some(bytes) => Ok(Some(Document::parse(&bytes)?)),
            None => Ok(None),
        }
    }

    /// `LOOKUP(A, a, K)`: the K most recent records with `val(A) = a`.
    pub fn lookup(&self, attr: &str, value: &Value, k: Option<usize>) -> Result<Vec<LookupHit>> {
        self.lookup_attr(attr, &attr_from_json(value)?, k)
    }

    /// Typed variant of [`SecondaryDb::lookup`].
    pub fn lookup_attr(
        &self,
        attr: &str,
        value: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        match self.index_for(attr) {
            Some(index) => index.lookup(&self.primary, value, k),
            None if self.unindexed.iter().any(|a| a == attr) => {
                self.full_scan_on(attr, |v| v == value, k)
            }
            None => Err(Error::not_supported(format!(
                "no index declared on attribute '{attr}'"
            ))),
        }
    }

    /// `RANGELOOKUP(A, a, b, K)`: the K most recent records with
    /// `a ≤ val(A) ≤ b`.
    pub fn range_lookup(
        &self,
        attr: &str,
        lo: &Value,
        hi: &Value,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        self.range_lookup_attr(attr, &attr_from_json(lo)?, &attr_from_json(hi)?, k)
    }

    /// Typed variant of [`SecondaryDb::range_lookup`].
    pub fn range_lookup_attr(
        &self,
        attr: &str,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        if lo > hi {
            return Err(Error::invalid("inverted range"));
        }
        match self.index_for(attr) {
            Some(index) => index.range_lookup(&self.primary, lo, hi, k),
            None if self.unindexed.iter().any(|a| a == attr) => {
                let (lo, hi) = (lo.clone(), hi.clone());
                let attr = attr.to_string();
                self.full_scan_on(&attr, move |v| lo <= *v && *v <= hi, k)
            }
            None => Err(Error::not_supported(format!(
                "no index declared on attribute '{attr}'"
            ))),
        }
    }

    /// Range scan over **primary keys** in `[lo, hi]` (inclusive),
    /// newest-version-resolved, in key order — LevelDB's range-query API
    /// surfaced through the facade (the Eager index uses it internally for
    /// RANGELOOKUP).
    pub fn scan_primary(
        &self,
        lo: impl AsRef<[u8]>,
        hi: impl AsRef<[u8]>,
        limit: Option<usize>,
    ) -> Result<Vec<(Vec<u8>, Document)>> {
        let (lo, hi) = (lo.as_ref(), hi.as_ref());
        if lo > hi {
            return Err(Error::invalid("inverted range"));
        }
        // Bounded cursor: only files overlapping [lo, hi] are merged and
        // the stream ends at hi without touching further blocks.
        let mut it = self.primary.range_iter(lo, hi)?;
        let mut out = Vec::new();
        while let Some((key, _seq, bytes)) = it.next_entry()? {
            out.push((key, Document::parse(&bytes)?));
            if limit.is_some_and(|l| out.len() >= l) {
                break;
            }
        }
        Ok(out)
    }

    /// Conjunctive multi-attribute lookup: the K most recent records
    /// matching **all** of the given `(attribute, value)` equality
    /// predicates — the multi-dimensional search the paper cites HyperDex
    /// and Innesto for, expressed over this engine's per-attribute indexes.
    ///
    /// Strategy: probe the indexed attribute expected to be most selective
    /// (the first indexed one given), then filter its hits on the remaining
    /// predicates — a standard index-intersection plan specialized to one
    /// driving index.
    pub fn lookup_all(
        &self,
        predicates: &[(&str, Value)],
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        if predicates.is_empty() {
            return Err(Error::invalid("lookup_all needs at least one predicate"));
        }
        // Driving attribute: the first with a real index.
        let driver = predicates
            .iter()
            .position(|(attr, _)| self.index_for(attr).is_some())
            .unwrap_or(0);
        let (driver_attr, driver_value) = &predicates[driver];
        let rest: Vec<(&str, AttrValue)> = predicates
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != driver)
            .map(|(_, (attr, value))| Ok((*attr, attr_from_json(value)?)))
            .collect::<Result<_>>()?;

        // Over-fetch from the driving index, filter, repeat with a larger
        // K until satisfied or exhausted.
        let mut fetch = k.map(|k| (k * 4).max(16));
        loop {
            let hits = self.lookup(driver_attr, driver_value, fetch)?;
            let exhausted = fetch.is_none_or(|f| hits.len() < f);
            let filtered: Vec<LookupHit> = hits
                .into_iter()
                .filter(|h| {
                    rest.iter()
                        .all(|(attr, want)| h.doc.attr(attr).as_ref() == Some(want))
                })
                .collect();
            if k.is_none_or(|k| filtered.len() >= k) || exhausted {
                let mut filtered = filtered;
                filtered.truncate(k.unwrap_or(usize::MAX));
                return Ok(filtered);
            }
            fetch = fetch.map(|f| f * 4);
        }
    }

    /// The NoIndex baseline: scan the entire primary table.
    fn full_scan_on(
        &self,
        attr: &str,
        pred: impl Fn(&AttrValue) -> bool,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        let mut heap: TopK<(Vec<u8>, Document)> = TopK::new(k);
        let mut it = self.primary.resolved_iter()?;
        it.seek_to_first();
        while let Some((pk, seq, bytes)) = it.next_entry()? {
            let Ok(doc) = Document::parse(&bytes) else {
                continue;
            };
            if let Some(v) = doc.attr(attr) {
                if pred(&v) {
                    heap.add(seq, (pk, doc));
                }
            }
        }
        Ok(heap
            .into_sorted()
            .into_iter()
            .map(|(seq, (key, doc))| LookupHit { key, seq, doc })
            .collect())
    }

    // -- maintenance & accounting ---------------------------------------------

    /// Build indexes that were declared after data already existed.
    ///
    /// Two cases are handled:
    ///
    /// * **Stand-alone indexes whose tables have never been written** are
    ///   populated by scanning every live primary record and replaying
    ///   `on_put` with the record's original sequence number (so recency
    ///   ordering is preserved). The operation is idempotent — postings
    ///   and composite entries dedup by primary key.
    /// * **Embedded attributes missing from existing SSTables** trigger a
    ///   major compaction of the primary table, which rewrites every file
    ///   with the now-declared per-block filters and zone maps.
    ///
    /// Returns the number of records replayed into stand-alone indexes.
    pub fn backfill_indexes(&self) -> Result<usize> {
        // Embedded: any file missing the attribute's file-level zone map
        // predates the declaration.
        let embedded_attrs: Vec<&str> = self
            .indexes
            .iter()
            .filter(|i| i.kind() == IndexKind::Embedded)
            .map(|i| i.attr())
            .collect();
        if !embedded_attrs.is_empty() {
            let version = self.primary.current_version();
            let stale = version.files.iter().flatten().any(|f| {
                embedded_attrs
                    .iter()
                    .any(|attr| f.file_zone(attr).is_none())
            });
            if stale {
                self.primary.major_compact()?;
            }
        }

        let to_fill: Vec<&dyn SecondaryIndex> = self
            .indexes
            .iter()
            .map(|b| b.as_ref())
            .filter(|i| i.needs_backfill())
            .collect();
        if to_fill.is_empty() {
            return Ok(0);
        }
        let mut it = self.primary.resolved_iter()?;
        it.seek_to_first();
        let mut replayed = 0usize;
        while let Some((pk, seq, bytes)) = it.next_entry()? {
            let Ok(doc) = Document::parse(&bytes) else {
                continue;
            };
            for index in &to_fill {
                index.on_put(&self.primary, &pk, &doc, seq)?;
            }
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Drop and rebuild every index from a scan of the primary table.
    ///
    /// The recovery-path counterpart of [`SecondaryDb::backfill_indexes`]:
    /// where backfill only populates indexes that have *never* been
    /// written, a rebuild assumes the existing index state is suspect —
    /// typically after [`ldbpp_lsm::repair_db`] quarantined index SSTables
    /// or salvaged a subset of the primary — and replaces it wholesale:
    ///
    /// * **Stand-alone indexes** are cleared (every surviving index key is
    ///   tombstoned, so the rebuild shadows any stale on-disk state by
    ///   sequence order) and repopulated by replaying `on_put` for every
    ///   live primary record with its original sequence number.
    /// * **Embedded attributes** missing from any live SSTable's file-level
    ///   zone map trigger a major compaction, which rewrites every file
    ///   with regenerated per-block filters and zone maps.
    ///
    /// Returns the number of records replayed into stand-alone indexes.
    pub fn rebuild_indexes(&self) -> Result<usize> {
        // Embedded: regenerate in-file metadata if any file lacks it
        // (repair's partial-table rewrite recomputes it, but tables kept
        // verbatim from before the attribute was declared would not have it).
        let embedded_attrs: Vec<&str> = self
            .indexes
            .iter()
            .filter(|i| i.kind() == IndexKind::Embedded)
            .map(|i| i.attr())
            .collect();
        if !embedded_attrs.is_empty() {
            let version = self.primary.current_version();
            let stale = version.files.iter().flatten().any(|f| {
                embedded_attrs
                    .iter()
                    .any(|attr| f.file_zone(attr).is_none())
            });
            if stale {
                self.primary.major_compact()?;
            }
        }

        let standalone: Vec<&dyn SecondaryIndex> = self
            .indexes
            .iter()
            .map(|b| b.as_ref())
            .filter(|i| i.kind() != IndexKind::Embedded)
            .collect();
        if standalone.is_empty() {
            return Ok(0);
        }
        for index in &standalone {
            index.clear()?;
        }
        let mut it = self.primary.resolved_iter()?;
        it.seek_to_first();
        let mut replayed = 0usize;
        while let Some((pk, seq, bytes)) = it.next_entry()? {
            let Ok(doc) = Document::parse(&bytes) else {
                continue;
            };
            for index in &standalone {
                index.on_put(&self.primary, &pk, &doc, seq)?;
            }
            replayed += 1;
        }
        Ok(replayed)
    }

    /// Check integrity and, if the indexes disagree with the primary,
    /// rebuild them and re-check — the self-healing step that follows
    /// [`ldbpp_lsm::repair_db`]. A rebuild is triggered only by violations
    /// the indexes contribute (dangling/ghost postings, unreadable index
    /// tables); damage confined to the primary table is reported untouched,
    /// since rebuilding indexes from a broken primary cannot help.
    pub fn heal(&self) -> Result<HealReport> {
        let full = self.check_integrity();
        let violations_before = full.violations.len();
        // Index-attributed violations = full report minus the primary's own.
        let primary_only = self.primary.check_integrity().violations.len();
        if violations_before <= primary_only {
            return Ok(HealReport {
                violations_before,
                violations_after: violations_before,
                rebuilt: false,
                replayed: 0,
            });
        }
        let replayed = self.rebuild_indexes()?;
        let after = self.check_integrity();
        Ok(HealReport {
            violations_before,
            violations_after: after.violations.len(),
            rebuilt: true,
            replayed,
        })
    }

    /// Flush the primary memtable and every stand-alone index table.
    pub fn flush(&self) -> Result<()> {
        self.primary.flush()?;
        for index in &self.indexes {
            index.flush()?;
        }
        Ok(())
    }

    /// With `background_work` enabled, block until the primary table and
    /// every stand-alone index table have no pending background flush or
    /// compaction (no-op otherwise). Call before measuring tree shapes or
    /// byte counts so the numbers describe a settled database.
    pub fn wait_for_background_idle(&self) -> Result<()> {
        self.primary.wait_for_background_idle()?;
        for index in &self.indexes {
            index.wait_for_background_idle()?;
        }
        Ok(())
    }

    /// Bytes of live SSTables in the primary table.
    pub fn primary_bytes(&self) -> u64 {
        self.primary.table_bytes()
    }

    /// Bytes of live SSTables across all stand-alone index tables.
    pub fn index_bytes(&self) -> u64 {
        self.indexes.iter().map(|i| i.table_bytes()).sum()
    }

    /// Total database size (primary + indexes).
    pub fn total_bytes(&self) -> u64 {
        self.primary_bytes() + self.index_bytes()
    }

    /// Per-attribute stand-alone index table sizes (embedded attrs report 0).
    pub fn index_bytes_by_attr(&self) -> Vec<(String, u64)> {
        self.indexes
            .iter()
            .map(|i| (i.attr().to_string(), i.table_bytes()))
            .collect()
    }

    /// The I/O counters of one attribute's stand-alone index table.
    pub fn index_stats_of(&self, attr: &str) -> Option<Arc<ldbpp_lsm::env::IoStats>> {
        self.index_for(attr).and_then(|i| i.index_stats())
    }

    /// Combined I/O snapshot of every stand-alone index table.
    pub fn index_io(&self) -> IoSnapshot {
        let mut total = IoSnapshot::default();
        for index in &self.indexes {
            if let Some(stats) = index.index_stats() {
                total = total + stats.snapshot();
            }
        }
        total
    }

    /// I/O snapshot of the primary table.
    pub fn primary_io(&self) -> IoSnapshot {
        self.primary.stats().snapshot()
    }
}
