//! The Lazy stand-alone index (paper §4.1.2).
//!
//! Writes append posting-list *fragments* (`PUT(a_i, [k])` and nothing
//! else); fragments scatter across levels and are merged (a) during
//! compaction via [`PostingListMerge`], and (b) at query time by scanning
//! level by level. Lookups can stop as soon as top-K is satisfied at the
//! end of a level, since fragments of one key are time-ordered across
//! levels.

use crate::doc::Document;
use crate::indexes::posting::{decode_postings, encode_postings, fold_postings, Posting};
use crate::indexes::{clear_index_table, fetch_if_valid, IndexKind, LookupHit, SecondaryIndex};
use ldbpp_common::Result;
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::{Env, IoStats};
use ldbpp_lsm::ikey::{self, InternalKey, ValueType};
use ldbpp_lsm::merge::MergeOperator;
use std::collections::{HashMap, HashSet};
use std::ops::ControlFlow;
use std::sync::Arc;

/// Merge operator folding posting-list fragments during compaction — the
/// paper's "the old postings list of u is merged with (u, {t4}) later,
/// during the periodic compaction phase".
#[derive(Debug, Default, Clone, Copy)]
pub struct PostingListMerge;

impl MergeOperator for PostingListMerge {
    fn full_merge(&self, _key: &[u8], base: Option<&[u8]>, operands: &[&[u8]]) -> Vec<u8> {
        // Operands arrive oldest first; fold_postings wants newest first.
        // A base value (a previously finalized list) is the oldest of all.
        let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(operands.len() + 1);
        for op in operands.iter().rev() {
            lists.push(decode_postings(op).unwrap_or_default());
        }
        if let Some(b) = base {
            lists.push(decode_postings(b).unwrap_or_default());
        }
        // Nothing older can survive below a full merge: markers drop.
        encode_postings(&fold_postings(&lists, false)).unwrap_or_else(|_| b"[]".to_vec())
    }

    fn partial_merge(&self, _key: &[u8], operands: &[&[u8]], at_bottom: bool) -> Vec<u8> {
        let mut lists: Vec<Vec<Posting>> = Vec::with_capacity(operands.len());
        for op in operands.iter().rev() {
            lists.push(decode_postings(op).unwrap_or_default());
        }
        // Deletion markers must survive while older fragments may still
        // exist in deeper levels.
        encode_postings(&fold_postings(&lists, !at_bottom)).unwrap_or_else(|_| b"[]".to_vec())
    }
}

/// Stand-alone posting-list index with lazy (append-only) updates.
pub struct LazyIndex {
    attr: String,
    table: Arc<Db>,
}

impl LazyIndex {
    /// Open the index table under `path`.
    pub fn open(env: Arc<dyn Env>, path: &str, attr: &str, base: &DbOptions) -> Result<LazyIndex> {
        let opts = DbOptions {
            indexed_attrs: Vec::new(),
            extractor: None,
            merge_operator: Some(Arc::new(PostingListMerge)),
            ..base.clone()
        };
        Ok(LazyIndex {
            attr: attr.to_string(),
            table: Arc::new(Db::open(env, path, opts)?),
        })
    }

    /// The underlying index table (exposed for experiments).
    pub fn table(&self) -> &Arc<Db> {
        &self.table
    }
}

impl SecondaryIndex for LazyIndex {
    fn attr(&self) -> &str {
        &self.attr
    }

    fn kind(&self) -> IndexKind {
        IndexKind::LazyStandalone
    }

    fn on_put(&self, _primary: &Db, pk: &[u8], doc: &Document, seq: u64) -> Result<()> {
        let Some(value) = doc.attr(&self.attr) else {
            return Ok(());
        };
        let fragment = encode_postings(&[Posting::insert(pk.to_vec(), seq)])?;
        self.table.merge(&value.encode(), &fragment)?;
        Ok(())
    }

    fn on_delete(
        &self,
        _primary: &Db,
        pk: &[u8],
        old_doc: Option<&Document>,
        seq: u64,
    ) -> Result<()> {
        let Some(value) = old_doc.and_then(|d| d.attr(&self.attr)) else {
            return Ok(());
        };
        let marker = encode_postings(&[Posting::delete(pk.to_vec(), seq)])?;
        self.table.merge(&value.encode(), &marker)?;
        Ok(())
    }

    fn lookup(&self, primary: &Db, value: &AttrValue, k: Option<usize>) -> Result<Vec<LookupHit>> {
        // Algorithm 3: walk the fragments level by level (newest first);
        // after each level, stop if top-K is satisfied.
        let mut hits: Vec<LookupHit> = Vec::new();
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut validation_error = None;
        self.table
            .fold_key_sources(&value.encode(), |_src, entries| {
                for (vtype, bytes, _entry_seq) in entries {
                    match vtype {
                        ValueType::Deletion => return ControlFlow::Break(()),
                        ValueType::Merge | ValueType::Value => {
                            let postings = match decode_postings(bytes) {
                                Ok(p) => p,
                                Err(e) => {
                                    validation_error = Some(e);
                                    return ControlFlow::Break(());
                                }
                            };
                            for p in postings {
                                if !seen.insert(p.pk.clone()) {
                                    continue; // newer entry for this pk already seen
                                }
                                if p.deleted {
                                    continue;
                                }
                                match fetch_if_valid(primary, &p.pk, |d| {
                                    d.attr(&self.attr).as_ref() == Some(value)
                                }) {
                                    Ok(Some(doc)) => hits.push(LookupHit {
                                        key: p.pk,
                                        seq: p.seq,
                                        doc,
                                    }),
                                    Ok(None) => {}
                                    Err(e) => {
                                        validation_error = Some(e);
                                        return ControlFlow::Break(());
                                    }
                                }
                                if k.is_some_and(|k| hits.len() >= k) {
                                    return ControlFlow::Break(());
                                }
                            }
                        }
                    }
                }
                // End of one level: terminate early if top-K found.
                if k.is_some_and(|k| hits.len() >= k) {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })?;
        if let Some(e) = validation_error {
            return Err(e);
        }
        hits.sort_by_key(|h| std::cmp::Reverse(h.seq));
        hits.truncate(k.unwrap_or(usize::MAX));
        Ok(hits)
    }

    fn range_lookup(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        // Algorithm 6: force the range iterator to scan level by level,
        // because each secondary key's list may be fragmented across
        // levels.
        let lo_enc = lo.encode();
        let hi_enc = hi.encode();
        let mut best: HashMap<Vec<u8>, Posting> = HashMap::new();
        let mut hits: Vec<LookupHit> = Vec::new();
        let mut validated: HashSet<Vec<u8>> = HashSet::new();
        let in_range = |d: &Document| match d.attr(&self.attr) {
            Some(v) => *lo <= v && v <= *hi,
            None => false,
        };

        // Index keys are exactly `AttrValue::encode`, so the encoded bounds
        // give the source stack a tight range: files outside it contribute
        // no iterator, and the lazy ConcatIters open nothing until the seek.
        for (_src, mut it) in self
            .table
            .source_iterators_range(Some((&lo_enc, &hi_enc)))?
        {
            it.seek(&InternalKey::for_seek(&lo_enc, ikey::MAX_SEQUENCE).0);
            while it.valid() {
                let (user_key, _seq, vtype) = ikey::parse_internal_key(it.key())?;
                let av = AttrValue::decode(user_key)?;
                if av > *hi {
                    break;
                }
                if vtype != ValueType::Deletion {
                    for p in decode_postings(it.value())? {
                        let candidate = best.entry(p.pk.clone()).or_insert_with(|| p.clone());
                        if p.seq > candidate.seq {
                            *candidate = p;
                        }
                    }
                }
                it.next();
            }
            // Validate the current candidate pool newest-first; stop at the
            // end of a level once K hits are confirmed.
            let mut pool: Vec<&Posting> = best.values().filter(|p| !p.deleted).collect();
            pool.sort_by_key(|p| std::cmp::Reverse(p.seq));
            for p in pool {
                if k.is_some_and(|k| hits.len() >= k) {
                    break;
                }
                if !validated.insert(p.pk.clone()) {
                    continue;
                }
                if let Some(doc) = fetch_if_valid(primary, &p.pk, in_range)? {
                    hits.push(LookupHit {
                        key: p.pk.clone(),
                        seq: p.seq,
                        doc,
                    });
                }
            }
            if k.is_some_and(|k| hits.len() >= k) {
                break;
            }
        }
        hits.sort_by_key(|h| std::cmp::Reverse(h.seq));
        hits.truncate(k.unwrap_or(usize::MAX));
        Ok(hits)
    }

    fn table_bytes(&self) -> u64 {
        self.table.table_bytes()
    }

    fn index_stats(&self) -> Option<Arc<IoStats>> {
        Some(self.table.stats())
    }

    fn flush(&self) -> Result<()> {
        self.table.flush()
    }

    fn wait_for_background_idle(&self) -> Result<()> {
        self.table.wait_for_background_idle()
    }

    fn needs_backfill(&self) -> bool {
        // Never written: no sequence was ever assigned to this table.
        self.table.last_sequence() == 0
    }

    fn clear(&self) -> Result<usize> {
        clear_index_table(&self.table)
    }

    fn check_integrity(
        &self,
        primary: &Db,
        report: &mut ldbpp_lsm::check::IntegrityReport,
    ) -> Result<()> {
        crate::indexes::check_posting_table(self.kind(), &self.attr, &self.table, primary, report)
    }

    fn reconcile_dangling(&self, primary: &Db) -> Result<usize> {
        // Lazy stays append-only even here: merge a deletion-marker
        // fragment over each stranded posting. Shadowing in both the
        // merge fold and the lookup walk is by *encounter order* (newest
        // fragment first), not the embedded sequence, so the marker hides
        // the stranded entry and any later re-insert of the same pk
        // shadows the marker in turn — the marker's own seq is only a
        // recency hint.
        let mut removed = 0usize;
        let marker_seq = primary.last_sequence();
        for (key, dangling) in crate::indexes::collect_dangling_postings(&self.table, primary)? {
            removed += dangling.len();
            let markers: Vec<Posting> = dangling
                .into_iter()
                .map(|pk| Posting::delete(pk, marker_seq))
                .collect();
            self.table.merge(&key, &encode_postings(&markers)?)?;
        }
        Ok(removed)
    }
}
