//! The Composite stand-alone index (paper §4.2).
//!
//! Each index entry's key is `encode_composite(secondary) ‖ primary_key`;
//! the value stores only the sequence number. A secondary lookup is a
//! prefix range scan. Because compaction picks files round-robin by key
//! range, composite entries for one secondary key are *not* time-ordered
//! across levels, so lookups must traverse every level before top-K can be
//! decided — the paper's explanation for Composite losing to Lazy at small
//! top-K.

use crate::doc::Document;
use crate::indexes::{clear_index_table, fetch_if_valid, IndexKind, LookupHit, SecondaryIndex};
use ldbpp_common::coding::{decode_fixed64, put_fixed64};
use ldbpp_common::Result;
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::{Env, IoStats};
use std::sync::Arc;

/// Stand-alone composite-key index.
pub struct CompositeIndex {
    attr: String,
    table: Arc<Db>,
}

impl CompositeIndex {
    /// Open the index table under `path`.
    pub fn open(
        env: Arc<dyn Env>,
        path: &str,
        attr: &str,
        base: &DbOptions,
    ) -> Result<CompositeIndex> {
        let opts = DbOptions {
            indexed_attrs: Vec::new(),
            extractor: None,
            merge_operator: None,
            ..base.clone()
        };
        Ok(CompositeIndex {
            attr: attr.to_string(),
            table: Arc::new(Db::open(env, path, opts)?),
        })
    }

    /// The underlying index table (exposed for experiments).
    pub fn table(&self) -> &Arc<Db> {
        &self.table
    }

    fn composite_key(value: &AttrValue, pk: &[u8]) -> Vec<u8> {
        let mut key = value.encode_composite();
        key.extend_from_slice(pk);
        key
    }

    /// Scan index entries with `lo ≤ secondary ≤ hi`, returning
    /// `(secondary, pk, seq)` candidates from **all** levels.
    ///
    /// Streams through a bounded [`Db::range_iter`]: index files outside
    /// `[lo, successor(hi)]` are never opened and the merge stops at the
    /// range end, so the scan cost tracks the posting range, not the table.
    fn scan(&self, lo: &AttrValue, hi: &AttrValue) -> Result<Vec<(AttrValue, Vec<u8>, u64)>> {
        let lo_key = lo.encode_composite();
        let mut it = match prefix_successor(hi.encode_composite()) {
            // `successor(hi‖…)` over-approximates the inclusive bound on
            // full composite keys; the exact `av > hi` check below trims
            // the at-most-one surplus key.
            Some(end) => self.table.range_iter(&lo_key, &end)?,
            None => {
                // All-0xFF prefix: no finite successor, scan unbounded.
                let mut it = self.table.resolved_iter()?;
                it.seek(&lo_key);
                it
            }
        };
        let mut out = Vec::new();
        while let Some((key, _seq, value)) = it.next_entry()? {
            let (av, pk) = AttrValue::decode_composite(&key)?;
            if av > *hi {
                break;
            }
            if value.len() != 8 {
                continue; // malformed entry; skip defensively
            }
            out.push((av, pk.to_vec(), decode_fixed64(&value)));
        }
        Ok(out)
    }

    fn resolve(
        &self,
        primary: &Db,
        mut candidates: Vec<(AttrValue, Vec<u8>, u64)>,
        k: Option<usize>,
        pred: impl Fn(&Document) -> bool,
    ) -> Result<Vec<LookupHit>> {
        // Unlike Lazy, the candidates only become time-ordered after the
        // full scan; sort by recency, then validate until K hits. A pk can
        // appear under several attribute values (stale composite entries
        // from updates); only its newest candidate may produce a hit.
        candidates.sort_by_key(|c| std::cmp::Reverse(c.2));
        let mut hits = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for (_av, pk, seq) in candidates {
            if k.is_some_and(|k| hits.len() >= k) {
                break;
            }
            if !seen.insert(pk.clone()) {
                continue;
            }
            if let Some(doc) = fetch_if_valid(primary, &pk, &pred)? {
                hits.push(LookupHit { key: pk, seq, doc });
            }
        }
        Ok(hits)
    }
}

/// Smallest byte string strictly greater than every string that starts
/// with `prefix` (`None` when the prefix is all `0xFF` — no successor).
fn prefix_successor(mut prefix: Vec<u8>) -> Option<Vec<u8>> {
    while let Some(last) = prefix.last_mut() {
        if *last == 0xFF {
            prefix.pop();
        } else {
            *last += 1;
            return Some(prefix);
        }
    }
    None
}

impl SecondaryIndex for CompositeIndex {
    fn attr(&self) -> &str {
        &self.attr
    }

    fn kind(&self) -> IndexKind {
        IndexKind::CompositeStandalone
    }

    fn on_put(&self, _primary: &Db, pk: &[u8], doc: &Document, seq: u64) -> Result<()> {
        let Some(value) = doc.attr(&self.attr) else {
            return Ok(());
        };
        let mut seq_bytes = Vec::with_capacity(8);
        put_fixed64(&mut seq_bytes, seq);
        self.table
            .put(&Self::composite_key(&value, pk), &seq_bytes)?;
        Ok(())
    }

    fn on_delete(
        &self,
        _primary: &Db,
        pk: &[u8],
        old_doc: Option<&Document>,
        _seq: u64,
    ) -> Result<()> {
        // "A DEL operation inserts the composite key with a deletion marker
        // in [the] index table": an LSM tombstone on the composite key.
        let Some(value) = old_doc.and_then(|d| d.attr(&self.attr)) else {
            return Ok(());
        };
        self.table.delete(&Self::composite_key(&value, pk))?;
        Ok(())
    }

    fn lookup(&self, primary: &Db, value: &AttrValue, k: Option<usize>) -> Result<Vec<LookupHit>> {
        let candidates = self.scan(value, value)?;
        self.resolve(primary, candidates, k, |d| {
            d.attr(&self.attr).as_ref() == Some(value)
        })
    }

    fn range_lookup(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        let candidates = self.scan(lo, hi)?;
        let (lo, hi) = (lo.clone(), hi.clone());
        self.resolve(primary, candidates, k, move |d| match d.attr(&self.attr) {
            Some(v) => lo <= v && v <= hi,
            None => false,
        })
    }

    fn table_bytes(&self) -> u64 {
        self.table.table_bytes()
    }

    fn index_stats(&self) -> Option<Arc<IoStats>> {
        Some(self.table.stats())
    }

    fn flush(&self) -> Result<()> {
        self.table.flush()
    }

    fn wait_for_background_idle(&self) -> Result<()> {
        self.table.wait_for_background_idle()
    }

    fn needs_backfill(&self) -> bool {
        // Never written: no sequence was ever assigned to this table.
        self.table.last_sequence() == 0
    }

    fn clear(&self) -> Result<usize> {
        clear_index_table(&self.table)
    }

    fn check_integrity(
        &self,
        primary: &Db,
        report: &mut ldbpp_lsm::check::IntegrityReport,
    ) -> Result<()> {
        use ldbpp_lsm::check::CheckCode;
        let ctx = format!("{} index '{}'", self.kind(), self.attr);
        report.merge(&ctx, self.table.check_integrity());
        // Cross-check: every live composite entry must reference a primary
        // key with some record. Deleted entries are LSM tombstones in the
        // index table itself (invisible here); predicted-sequence entries
        // stranded by a crash before the primary write are tolerated.
        let primary_last = primary.last_sequence();
        // Sound only while the primary never erased a key's full history
        // at the base level (see `check_posting_table` for the argument).
        let strict = primary.erased_keys() == 0;
        let mut it = self.table.resolved_iter()?;
        it.seek_to_first();
        while let Some((key, _seq, value)) = it.next_entry()? {
            let Ok((av, pk)) = AttrValue::decode_composite(&key) else {
                report.push(
                    CheckCode::TableUnreadable,
                    format!("{ctx}: undecodable composite key {key:02x?}"),
                );
                continue;
            };
            if value.len() != 8 {
                report.push(
                    CheckCode::TableUnreadable,
                    format!(
                        "{ctx}: entry {av:?}→{:?} has a {}-byte value, want 8",
                        String::from_utf8_lossy(pk),
                        value.len()
                    ),
                );
                continue;
            }
            let seq = decode_fixed64(&value);
            if !strict || seq > primary_last {
                continue;
            }
            if primary.newest_record(pk)?.is_none() {
                report.push(
                    CheckCode::DanglingIndexEntry,
                    format!(
                        "{ctx}: entry {av:?}→{:?} (seq {seq}) references a \
                         primary key with no record",
                        String::from_utf8_lossy(pk)
                    ),
                );
            }
        }
        Ok(())
    }

    fn reconcile_dangling(&self, primary: &Db) -> Result<usize> {
        // Composite entries are individually addressable, so a stranded
        // entry is removed with an ordinary LSM tombstone on its composite
        // key; a later re-insert writes a newer entry that shadows it.
        // Collect-then-apply keeps the scan independent of the deletes.
        let mut stranded = Vec::new();
        let mut it = self.table.resolved_iter()?;
        it.seek_to_first();
        while let Some((key, _seq, value)) = it.next_entry()? {
            // Undecodable or malformed entries are the checker's
            // department; recovery only touches well-formed live entries.
            let Ok((_av, pk)) = AttrValue::decode_composite(&key) else {
                continue;
            };
            if value.len() == 8 && primary.newest_record(pk)?.is_none() {
                stranded.push(key);
            }
        }
        let removed = stranded.len();
        for key in stranded {
            self.table.delete(&key)?;
        }
        Ok(removed)
    }
}
