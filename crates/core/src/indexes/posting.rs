//! Posting lists serialized as JSON arrays (paper §4.1: "Posting lists can
//! be serialized as a single JSON array").
//!
//! Each entry is `[pk, seq]` for an insertion or `[pk, seq, 1]` for a
//! deletion marker ("DEL ... maintains a deletion marker which is used
//! during merge in compaction to remove the deleted entry"). Lists are kept
//! ordered by sequence number, newest first, so a top-K read needs only a
//! K-prefix.

use ldbpp_common::json::Value;
use ldbpp_common::{Error, Result};

/// One posting-list entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Primary key (UTF-8; posting-list indexes require text keys).
    pub pk: Vec<u8>,
    /// Sequence number of the write that created this entry.
    pub seq: u64,
    /// True for deletion markers.
    pub deleted: bool,
}

impl Posting {
    /// An insertion entry.
    pub fn insert(pk: impl Into<Vec<u8>>, seq: u64) -> Posting {
        Posting {
            pk: pk.into(),
            seq,
            deleted: false,
        }
    }

    /// A deletion marker.
    pub fn delete(pk: impl Into<Vec<u8>>, seq: u64) -> Posting {
        Posting {
            pk: pk.into(),
            seq,
            deleted: true,
        }
    }
}

/// Serialize a posting list to its JSON representation.
pub fn encode_postings(list: &[Posting]) -> Result<Vec<u8>> {
    let mut items = Vec::with_capacity(list.len());
    for p in list {
        let pk = std::str::from_utf8(&p.pk)
            .map_err(|_| Error::invalid("posting-list indexes require UTF-8 primary keys"))?;
        let mut entry = vec![Value::str(pk), Value::Int(p.seq as i64)];
        if p.deleted {
            entry.push(Value::Int(1));
        }
        items.push(Value::Array(entry));
    }
    Ok(Value::Array(items).to_json().into_bytes())
}

/// Parse a JSON posting list.
pub fn decode_postings(bytes: &[u8]) -> Result<Vec<Posting>> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| Error::corruption("posting list not UTF-8"))?;
    let value = Value::parse(text)?;
    let items = value
        .as_array()
        .ok_or_else(|| Error::corruption("posting list not an array"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let entry = item
            .as_array()
            .ok_or_else(|| Error::corruption("posting entry not an array"))?;
        if entry.len() < 2 || entry.len() > 3 {
            return Err(Error::corruption("posting entry arity"));
        }
        let pk = entry[0]
            .as_str()
            .ok_or_else(|| Error::corruption("posting pk not a string"))?;
        let seq = entry[1]
            .as_int()
            .ok_or_else(|| Error::corruption("posting seq not an int"))?;
        if seq < 0 {
            return Err(Error::corruption("negative posting seq"));
        }
        let deleted = match entry.get(2) {
            None => false,
            Some(v) => v.as_int() == Some(1),
        };
        out.push(Posting {
            pk: pk.as_bytes().to_vec(),
            seq: seq as u64,
            deleted,
        });
    }
    Ok(out)
}

/// Fold several posting lists, **newest list first**, into one list sorted
/// newest-first with one entry per primary key (the newest wins). When
/// `keep_markers` is false, deletion markers are dropped from the output
/// (safe once nothing older can exist underneath).
pub fn fold_postings(lists: &[Vec<Posting>], keep_markers: bool) -> Vec<Posting> {
    let mut out: Vec<Posting> = Vec::new();
    let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    for list in lists {
        for p in list {
            if seen.insert(p.pk.clone()) {
                out.push(p.clone());
            }
        }
    }
    out.sort_by_key(|p| std::cmp::Reverse(p.seq));
    if !keep_markers {
        out.retain(|p| !p.deleted);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let list = vec![
            Posting::insert("t9", 9),
            Posting::insert("t5", 5),
            Posting::delete("t3", 3),
        ];
        let bytes = encode_postings(&list).unwrap();
        assert_eq!(
            std::str::from_utf8(&bytes).unwrap(),
            r#"[["t9",9],["t5",5],["t3",3,1]]"#
        );
        assert_eq!(decode_postings(&bytes).unwrap(), list);
    }

    #[test]
    fn empty_list() {
        let bytes = encode_postings(&[]).unwrap();
        assert_eq!(decode_postings(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn rejects_non_utf8_pk() {
        assert!(encode_postings(&[Posting::insert(vec![0xff, 0xfe], 1)]).is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            &b"{}"[..],
            b"[1]",
            b"[[1,2]]",
            b"[[\"pk\"]]",
            b"[[\"pk\",\"x\"]]",
            b"[[\"pk\",-4]]",
            b"[[\"pk\",1,2,3]]",
        ] {
            assert!(decode_postings(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn fold_newest_wins_per_pk() {
        let newer = vec![Posting::insert("a", 9), Posting::insert("b", 8)];
        let older = vec![Posting::insert("a", 3), Posting::insert("c", 2)];
        let folded = fold_postings(&[newer, older], true);
        assert_eq!(
            folded,
            vec![
                Posting::insert("a", 9),
                Posting::insert("b", 8),
                Posting::insert("c", 2)
            ]
        );
    }

    #[test]
    fn fold_deletion_markers() {
        let newer = vec![Posting::delete("a", 9)];
        let older = vec![Posting::insert("a", 3), Posting::insert("b", 2)];
        let kept = fold_postings(&[newer.clone(), older.clone()], true);
        assert_eq!(kept, vec![Posting::delete("a", 9), Posting::insert("b", 2)]);
        let dropped = fold_postings(&[newer, older], false);
        assert_eq!(dropped, vec![Posting::insert("b", 2)]);
    }

    #[test]
    fn fold_reinsert_after_delete() {
        // pk re-inserted after deletion: the newest (insert) wins.
        let newest = vec![Posting::insert("a", 15)];
        let middle = vec![Posting::delete("a", 10)];
        let oldest = vec![Posting::insert("a", 5)];
        let folded = fold_postings(&[newest, middle, oldest], true);
        assert_eq!(folded, vec![Posting::insert("a", 15)]);
    }
}
