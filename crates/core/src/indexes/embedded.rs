//! The Embedded Index (paper §3): no separate index structure.
//!
//! Secondary lookups scan the primary table level by level, pruning data
//! blocks with the in-memory per-block bloom filters and zone maps that the
//! table builder embedded into every SSTable. Matches are validated with
//! `GetLite` — a metadata-only check for newer versions above the match's
//! level — so a hit costs no extra data-block I/O (the record itself was
//! already read while scanning its block).
//!
//! For the memtable, an in-memory B-tree on `(attr value, pk)` is
//! maintained on every write and pruned down to the still-in-memory
//! entries whenever a memtable reaches L0 (SSTable filters take over from
//! there; with background flushes the entries frozen in the immutable
//! memtable stay until their flush installs).

use crate::doc::Document;
use crate::indexes::{IndexKind, LookupHit, SecondaryIndex};
use crate::topk::TopK;
use ldbpp_common::Result;
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::db::Db;
use ldbpp_lsm::env::IoStats;
use ldbpp_lsm::ikey::{compare_internal, parse_internal_key, ValueType};
use ldbpp_lsm::table::ReadPurpose;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

struct MemIndex {
    generation: u64,
    /// (encoded attr value, pk) → seq of the insertion.
    map: BTreeMap<(Vec<u8>, Vec<u8>), u64>,
}

/// How Embedded-Index candidates are checked for staleness (an ablation
/// of the paper's §3 `GetLite` optimization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmbeddedValidation {
    /// The paper's `GetLite` (metadata-only, no data-block I/O), with a
    /// confirming newest-version probe when it answers "maybe newer" —
    /// bloom false positives then cost one extra read instead of silently
    /// dropping a valid result. This is the default.
    #[default]
    GetLiteConfirmed,
    /// The paper's `GetLite` verbatim: purely in-memory, so a bloom false
    /// positive *invalidates a valid match* (bounded by the filter's
    /// false-positive rate). Cheapest; slightly lossy.
    GetLiteOnly,
    /// Validate every candidate with a full newest-version probe (what a
    /// regular GET would do) — the unoptimized baseline the paper compares
    /// `GetLite` against ("we do not need to perform disk I/O, which a
    /// regular GET operation would do").
    FullGet,
}

/// The embedded (bloom filter + zone map) secondary index.
///
/// Concurrency note: the memtable-side B-tree is updated *after* the
/// primary write returns, so a lookup racing a put from another thread may
/// not yet see that put's newest version (bounded staleness, never
/// corruption). Writes from the observing thread are always visible.
pub struct EmbeddedIndex {
    attr: String,
    validation: EmbeddedValidation,
    mem: Mutex<MemIndex>,
}

struct Candidate {
    pk: Vec<u8>,
    doc: Document,
}

impl EmbeddedIndex {
    /// Create the in-memory side of an embedded index on `attr`. The
    /// on-disk side lives inside the primary table's SSTables, so the
    /// primary [`Db`] must have been opened with `attr` in
    /// `DbOptions::indexed_attrs`.
    pub fn new(attr: &str) -> EmbeddedIndex {
        EmbeddedIndex::with_validation(attr, EmbeddedValidation::default())
    }

    /// Like [`EmbeddedIndex::new`] with an explicit validation mode.
    pub fn with_validation(attr: &str, validation: EmbeddedValidation) -> EmbeddedIndex {
        EmbeddedIndex {
            attr: attr.to_string(),
            validation,
            mem: Mutex::new(MemIndex {
                generation: 0,
                map: BTreeMap::new(),
            }),
        }
    }

    fn sync_generation(&self, primary: &Db) {
        let gen = primary.mem_generation();
        let mut mem = self.mem.lock();
        if mem.generation != gen {
            // Entries at or below the flushed watermark are covered by the
            // SSTable-side filters now; anything newer is still in the
            // active (or frozen) memtable and must be kept — with
            // background flushes, writes keep landing while a freeze is in
            // flight.
            let flushed = primary.flushed_through();
            mem.map.retain(|_, seq| *seq > flushed);
            mem.generation = gen;
        }
    }

    /// Memtable-side candidates with encoded attr value in
    /// `[lo_enc, hi_enc]`, validated against the newest memtable version.
    /// Every admitted pk is recorded in `admitted` so the SSTable scan can
    /// skip it: with background flushes the same record can be installed
    /// as an L0 file between this pass and the version snapshot, and
    /// admitting both copies would return a duplicate hit.
    fn mem_candidates(
        &self,
        primary: &Db,
        lo_enc: &[u8],
        hi_enc: &[u8],
        heap: &mut TopK<Candidate>,
        admitted: &mut HashSet<Vec<u8>>,
    ) -> Result<()> {
        self.sync_generation(primary);
        let mem = self.mem.lock();
        let start = (lo_enc.to_vec(), Vec::new());
        for ((enc, pk), &seq) in mem.map.range(start..) {
            if enc.as_slice() > hi_enc {
                break;
            }
            if !heap.would_admit(seq) {
                continue;
            }
            // Valid iff this is still the newest version of pk (the
            // memtable is the newest source, so checking it suffices).
            match primary.mem_newest(pk) {
                Some((ValueType::Value, newest_seq)) if newest_seq == seq => {}
                _ => continue,
            }
            let Some(bytes) = primary.get(pk)? else {
                continue;
            };
            let doc = Document::parse(&bytes)?;
            if heap.add(
                seq,
                Candidate {
                    pk: pk.clone(),
                    doc,
                },
            ) {
                admitted.insert(pk.clone());
            }
        }
        Ok(())
    }

    /// The level-by-level scan shared by LOOKUP and RANGELOOKUP
    /// (Algorithms 5 and 8). `point` enables bloom-filter pruning (equality
    /// probes only); zone maps prune in both modes.
    fn scan(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
        point: bool,
    ) -> Result<Vec<LookupHit>> {
        let mut heap: TopK<Candidate> = TopK::new(k);
        let mut from_mem: HashSet<Vec<u8>> = HashSet::new();
        self.mem_candidates(
            primary,
            &lo.encode(),
            &hi.encode(),
            &mut heap,
            &mut from_mem,
        )?;
        // The memtable is "level −1": stop early if already satisfied.
        if heap.is_full() {
            return Ok(finish(heap));
        }

        let version = primary.current_version();
        let stats = primary.stats();
        for level in 0..version.num_levels() {
            if version.files[level].is_empty() {
                continue;
            }
            for file in &version.files[level] {
                // File-level zone map from the version metadata: prune the
                // whole file without opening it.
                if let Some(zone) = file.file_zone(&self.attr) {
                    if !zone.overlaps(lo, hi) {
                        IoStats::add(&stats.file_zonemap_prunes, 1);
                        continue;
                    }
                }
                let table = primary.open_table(file)?;
                // Versions of one pk are contiguous in the file, newest
                // first; only the first version encountered counts. A
                // candidate whose pk also appears at the tail of the
                // previous (possibly pruned) block has a newer version
                // there, detected via the in-memory index keys.
                let mut seen_in_file: HashSet<Vec<u8>> = HashSet::new();
                for b in 0..table.num_blocks() {
                    if !table.sec_zone_overlaps(&self.attr, lo, hi, b) {
                        continue;
                    }
                    if point && !table.sec_may_contain(&self.attr, lo, b) {
                        continue;
                    }
                    let block = table.read_data_block(b, ReadPurpose::Query)?;
                    let mut it = block.iter(compare_internal);
                    it.seek_to_first();
                    while it.valid() {
                        let (uk, seq, vtype) = parse_internal_key(it.key())?;
                        let uk_owned = uk.to_vec();
                        let first_version_in_file = seen_in_file.insert(uk_owned.clone())
                            && !(b > 0 && table.block_last_user_key(b - 1) == Some(uk));
                        if vtype != ValueType::Value {
                            it.next();
                            continue;
                        }
                        let Ok(doc) = Document::parse(it.value()) else {
                            it.next();
                            continue;
                        };
                        let matches = match doc.attr(&self.attr) {
                            Some(v) => *lo <= v && v <= *hi,
                            None => false,
                        };
                        if matches {
                            let uk_vec = uk_owned;
                            // `from_mem`: this record was already admitted
                            // from the memtable-side index; its memtable may
                            // since have been installed as an L0 file, so the
                            // copy found here is the same (pk, seq) again.
                            if first_version_in_file
                                && !from_mem.contains(uk)
                                && heap.would_admit(seq)
                            {
                                // GetLite: a newer version above this level
                                // invalidates the match — checked purely
                                // from in-memory metadata. Under the
                                // default mode a positive is confirmed with
                                // one real newest-version probe (counted
                                // I/O), so bloom false positives cannot
                                // drop valid results.
                                let confirm_newest = |uk: &[u8]| -> Result<bool> {
                                    Ok(!matches!(
                                        primary.newest_meta(uk)?,
                                        Some((ValueType::Value, s)) if s == seq
                                    ))
                                };
                                let maybe_newer = || {
                                    if level == 0 {
                                        primary.get_lite_l0(uk, file.number)
                                    } else {
                                        primary.get_lite(uk, level)
                                    }
                                };
                                let invalid = match self.validation {
                                    EmbeddedValidation::GetLiteConfirmed => {
                                        maybe_newer() && confirm_newest(uk)?
                                    }
                                    EmbeddedValidation::GetLiteOnly => maybe_newer(),
                                    EmbeddedValidation::FullGet => confirm_newest(uk)?,
                                };
                                if !invalid {
                                    heap.add(seq, Candidate { pk: uk_vec, doc });
                                }
                            }
                        }
                        it.next();
                    }
                }
            }
            // "We must always scan until the end of a level before
            // termination."
            if heap.is_full() {
                break;
            }
        }
        Ok(finish(heap))
    }
}

fn finish(heap: TopK<Candidate>) -> Vec<LookupHit> {
    heap.into_sorted()
        .into_iter()
        .map(|(seq, c)| LookupHit {
            key: c.pk,
            seq,
            doc: c.doc,
        })
        .collect()
}

impl SecondaryIndex for EmbeddedIndex {
    fn attr(&self) -> &str {
        &self.attr
    }

    fn kind(&self) -> IndexKind {
        IndexKind::Embedded
    }

    fn on_put(&self, primary: &Db, pk: &[u8], doc: &Document, seq: u64) -> Result<()> {
        // Called after the primary write, so the generation reflects any
        // flush that write triggered and the entry lands in the B-tree for
        // the *current* memtable.
        self.sync_generation(primary);
        if let Some(value) = doc.attr(&self.attr) {
            self.mem
                .lock()
                .map
                .insert((value.encode(), pk.to_vec()), seq);
        }
        Ok(())
    }

    fn on_delete(
        &self,
        primary: &Db,
        pk: &[u8],
        old_doc: Option<&Document>,
        _seq: u64,
    ) -> Result<()> {
        self.sync_generation(primary);
        if let Some(value) = old_doc.and_then(|d| d.attr(&self.attr)) {
            self.mem.lock().map.remove(&(value.encode(), pk.to_vec()));
        }
        Ok(())
    }

    fn lookup(&self, primary: &Db, value: &AttrValue, k: Option<usize>) -> Result<Vec<LookupHit>> {
        self.scan(primary, value, value, k, true)
    }

    fn range_lookup(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        self.scan(primary, lo, hi, k, false)
    }

    fn table_bytes(&self) -> u64 {
        0 // no separate structure — that is the point
    }

    fn index_stats(&self) -> Option<Arc<IoStats>> {
        None
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }

    fn on_primary_mem_flush(&self, generation: u64, flushed_through: u64) {
        let mut mem = self.mem.lock();
        if mem.generation != generation {
            mem.map.retain(|_, seq| *seq > flushed_through);
            mem.generation = generation;
        }
    }
}
