//! The Eager stand-alone index (paper §4.1.1).
//!
//! A separate LSM table maps each attribute value to its full posting list.
//! Every PUT does a read-modify-write of that list ("first reads the
//! current postings list of a_i, adds k to the list and writes back the
//! updated list") — which is why the paper finds its write amplification
//! explodes (`WAMF = PL_S · 2·(N+1)·(L−1)`).

use crate::doc::Document;
use crate::indexes::posting::{decode_postings, encode_postings, fold_postings, Posting};
use crate::indexes::{clear_index_table, fetch_if_valid, IndexKind, LookupHit, SecondaryIndex};
use crate::topk::TopK;
use ldbpp_common::Result;
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::{Env, IoStats};
use std::sync::Arc;

/// Stand-alone posting-list index with eager (in-place) updates.
pub struct EagerIndex {
    attr: String,
    table: Arc<Db>,
}

impl EagerIndex {
    /// Open the index table under `path` (its own LSM tree).
    pub fn open(env: Arc<dyn Env>, path: &str, attr: &str, base: &DbOptions) -> Result<EagerIndex> {
        let opts = DbOptions {
            indexed_attrs: Vec::new(),
            extractor: None,
            merge_operator: None,
            ..base.clone()
        };
        Ok(EagerIndex {
            attr: attr.to_string(),
            table: Arc::new(Db::open(env, path, opts)?),
        })
    }

    /// The underlying index table (exposed for experiments).
    pub fn table(&self) -> &Arc<Db> {
        &self.table
    }

    fn read_modify_write(
        &self,
        value: &AttrValue,
        update: impl FnOnce(Vec<Posting>) -> Vec<Posting>,
    ) -> Result<()> {
        let key = value.encode();
        let current = match self.table.get(&key)? {
            Some(bytes) => decode_postings(&bytes)?,
            None => Vec::new(),
        };
        let updated = update(current);
        self.table.put(&key, &encode_postings(&updated)?)?;
        Ok(())
    }
}

impl SecondaryIndex for EagerIndex {
    fn attr(&self) -> &str {
        &self.attr
    }

    fn kind(&self) -> IndexKind {
        IndexKind::EagerStandalone
    }

    fn on_put(&self, _primary: &Db, pk: &[u8], doc: &Document, seq: u64) -> Result<()> {
        let Some(value) = doc.attr(&self.attr) else {
            return Ok(());
        };
        let entry = Posting::insert(pk.to_vec(), seq);
        self.read_modify_write(&value, move |current| {
            // Keep at most one entry per primary key (the new one).
            fold_postings(&[vec![entry], current], true)
        })
    }

    fn on_delete(
        &self,
        _primary: &Db,
        pk: &[u8],
        old_doc: Option<&Document>,
        _seq: u64,
    ) -> Result<()> {
        // Eager updates can physically remove the key from the list.
        let Some(value) = old_doc.and_then(|d| d.attr(&self.attr)) else {
            return Ok(());
        };
        self.read_modify_write(&value, |mut current| {
            current.retain(|p| p.pk != pk);
            current
        })
    }

    fn lookup(&self, primary: &Db, value: &AttrValue, k: Option<usize>) -> Result<Vec<LookupHit>> {
        // One read suffices: the newest list shadows all older ones
        // (Algorithm 2).
        let postings = match self.table.get(&value.encode())? {
            Some(bytes) => decode_postings(&bytes)?,
            None => return Ok(Vec::new()),
        };
        let mut hits = Vec::new();
        for p in postings {
            if p.deleted {
                continue;
            }
            if let Some(doc) = fetch_if_valid(primary, &p.pk, |d| {
                d.attr(&self.attr).as_ref() == Some(value)
            })? {
                hits.push(LookupHit {
                    key: p.pk,
                    seq: p.seq,
                    doc,
                });
                if Some(hits.len()) == k {
                    break;
                }
            }
        }
        Ok(hits)
    }

    fn range_lookup(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>> {
        // Stream every matching list into a min-heap keyed by sequence
        // number (Algorithm: "retrieve primary keys from the posting list
        // ... add to the min-heap"). Each list is fully decoded by the
        // cursor anyway, so admitting all live entries costs no extra I/O
        // — and, unlike truncating each list to a K-prefix up front, it
        // cannot under-fill K when stale entries (updates that moved a key
        // to another value) occupy a list's newest slots: validation below
        // keeps drawing older candidates until K *valid* hits are found.
        // Index keys are exactly `AttrValue::encode`, so the encoded
        // bounds make a tight range for the lazy cursor: no list outside
        // `[lo, hi]` is decoded and no index file outside the range is
        // opened.
        // Seeded bug (model-checker fault injection, off by default):
        // bound the candidate heap at K before validation, re-creating
        // the under-fill described above.
        #[cfg(feature = "check")]
        let cap = if crate::model_bugs::eager_k_prefix() {
            k
        } else {
            None
        };
        #[cfg(not(feature = "check"))]
        let cap = None;
        let mut candidates: TopK<Vec<u8>> = TopK::new(cap);
        let mut it = self.table.range_iter(&lo.encode(), &hi.encode())?;
        while let Some((key, _seq, bytes)) = it.next_entry()? {
            let av = AttrValue::decode(&key)?;
            if av > *hi {
                break; // defensive: range_iter already ends at hi
            }
            for p in decode_postings(&bytes)? {
                if !p.deleted {
                    candidates.add(p.seq, p.pk);
                }
            }
        }
        let in_range = |d: &Document| match d.attr(&self.attr) {
            Some(v) => *lo <= v && v <= *hi,
            None => false,
        };
        let mut hits = Vec::new();
        // A pk can appear under several attribute values (stale entries
        // from updates); only its newest candidate may produce a hit.
        let mut seen = std::collections::HashSet::new();
        for (seq, pk) in candidates.into_sorted() {
            if Some(hits.len()) == k {
                break;
            }
            if !seen.insert(pk.clone()) {
                continue;
            }
            if let Some(doc) = fetch_if_valid(primary, &pk, in_range)? {
                hits.push(LookupHit { key: pk, seq, doc });
            }
        }
        Ok(hits)
    }

    fn table_bytes(&self) -> u64 {
        self.table.table_bytes()
    }

    fn index_stats(&self) -> Option<Arc<IoStats>> {
        Some(self.table.stats())
    }

    fn flush(&self) -> Result<()> {
        self.table.flush()
    }

    fn wait_for_background_idle(&self) -> Result<()> {
        self.table.wait_for_background_idle()
    }

    fn needs_backfill(&self) -> bool {
        // Never written: no sequence was ever assigned to this table.
        self.table.last_sequence() == 0
    }

    fn clear(&self) -> Result<usize> {
        clear_index_table(&self.table)
    }

    fn check_integrity(
        &self,
        primary: &Db,
        report: &mut ldbpp_lsm::check::IntegrityReport,
    ) -> Result<()> {
        crate::indexes::check_posting_table(self.kind(), &self.attr, &self.table, primary, report)
    }

    fn reconcile_dangling(&self, primary: &Db) -> Result<usize> {
        // Eager lists are read-modify-write anyway, so crash-stranded
        // entries can be physically dropped from each affected list.
        let mut removed = 0usize;
        for (key, dangling) in crate::indexes::collect_dangling_postings(&self.table, primary)? {
            let Some(bytes) = self.table.get(&key)? else {
                continue;
            };
            let mut list = decode_postings(&bytes)?;
            list.retain(|p| !dangling.contains(&p.pk));
            self.table.put(&key, &encode_postings(&list)?)?;
            removed += dangling.len();
        }
        Ok(removed)
    }
}
