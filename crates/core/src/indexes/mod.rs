//! The secondary-index implementations and their shared plumbing.

mod composite;
mod eager;
mod embedded;
mod lazy;
mod posting;

pub use composite::CompositeIndex;
pub use eager::EagerIndex;
pub use embedded::{EmbeddedIndex, EmbeddedValidation};
pub use lazy::{LazyIndex, PostingListMerge};
pub use posting::{decode_postings, encode_postings, Posting};

use crate::doc::Document;
use ldbpp_common::Result;
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::db::Db;
use ldbpp_lsm::env::IoStats;
use std::sync::Arc;

/// Which secondary-index technique an attribute uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No index: LOOKUP/RANGELOOKUP fall back to a full scan.
    None,
    /// Per-block bloom filters + zone maps embedded in the primary table
    /// (paper §3).
    Embedded,
    /// Stand-alone posting-list table, read-modify-write per write (§4.1.1).
    EagerStandalone,
    /// Stand-alone posting-list table, append-only fragments merged during
    /// compaction (§4.1.2).
    LazyStandalone,
    /// Stand-alone `(secondary ‖ primary)` composite-key table (§4.2).
    CompositeStandalone,
}

impl IndexKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::None => "NoIndex",
            IndexKind::Embedded => "Embedded",
            IndexKind::EagerStandalone => "Eager",
            IndexKind::LazyStandalone => "Lazy",
            IndexKind::CompositeStandalone => "Composite",
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so width/alignment format specs work.
        f.pad(self.name())
    }
}

/// One result of a LOOKUP / RANGELOOKUP: the record plus its insertion
/// sequence number (the recency key for top-K).
#[derive(Debug, Clone, PartialEq)]
pub struct LookupHit {
    /// Primary key.
    pub key: Vec<u8>,
    /// Sequence number the record was written at.
    pub seq: u64,
    /// The record.
    pub doc: Document,
}

/// The common interface all four index implementations provide.
///
/// `on_put` / `on_delete` run inside the write path after the primary-table
/// write; `seq` is the sequence number the primary write was assigned, so
/// postings and composite entries carry the global recency clock.
pub trait SecondaryIndex: Send + Sync {
    /// The indexed attribute.
    fn attr(&self) -> &str;
    /// Which technique this is.
    fn kind(&self) -> IndexKind;
    /// Maintain the index for a PUT of `doc` at `pk`.
    fn on_put(&self, primary: &Db, pk: &[u8], doc: &Document, seq: u64) -> Result<()>;
    /// Maintain the index for a DEL of `pk` whose latest record was
    /// `old_doc` (None when the key did not exist).
    fn on_delete(
        &self,
        primary: &Db,
        pk: &[u8],
        old_doc: Option<&Document>,
        seq: u64,
    ) -> Result<()>;
    /// `LOOKUP(A, a, K)`: the K most recent valid records with
    /// `val(A) = a` (K = None ⇒ all).
    fn lookup(&self, primary: &Db, value: &AttrValue, k: Option<usize>) -> Result<Vec<LookupHit>>;
    /// `RANGELOOKUP(A, a, b, K)`: the K most recent valid records with
    /// `a ≤ val(A) ≤ b`.
    fn range_lookup(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>>;
    /// Bytes of any stand-alone index table (0 for the Embedded Index).
    fn table_bytes(&self) -> u64;
    /// I/O counters of the stand-alone index table, if one exists.
    fn index_stats(&self) -> Option<Arc<IoStats>>;
    /// Flush any stand-alone index table's memtable.
    fn flush(&self) -> Result<()>;
    /// Block until any stand-alone index table's background worker is idle
    /// (no-op for in-memory-only indexes and in foreground mode).
    fn wait_for_background_idle(&self) -> Result<()> {
        Ok(())
    }
    /// Notification that a primary memtable reached L0 (`generation` is
    /// the new [`Db::mem_generation`], `flushed_through` the new
    /// [`Db::flushed_through`] watermark); the Embedded Index prunes its
    /// memtable-side B-tree down to the entries still in memory.
    fn on_primary_mem_flush(&self, _generation: u64, _flushed_through: u64) {}
    /// True when the index's persistent structure has never been written
    /// and should be rebuilt from the primary table (see
    /// [`crate::SecondaryDb::backfill_indexes`]).
    fn needs_backfill(&self) -> bool {
        false
    }
}

/// Fetch `pk` from the primary table and keep it only if `pred` holds on
/// the parsed document — the stand-alone indexes' validity check ("we make
/// sure val(A_i) = a for each entry ... as there could be invalid keys in
/// the postings list caused by updates on the data table").
pub(crate) fn fetch_if_valid(
    primary: &Db,
    pk: &[u8],
    pred: impl Fn(&Document) -> bool,
) -> Result<Option<Document>> {
    match primary.get(pk)? {
        None => Ok(None),
        Some(bytes) => {
            let doc = Document::parse(&bytes)?;
            Ok(if pred(&doc) { Some(doc) } else { None })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(IndexKind::Embedded.name(), "Embedded");
        assert_eq!(IndexKind::EagerStandalone.to_string(), "Eager");
        assert_eq!(IndexKind::LazyStandalone.name(), "Lazy");
        assert_eq!(IndexKind::CompositeStandalone.name(), "Composite");
        assert_eq!(IndexKind::None.name(), "NoIndex");
    }
}
