//! The secondary-index implementations and their shared plumbing.

mod composite;
mod eager;
mod embedded;
mod lazy;
mod posting;

pub use composite::CompositeIndex;
pub use eager::EagerIndex;
pub use embedded::{EmbeddedIndex, EmbeddedValidation};
pub use lazy::{LazyIndex, PostingListMerge};
pub use posting::{decode_postings, encode_postings, Posting};

use crate::doc::Document;
use crate::indexes::posting::fold_postings;
use ldbpp_common::Result;
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::check::{CheckCode, IntegrityReport};
use ldbpp_lsm::db::Db;
use ldbpp_lsm::env::IoStats;
use std::sync::Arc;

/// Which secondary-index technique an attribute uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// No index: LOOKUP/RANGELOOKUP fall back to a full scan.
    None,
    /// Per-block bloom filters + zone maps embedded in the primary table
    /// (paper §3).
    Embedded,
    /// Stand-alone posting-list table, read-modify-write per write (§4.1.1).
    EagerStandalone,
    /// Stand-alone posting-list table, append-only fragments merged during
    /// compaction (§4.1.2).
    LazyStandalone,
    /// Stand-alone `(secondary ‖ primary)` composite-key table (§4.2).
    CompositeStandalone,
}

impl IndexKind {
    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::None => "NoIndex",
            IndexKind::Embedded => "Embedded",
            IndexKind::EagerStandalone => "Eager",
            IndexKind::LazyStandalone => "Lazy",
            IndexKind::CompositeStandalone => "Composite",
        }
    }
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so width/alignment format specs work.
        f.pad(self.name())
    }
}

/// One result of a LOOKUP / RANGELOOKUP: the record plus its insertion
/// sequence number (the recency key for top-K).
#[derive(Debug, Clone, PartialEq)]
pub struct LookupHit {
    /// Primary key.
    pub key: Vec<u8>,
    /// Sequence number the record was written at.
    pub seq: u64,
    /// The record.
    pub doc: Document,
}

/// The common interface all four index implementations provide.
///
/// `on_put` / `on_delete` run inside the write path after the primary-table
/// write; `seq` is the sequence number the primary write was assigned, so
/// postings and composite entries carry the global recency clock.
pub trait SecondaryIndex: Send + Sync {
    /// The indexed attribute.
    fn attr(&self) -> &str;
    /// Which technique this is.
    fn kind(&self) -> IndexKind;
    /// Maintain the index for a PUT of `doc` at `pk`.
    fn on_put(&self, primary: &Db, pk: &[u8], doc: &Document, seq: u64) -> Result<()>;
    /// Maintain the index for a DEL of `pk` whose latest record was
    /// `old_doc` (None when the key did not exist).
    fn on_delete(
        &self,
        primary: &Db,
        pk: &[u8],
        old_doc: Option<&Document>,
        seq: u64,
    ) -> Result<()>;
    /// `LOOKUP(A, a, K)`: the K most recent valid records with
    /// `val(A) = a` (K = None ⇒ all).
    fn lookup(&self, primary: &Db, value: &AttrValue, k: Option<usize>) -> Result<Vec<LookupHit>>;
    /// `RANGELOOKUP(A, a, b, K)`: the K most recent valid records with
    /// `a ≤ val(A) ≤ b`.
    fn range_lookup(
        &self,
        primary: &Db,
        lo: &AttrValue,
        hi: &AttrValue,
        k: Option<usize>,
    ) -> Result<Vec<LookupHit>>;
    /// Bytes of any stand-alone index table (0 for the Embedded Index).
    fn table_bytes(&self) -> u64;
    /// I/O counters of the stand-alone index table, if one exists.
    fn index_stats(&self) -> Option<Arc<IoStats>>;
    /// Flush any stand-alone index table's memtable.
    fn flush(&self) -> Result<()>;
    /// Block until any stand-alone index table's background worker is idle
    /// (no-op for in-memory-only indexes and in foreground mode).
    fn wait_for_background_idle(&self) -> Result<()> {
        Ok(())
    }
    /// Notification that a primary memtable reached L0 (`generation` is
    /// the new [`Db::mem_generation`], `flushed_through` the new
    /// [`Db::flushed_through`] watermark); the Embedded Index prunes its
    /// memtable-side B-tree down to the entries still in memory.
    fn on_primary_mem_flush(&self, _generation: u64, _flushed_through: u64) {}
    /// True when the index's persistent structure has never been written
    /// and should be rebuilt from the primary table (see
    /// [`crate::SecondaryDb::backfill_indexes`]).
    fn needs_backfill(&self) -> bool {
        false
    }
    /// Remove every persisted entry of a stand-alone index table in
    /// preparation for a full rebuild from the primary (see
    /// [`crate::SecondaryDb::rebuild_indexes`]). Clearing goes through
    /// ordinary deletes, so the rebuild that follows shadows any older
    /// on-disk state by sequence order. Returns the number of index keys
    /// cleared.
    ///
    /// Default: nothing persisted — the Embedded Index's structure lives
    /// inside primary SSTables and is regenerated by compaction.
    fn clear(&self) -> Result<usize> {
        Ok(0)
    }
    /// Fold this index's structural violations into `report`: the LSM
    /// checker over any stand-alone table, plus the cross-check that no
    /// live index entry references a primary key with no record at all.
    ///
    /// Two absences are deliberately tolerated (the documented
    /// crash-consistency contract): entries whose sequence exceeds the
    /// primary's last sequence are crash-stranded predictions from the
    /// index-first write path, and entries whose primary key still carries
    /// a tombstone are stale leftovers that read-time validation absorbs.
    /// The cross-check is further gated on [`Db::erased_keys`]` == 0`: once
    /// base-level compaction has discarded even one key's entire history,
    /// a stale posting from an update can legitimately outlive its primary
    /// key, so "no record at all" stops being evidence of corruption.
    ///
    /// Default: nothing to check (the Embedded Index has no structure of
    /// its own beyond the primary table, which is checked separately).
    fn check_integrity(&self, _primary: &Db, _report: &mut IntegrityReport) -> Result<()> {
        Ok(())
    }
    /// Remove index entries stranded by a crash: live entries whose primary
    /// key has *no record at all* (the index-first write path committed the
    /// index side, the primary write never landed, and no ack went out).
    ///
    /// Only sound right after recovery, before any new writes: with no
    /// in-flight writers, "no primary record" cannot be a transient state,
    /// and the caller additionally gates on [`Db::erased_keys`]` == 0`
    /// (once base-level compaction erased a key's history, an orphaned
    /// stale posting is legitimate, not crash garbage). Read-time
    /// validation already ignores these entries, so removal never changes
    /// query results — it only restores the invariant the strict
    /// [`SecondaryIndex::check_integrity`] cross-check verifies, which
    /// under concurrent group-commit writers cannot be recovered by
    /// sequence arithmetic alone (another writer may push the primary's
    /// last sequence past a stranded posting's predicted sequence).
    /// Returns the number of entries removed.
    ///
    /// Default: nothing persisted to reconcile (Embedded / None).
    fn reconcile_dangling(&self, _primary: &Db) -> Result<usize> {
        Ok(0)
    }
}

/// Shared [`SecondaryIndex::check_integrity`] body for the two
/// posting-list indexes (Eager and Lazy): run the LSM checker on the index
/// table, then verify every live posting references a primary key that has
/// *some* record (value or tombstone). Deletion markers and
/// crash-stranded predicted-sequence postings are skipped.
pub(crate) fn check_posting_table(
    kind: IndexKind,
    attr: &str,
    table: &Db,
    primary: &Db,
    report: &mut IntegrityReport,
) -> Result<()> {
    let ctx = format!("{kind} index '{attr}'");
    report.merge(&ctx, table.check_integrity());
    let primary_last = primary.last_sequence();
    // Once the primary has fully erased any key at the base level, a stale
    // posting (left behind by an update, then orphaned by a delete whose
    // tombstone was compacted away) is indistinguishable from corruption —
    // the dangling cross-check is only sound while nothing was ever erased.
    let strict = primary.erased_keys() == 0;
    let mut it = table.resolved_iter()?;
    it.seek_to_first();
    while let Some((key, _seq, value)) = it.next_entry()? {
        let postings = match posting::decode_postings(&value) {
            Ok(p) => p,
            Err(e) => {
                report.push(
                    CheckCode::TableUnreadable,
                    format!("{ctx}: undecodable posting list at key {key:02x?}: {e}"),
                );
                continue;
            }
        };
        // Fold to the newest posting per primary key: older entries are
        // shadowed and never consulted, so only the newest can dangle.
        for p in fold_postings(&[postings], true) {
            if !strict || p.deleted || p.seq > primary_last {
                continue;
            }
            if primary.newest_record(&p.pk)?.is_none() {
                report.push(
                    CheckCode::DanglingIndexEntry,
                    format!(
                        "{ctx}: posting {:?} (seq {}) references a primary key \
                         with no record",
                        String::from_utf8_lossy(&p.pk),
                        p.seq
                    ),
                );
            }
        }
    }
    Ok(())
}

/// Crash-stranded postings grouped by index key: `(encoded index key,
/// dangling pks)` pairs, as collected by [`collect_dangling_postings`].
pub(crate) type DanglingPostings = Vec<(Vec<u8>, Vec<Vec<u8>>)>;

/// Shared [`SecondaryIndex::reconcile_dangling`] scan for the two
/// posting-list indexes: the live postings (newest per primary key, as in
/// [`check_posting_table`]) whose primary key has no record at all,
/// grouped as `(encoded index key, dangling pks)`. Collect-then-apply —
/// the caller's fixups run only after the scan finishes, so the iterator
/// never races the writes it feeds.
pub(crate) fn collect_dangling_postings(table: &Db, primary: &Db) -> Result<DanglingPostings> {
    let mut out: DanglingPostings = Vec::new();
    let mut it = table.resolved_iter()?;
    it.seek_to_first();
    while let Some((key, _seq, value)) = it.next_entry()? {
        // Undecodable lists are the checker's department, not ours.
        let Ok(postings) = posting::decode_postings(&value) else {
            continue;
        };
        let mut dangling = Vec::new();
        for p in fold_postings(&[postings], true) {
            // No sequence exemption here (unlike the checker): recovery
            // runs single-threaded, so every live entry without a primary
            // record is un-acked crash garbage regardless of its seq.
            if !p.deleted && primary.newest_record(&p.pk)?.is_none() {
                dangling.push(p.pk);
            }
        }
        if !dangling.is_empty() {
            out.push((key, dangling));
        }
    }
    Ok(out)
}

/// Shared [`SecondaryIndex::clear`] body for the stand-alone indexes:
/// tombstone every live key of the index's own table. Collecting the keys
/// first keeps the scan independent of the deletes it feeds; the Lazy
/// index's merge-operand chains are cut the same way — a deletion marker
/// newer than every fragment ends operand collection at the boundary.
pub(crate) fn clear_index_table(table: &Db) -> Result<usize> {
    let mut keys = Vec::new();
    let mut it = table.resolved_iter()?;
    it.seek_to_first();
    while let Some((key, _seq, _value)) = it.next_entry()? {
        keys.push(key);
    }
    let cleared = keys.len();
    for key in keys {
        table.delete(&key)?;
    }
    Ok(cleared)
}

/// Fetch `pk` from the primary table and keep it only if `pred` holds on
/// the parsed document — the stand-alone indexes' validity check ("we make
/// sure val(A_i) = a for each entry ... as there could be invalid keys in
/// the postings list caused by updates on the data table").
pub(crate) fn fetch_if_valid(
    primary: &Db,
    pk: &[u8],
    pred: impl Fn(&Document) -> bool,
) -> Result<Option<Document>> {
    match primary.get(pk)? {
        None => Ok(None),
        Some(bytes) => {
            let doc = Document::parse(&bytes)?;
            Ok(if pred(&doc) { Some(doc) } else { None })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names() {
        assert_eq!(IndexKind::Embedded.name(), "Embedded");
        assert_eq!(IndexKind::EagerStandalone.to_string(), "Eager");
        assert_eq!(IndexKind::LazyStandalone.name(), "Lazy");
        assert_eq!(IndexKind::CompositeStandalone.name(), "Composite");
        assert_eq!(IndexKind::None.name(), "NoIndex");
    }
}
