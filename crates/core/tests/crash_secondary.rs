//! Crash-recovery harness for `SecondaryDb`: all five index techniques.
//!
//! A scripted PUT/DELETE workload over a small attribute domain runs against
//! a [`FaultEnv`]; for every I/O-operation index the filesystem is frozen
//! mid-write, deep-cloned, and reopened cold. After recovery:
//!
//! * the primary table holds exactly the acknowledged operations (plus, at
//!   most, the single in-flight operation the crash interrupted — deletes
//!   go primary-first, so a crash between the primary delete and the index
//!   maintenance legitimately leaves the delete durable but unacked);
//! * every index answers `LOOKUP` and `RANGELOOKUP` **identically to a
//!   model rebuilt from the recovered primary** — stale entries must
//!   validate away, and a primary-visible document must never be missing
//!   from an index answer (a false negative is permanent data loss);
//! * the reopened database accepts new writes and indexes them.
//!
//! Each index kind is swept in both foreground and background mode; set
//! `CRASH_SWEEP_FULL=1` to sweep every operation index instead of the
//! capped default.

use ldbpp_common::json::Value;
use ldbpp_core::{Document, IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::db::DbOptions;
use ldbpp_lsm::env::{FaultEnv, MemEnv};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

const ATTR: &str = "Color";

const ALL_KINDS: [IndexKind; 5] = [
    IndexKind::Embedded,
    IndexKind::EagerStandalone,
    IndexKind::LazyStandalone,
    IndexKind::CompositeStandalone,
    IndexKind::None,
];

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum Op {
    /// `Put(pk, color, salt)` — upsert document `pk` with `Color = color`.
    Put(usize, usize, usize),
    Del(usize),
    Flush,
    Compact,
}

fn pk(i: usize) -> String {
    format!("pk{}", i % 6)
}

fn color(c: usize) -> Value {
    Value::str(format!("c{}", c % 4))
}

fn doc(c: usize, salt: usize) -> Document {
    let mut d = Document::new();
    d.set(ATTR, color(c));
    d.set("Salt", Value::Int(salt as i64));
    d.set("Pad", Value::str("y".repeat(40)));
    d
}

fn script(len: usize, seed: u64) -> Vec<Op> {
    let mut x = seed;
    let mut next = move |m: u64| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (x >> 33) % m
    };
    (0..len)
        .map(|i| match next(10) {
            0..=6 => Op::Put(next(6) as usize, next(4) as usize, i),
            7 => Op::Del(next(6) as usize),
            8 => Op::Flush,
            _ => Op::Compact,
        })
        .collect()
}

/// Primary-table model: pk → (color index, salt).
type Model = BTreeMap<String, (usize, usize)>;

fn apply(model: &mut Model, op: &Op) {
    match op {
        Op::Put(k, c, salt) => {
            model.insert(pk(*k), (*c % 4, *salt));
        }
        Op::Del(k) => {
            model.remove(&pk(*k));
        }
        Op::Flush | Op::Compact => {}
    }
}

fn opts(background: bool) -> SecondaryDbOptions {
    let mut base = DbOptions::small();
    base.write_buffer_size = 1536;
    base.max_file_size = 1024;
    base.l0_compaction_trigger = 2;
    base.background_work = background;
    SecondaryDbOptions {
        base,
        ..Default::default()
    }
}

fn open_db(
    env: Arc<MemEnv>,
    kind: IndexKind,
    background: bool,
) -> ldbpp_common::Result<SecondaryDb> {
    open_db_fault(FaultEnv::new(env), kind, background)
}

fn open_db_fault(
    env: Arc<FaultEnv>,
    kind: IndexKind,
    background: bool,
) -> ldbpp_common::Result<SecondaryDb> {
    SecondaryDb::open(env, "db", opts(background), &[(ATTR, kind)])
}

fn sweep_points(total: u64) -> Vec<u64> {
    let full = std::env::var("CRASH_SWEEP_FULL").is_ok_and(|v| v == "1");
    let cap: u64 = 250;
    if full || total <= cap {
        return (0..total).collect();
    }
    let dense = 32.min(total);
    let mut points: Vec<u64> = (0..dense).collect();
    let step = ((total - dense) / (cap - dense)).max(1);
    let mut k = dense;
    while k < total {
        points.push(k);
        k += step;
    }
    points
}

// ---------------------------------------------------------------------------
// One run, one check
// ---------------------------------------------------------------------------

struct RunResult {
    image: Arc<MemEnv>,
    /// Fold of the acknowledged operations.
    acked: Model,
    /// Fold of the acked operations plus the first failed one — the
    /// in-flight state a crash can legitimately persist.
    with_inflight: Model,
    total_ops: u64,
}

fn run_once(ops: &[Op], kind: IndexKind, background: bool, crash_at: Option<u64>) -> RunResult {
    let mem = MemEnv::new();
    let fenv = FaultEnv::new(mem.clone());
    if let Some(k) = crash_at {
        fenv.set_crash_point(k);
    }
    let mut acked = Model::new();
    let mut with_inflight: Option<Model> = None;
    let db = open_db_fault(fenv.clone(), kind, background);
    if let Ok(db) = &db {
        for op in ops {
            let ok = match op {
                Op::Put(k, c, salt) => db.put(pk(*k), &doc(*c, *salt)).is_ok(),
                Op::Del(k) => db.delete(pk(*k)).is_ok(),
                // Maintenance ops don't change contents and carry no
                // durability promise — keep them out of ack tracking.
                Op::Flush => {
                    let _ = db.flush();
                    continue;
                }
                Op::Compact => {
                    let _ = db.primary().compact();
                    continue;
                }
            };
            if ok {
                assert!(
                    with_inflight.is_none(),
                    "op acked after an earlier crash-failed op — acks must form a prefix"
                );
                apply(&mut acked, op);
            } else if with_inflight.is_none() {
                let mut m = acked.clone();
                apply(&mut m, op);
                with_inflight = Some(m);
            }
        }
    }
    drop(db); // joins background workers before the image is frozen
    RunResult {
        image: mem.deep_clone(),
        with_inflight: with_inflight.unwrap_or_else(|| acked.clone()),
        acked,
        total_ops: fenv.op_count(),
    }
}

fn model_doc_matches(doc: &Document, (c, salt): (usize, usize)) -> bool {
    doc.get(ATTR) == Some(&color(c)) && doc.get("Salt") == Some(&Value::Int(salt as i64))
}

/// Reopen the crashed image and verify every recovery invariant.
fn check_recovery(run: &RunResult, kind: IndexKind, context: &str) {
    let db = open_db(run.image.deep_clone(), kind, false)
        .unwrap_or_else(|e| panic!("reopen must succeed ({context}): {e}"));

    // -- Structure: primary and every index table pass the invariant
    //    catalogue, including the index→primary dangling cross-check. --
    let report = db.check_integrity();
    assert!(
        report.is_clean(),
        "integrity violations after recovery ({context}):\n{report}"
    );

    // -- Primary: exactly the acked fold, or acked + the in-flight op. --
    let mut recovered = Model::new();
    {
        let mut it = db.primary().resolved_iter().expect("resolved_iter");
        it.seek_to_first();
        while let Some((k, _seq, v)) = it.next_entry().expect("scan recovered primary") {
            let d = Document::parse(&v).expect("recovered value must parse");
            let c = (0..4)
                .find(|c| d.get(ATTR) == Some(&color(*c)))
                .unwrap_or_else(|| panic!("unknown color in recovered doc ({context})"));
            let salt = match d.get("Salt") {
                Some(Value::Int(s)) => *s as usize,
                other => panic!("bad Salt {other:?} ({context})"),
            };
            recovered.insert(String::from_utf8(k).unwrap(), (c, salt));
        }
    }
    assert!(
        recovered == run.acked || recovered == run.with_inflight,
        "recovered primary is neither the acked fold nor acked+inflight \
         ({context})\n got: {recovered:?}\n acked: {:?}\n with_inflight: {:?}",
        run.acked,
        run.with_inflight
    );

    // -- Indexes: identical answers to a model over the recovered primary. --
    for c in 0..4 {
        let expect: BTreeSet<String> = recovered
            .iter()
            .filter(|(_, (rc, _))| *rc == c)
            .map(|(k, _)| k.clone())
            .collect();
        let hits = db
            .lookup(ATTR, &color(c), None)
            .unwrap_or_else(|e| panic!("lookup c{c} failed ({context}): {e}"));
        let got: BTreeSet<String> = hits
            .iter()
            .map(|h| String::from_utf8(h.key.clone()).unwrap())
            .collect();
        assert_eq!(got.len(), hits.len(), "duplicate lookup hits ({context})");
        assert_eq!(got, expect, "LOOKUP(c{c}) diverges from model ({context})");
        for h in &hits {
            assert!(
                model_doc_matches(
                    &h.doc,
                    recovered[&String::from_utf8(h.key.clone()).unwrap()]
                ),
                "lookup returned a stale document ({context})"
            );
        }
        // Top-1 must come from the same answer set.
        let top = db.lookup(ATTR, &color(c), Some(1)).unwrap();
        assert_eq!(top.len(), expect.len().min(1));
        for h in &top {
            assert!(got.contains(&String::from_utf8(h.key.clone()).unwrap()));
        }
    }

    // RANGELOOKUP over the middle of the domain: c1..=c2.
    let expect: BTreeSet<String> = recovered
        .iter()
        .filter(|(_, (rc, _))| *rc == 1 || *rc == 2)
        .map(|(k, _)| k.clone())
        .collect();
    let got: BTreeSet<String> = db
        .range_lookup(ATTR, &color(1), &color(2), None)
        .unwrap_or_else(|e| panic!("range_lookup failed ({context}): {e}"))
        .into_iter()
        .map(|h| String::from_utf8(h.key).unwrap())
        .collect();
    assert_eq!(
        got, expect,
        "RANGELOOKUP(c1..=c2) diverges from model ({context})"
    );

    // -- Usability: new writes are accepted and indexed. --
    db.put("fresh", &doc(3, 9999)).expect("post-recovery put");
    let hits = db.lookup(ATTR, &color(3), None).unwrap();
    assert!(
        hits.iter().any(|h| h.key == b"fresh"),
        "post-recovery write not indexed ({context})"
    );
}

fn crash_sweep(kind: IndexKind, background: bool) {
    let full = std::env::var("CRASH_SWEEP_FULL").is_ok_and(|v| v == "1");
    let ops = script(if full { 60 } else { 24 }, 0xFEEDBEEF);
    let probe = run_once(&ops, kind, background, None);
    check_recovery(&probe, kind, &format!("{kind:?} no crash"));
    assert!(
        probe.total_ops > 60,
        "workload too small to exercise crash recovery ({} ops)",
        probe.total_ops
    );
    for k in sweep_points(probe.total_ops) {
        let run = run_once(&ops, kind, background, Some(k));
        check_recovery(
            &run,
            kind,
            &format!(
                "{kind:?} crash at op {k}/{} bg={background}",
                probe.total_ops
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// The ten sweeps: five index techniques × two modes
// ---------------------------------------------------------------------------

#[test]
fn crash_sweep_embedded() {
    crash_sweep(IndexKind::Embedded, false);
}

#[test]
fn crash_sweep_embedded_background() {
    crash_sweep(IndexKind::Embedded, true);
}

#[test]
fn crash_sweep_eager() {
    crash_sweep(IndexKind::EagerStandalone, false);
}

#[test]
fn crash_sweep_eager_background() {
    crash_sweep(IndexKind::EagerStandalone, true);
}

#[test]
fn crash_sweep_lazy() {
    crash_sweep(IndexKind::LazyStandalone, false);
}

#[test]
fn crash_sweep_lazy_background() {
    crash_sweep(IndexKind::LazyStandalone, true);
}

#[test]
fn crash_sweep_composite() {
    crash_sweep(IndexKind::CompositeStandalone, false);
}

#[test]
fn crash_sweep_composite_background() {
    crash_sweep(IndexKind::CompositeStandalone, true);
}

#[test]
fn crash_sweep_unindexed() {
    crash_sweep(IndexKind::None, false);
}

#[test]
fn crash_sweep_unindexed_background() {
    crash_sweep(IndexKind::None, true);
}

// ---------------------------------------------------------------------------
// Pinned regressions
// ---------------------------------------------------------------------------

/// Pinned regression: a crash splitting a single PUT must never produce a
/// false negative.
///
/// `SecondaryDb::put` used to write the primary before the stand-alone
/// indexes; a crash in between persisted the document with no index entry —
/// a *permanent* false negative (validation can absorb extra index entries,
/// never missing ones). Maintenance now goes index-first: the crash window
/// leaves only validatable false positives. This sweeps every operation
/// index of one PUT and demands any primary-visible document be found
/// through the index.
#[test]
fn regression_crash_inside_put_never_loses_index_entry() {
    for kind in [
        IndexKind::EagerStandalone,
        IndexKind::LazyStandalone,
        IndexKind::CompositeStandalone,
    ] {
        let probe = run_once(&[Op::Put(0, 2, 7)], kind, false, None);
        for k in 0..probe.total_ops {
            let run = run_once(&[Op::Put(0, 2, 7)], kind, false, Some(k));
            let db = open_db(run.image.deep_clone(), kind, false)
                .unwrap_or_else(|e| panic!("reopen ({kind:?} k={k}): {e}"));
            if db.get(pk(0)).unwrap().is_some() {
                let hits = db.lookup(ATTR, &color(2), None).unwrap();
                assert!(
                    hits.iter().any(|h| h.key == pk(0).as_bytes()),
                    "{kind:?}: primary-visible put missing from index after crash at op {k}"
                );
            }
        }
    }
}

/// Pinned regression: a crash splitting a DELETE leaves at worst a stale
/// index entry, which validation must absorb — never a resurrected document.
#[test]
fn regression_crash_inside_delete_leaves_no_ghosts() {
    for kind in [
        IndexKind::EagerStandalone,
        IndexKind::LazyStandalone,
        IndexKind::CompositeStandalone,
    ] {
        let ops = [Op::Put(0, 2, 7), Op::Flush, Op::Del(0)];
        let probe = run_once(&ops, kind, false, None);
        for k in 0..probe.total_ops {
            let run = run_once(&ops, kind, false, Some(k));
            let db = open_db(run.image.deep_clone(), kind, false)
                .unwrap_or_else(|e| panic!("reopen ({kind:?} k={k}): {e}"));
            let present = db.get(pk(0)).unwrap().is_some();
            let hits = db.lookup(ATTR, &color(2), None).unwrap();
            let found = hits.iter().any(|h| h.key == pk(0).as_bytes());
            assert_eq!(
                found, present,
                "{kind:?}: index and primary disagree about a deleted doc \
                 after crash at op {k}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property-based crashes
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random workload, random crash point, random index technique, both
    /// modes: full primary/secondary equivalence after recovery.
    #[test]
    fn prop_random_crash_keeps_indexes_equivalent(
        seed in any::<u64>(),
        len in 6usize..20,
        crash_fraction in 0.0f64..1.0,
        kind_sel in 0usize..5,
        background in any::<bool>(),
    ) {
        let kind = ALL_KINDS[kind_sel];
        let ops = script(len, seed);
        let probe = run_once(&ops, kind, background, None);
        let k = ((probe.total_ops as f64) * crash_fraction) as u64;
        let run = run_once(&ops, kind, background, Some(k));
        check_recovery(
            &run,
            kind,
            &format!("prop {kind:?} seed={seed} len={len} k={k} bg={background}"),
        );
    }
}
