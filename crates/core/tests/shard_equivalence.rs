//! Scatter-gather correctness: a hash-partitioned [`SecondaryDb`] must be
//! observationally identical to a single-engine one.
//!
//! The property: feed the same single-threaded op stream to a 1-shard and
//! an N-shard database, then every `LOOKUP`, `RANGELOOKUP`, `GET`, and
//! `scan_primary` returns *identical* results — same hits, same order,
//! same K-bounding, and (because all shards allocate from one
//! [`ldbpp_lsm::db::SharedSequence`] clock) the same sequence numbers —
//! for all five index techniques. Plus deterministic unit tests for the
//! layout descriptor's hard-error contract.

use ldbpp_common::json::Value;
use ldbpp_core::doc::Document;
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::db::DbOptions;
use ldbpp_lsm::env::{Env, FaultEnv, MemEnv};
use proptest::collection::vec;
use proptest::prelude::*;
use std::sync::Arc;

const ALL_KINDS: [IndexKind; 5] = [
    IndexKind::None,
    IndexKind::Embedded,
    IndexKind::EagerStandalone,
    IndexKind::LazyStandalone,
    IndexKind::CompositeStandalone,
];

#[derive(Debug, Clone)]
enum Op {
    /// Put `key-{0}` with attribute value `{1}`.
    Put(u8, i64),
    /// Delete `key-{0}` (may or may not exist).
    Delete(u8),
    /// Flush memtables (and stand-alone index tables) everywhere.
    Flush,
}

/// Small pools so overwrites, deletes, and multi-hit postings all occur.
fn op_strategy() -> impl Strategy<Value = Vec<Op>> {
    vec(
        prop_oneof![
            6 => (0u8..24, 0i64..6).prop_map(|(k, v)| Op::Put(k, v)),
            2 => (0u8..24).prop_map(Op::Delete),
            1 => Just(Op::Flush),
        ],
        1..60,
    )
}

fn tiny_opts() -> DbOptions {
    let mut base = DbOptions::small();
    // Force flushes/compactions inside the op stream, not just at the end.
    base.write_buffer_size = 1536;
    base.max_file_size = 1024;
    base.l0_compaction_trigger = 2;
    base
}

fn open_with_shards(shards: usize, kind: IndexKind) -> SecondaryDb {
    SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: tiny_opts(),
            shards,
            ..Default::default()
        },
        &[("A", kind)],
    )
    .expect("open")
}

fn apply(db: &SecondaryDb, ops: &[Op]) {
    for op in ops {
        match op {
            Op::Put(k, v) => {
                let mut doc = Document::new();
                doc.set("A", Value::Int(*v));
                doc.set("Pad", Value::str(format!("padding-{k}-{v}")));
                db.put(format!("key-{k:03}"), &doc).expect("put");
            }
            Op::Delete(k) => db.delete(format!("key-{k:03}")).expect("delete"),
            Op::Flush => db.flush().expect("flush"),
        }
    }
}

/// Assert every read API agrees between the two databases.
fn assert_equivalent(kind: IndexKind, one: &SecondaryDb, many: &SecondaryDb) {
    for k in [None, Some(1), Some(3), Some(100)] {
        for v in 0i64..6 {
            let a = one.lookup("A", &Value::Int(v), k).expect("lookup/1");
            let b = many.lookup("A", &Value::Int(v), k).expect("lookup/N");
            assert_eq!(a, b, "{kind}: LOOKUP(A={v}, k={k:?}) diverged");
        }
        for (lo, hi) in [(0i64, 5), (1, 3), (2, 2)] {
            let a = one
                .range_lookup("A", &Value::Int(lo), &Value::Int(hi), k)
                .expect("range/1");
            let b = many
                .range_lookup("A", &Value::Int(lo), &Value::Int(hi), k)
                .expect("range/N");
            assert_eq!(a, b, "{kind}: RANGELOOKUP([{lo},{hi}], k={k:?}) diverged");
        }
    }
    for limit in [None, Some(5)] {
        let a = one
            .scan_primary(b"key-", b"key-999", limit)
            .expect("scan/1");
        let b = many
            .scan_primary(b"key-", b"key-999", limit)
            .expect("scan/N");
        assert_eq!(a, b, "{kind}: scan_primary(limit={limit:?}) diverged");
    }
    for key_id in 0u8..24 {
        let pk = format!("key-{key_id:03}");
        assert_eq!(
            one.get(&pk).expect("get/1"),
            many.get(&pk).expect("get/N"),
            "{kind}: GET({pk}) diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn sharded_reads_match_single_engine(ops in op_strategy()) {
        for kind in ALL_KINDS {
            let one = open_with_shards(1, kind);
            let many = open_with_shards(3, kind);
            apply(&one, &ops);
            apply(&many, &ops);
            assert_equivalent(kind, &one, &many);
            // Both settle clean: the structural catalogue holds per shard.
            let report = many.check_integrity();
            prop_assert!(report.is_clean(), "{kind}: sharded db dirty: {report}");
        }
    }
}

// -- layout descriptor contract ---------------------------------------------

#[test]
fn sharded_db_persists_across_reopen() {
    let env: Arc<dyn Env> = MemEnv::new();
    let opts = || SecondaryDbOptions {
        base: tiny_opts(),
        shards: 2,
        ..Default::default()
    };
    {
        let db = SecondaryDb::open(
            env.clone(),
            "db",
            opts(),
            &[("A", IndexKind::CompositeStandalone)],
        )
        .expect("open");
        for i in 0..40i64 {
            let mut doc = Document::new();
            doc.set("A", Value::Int(i % 4));
            db.put(format!("k{i}"), &doc).expect("put");
        }
        db.flush().expect("flush");
        assert_eq!(db.shard_count(), 2);
    }
    let db = SecondaryDb::open(env, "db", opts(), &[("A", IndexKind::CompositeStandalone)])
        .expect("reopen");
    let hits = db.lookup("A", &Value::Int(1), None).expect("lookup");
    assert_eq!(hits.len(), 10);
    assert!(db.check_integrity().is_clean());
}

#[test]
fn shard_count_mismatch_is_a_hard_error() {
    let env: Arc<dyn Env> = MemEnv::new();
    let opts = |shards| SecondaryDbOptions {
        base: tiny_opts(),
        shards,
        ..Default::default()
    };
    SecondaryDb::open(env.clone(), "db", opts(2), &[]).expect("create 2-shard db");
    for wrong in [1usize, 3, 4] {
        let err = SecondaryDb::open(env.clone(), "db", opts(wrong), &[])
            .err()
            .expect("reopen with wrong shard count must fail");
        let msg = err.to_string();
        assert!(
            msg.contains("shard layout mismatch"),
            "unexpected error: {msg}"
        );
    }
    // The recorded count still works.
    SecondaryDb::open(env, "db", opts(2), &[]).expect("correct count reopens");
}

#[test]
fn unsharded_db_refuses_sharded_open() {
    let env: Arc<dyn Env> = MemEnv::new();
    let opts = |shards| SecondaryDbOptions {
        base: tiny_opts(),
        shards,
        ..Default::default()
    };
    {
        let db = SecondaryDb::open(env.clone(), "db", opts(1), &[]).expect("open legacy");
        let mut doc = Document::new();
        doc.set("A", Value::Int(1));
        db.put("k1", &doc).expect("put");
        db.flush().expect("flush");
    }
    // No LAYOUT descriptor is ever written at shards = 1.
    assert!(!env.exists("db/LAYOUT"));
    let err = SecondaryDb::open(env.clone(), "db", opts(2), &[])
        .err()
        .expect("sharded open over an unsharded db must fail");
    assert!(err.to_string().contains("unsharded"), "got: {err}");
    // And the refusal left the database untouched.
    let db = SecondaryDb::open(env, "db", opts(1), &[]).expect("legacy reopen");
    assert!(db.get("k1").expect("get").is_some());
}

#[test]
fn corruption_is_confined_to_the_affected_shard() {
    let fault = FaultEnv::new(MemEnv::new());
    let env: Arc<dyn Env> = fault.clone();
    let opts = || SecondaryDbOptions {
        base: tiny_opts(),
        shards: 2,
        ..Default::default()
    };
    {
        let db = SecondaryDb::open(env.clone(), "db", opts(), &[]).expect("open");
        for i in 0..40i64 {
            let mut doc = Document::new();
            doc.set("A", Value::Int(i));
            db.put(format!("k{i}"), &doc).expect("put");
        }
        db.flush().expect("flush");
    }
    // Truncate a table file in shard 1's primary; shard 0 is untouched.
    let table = env
        .list("db/shard-1")
        .expect("list")
        .into_iter()
        .find(|n| n.ends_with(".ldb"))
        .expect("shard-1 has a flushed table");
    fault
        .truncate_file(&format!("db/shard-1/{table}"), 64)
        .expect("truncate");

    let db = SecondaryDb::open(env, "db", opts(), &[]).expect("reopen");
    // The damage is detected, and every violation is attributed to the
    // shard that holds it.
    let report = db.check_integrity();
    assert!(!report.is_clean(), "truncated table must be detected");
    for v in &report.violations {
        assert!(
            v.detail.starts_with("shard-1"),
            "violation leaked outside shard-1: {v}"
        );
    }
    // Keys routed to the healthy shard keep serving.
    let mut healthy_reads = 0;
    for i in 0..40i64 {
        let pk = format!("k{i}");
        if db.shard_of(&pk) == 0 {
            assert!(
                db.get(&pk).expect("healthy shard must serve").is_some(),
                "lost {pk} on the uncorrupted shard"
            );
            healthy_reads += 1;
        }
    }
    assert!(healthy_reads > 0, "degenerate routing: no keys on shard 0");
}

#[test]
fn writes_route_to_exactly_one_shard() {
    let db = open_with_shards(4, IndexKind::None);
    // Sequence numbers come from the shared clock: N single-threaded puts
    // allocate exactly 1..=N regardless of which shard each lands on.
    for i in 0..50i64 {
        let mut doc = Document::new();
        doc.set("A", Value::Int(i));
        let seq = db.put(format!("k{i}"), &doc).expect("put");
        assert_eq!(seq, (i + 1) as u64);
    }
    // Routing is total and stable, and with 50 keys over 4 shards every
    // shard almost surely holds something.
    let mut per_shard = vec![0usize; db.shard_count()];
    for i in 0..50i64 {
        let s = db.shard_of(format!("k{i}"));
        assert_eq!(s, db.shard_of(format!("k{i}")));
        per_shard[s] += 1;
    }
    assert_eq!(per_shard.iter().sum::<usize>(), 50);
    assert!(
        per_shard.iter().all(|&n| n > 0),
        "degenerate routing: {per_shard:?}"
    );
}
