//! Degraded scatter-gather reads (DESIGN.md §18): when a shard is
//! write-poisoned (its WAL append failed, setting the engine's sticky
//! fatal error), [`ReadMode::Degraded`] skips it and reports it in
//! [`Partial::failed_shards`] instead of failing the whole query, while
//! [`ReadMode::Strict`] keeps the historical all-or-nothing contract.

use std::sync::Arc;

use ldbpp_common::json::Value;
use ldbpp_core::secondary_db::{ReadMode, SecondaryDb, SecondaryDbOptions};
use ldbpp_core::{Document, IndexKind};
use ldbpp_lsm::db::DbOptions;
use ldbpp_lsm::env::{FaultEnv, FaultPlan, MemEnv};

const USERS: &str = "UserID";
const SCORE: &str = "Score";

fn open(shards: usize) -> (Arc<FaultEnv>, SecondaryDb) {
    let fault = FaultEnv::new(MemEnv::new());
    let db = SecondaryDb::open(
        fault.clone(),
        "db",
        SecondaryDbOptions {
            base: DbOptions::small(),
            shards,
            ..Default::default()
        },
        &[
            (USERS, IndexKind::LazyStandalone),
            (SCORE, IndexKind::CompositeStandalone),
        ],
    )
    .expect("open sharded db");
    (fault, db)
}

fn doc(user: &str, score: i64) -> Document {
    let mut d = Document::new();
    d.set(USERS, Value::str(user)).set(SCORE, Value::Int(score));
    d
}

/// Write `n` documents with a shared indexed value and return the keys
/// grouped by shard.
fn seed_keys(db: &SecondaryDb, n: usize) -> Vec<Vec<String>> {
    let mut by_shard = vec![Vec::new(); db.shard_count()];
    for i in 0..n {
        let key = format!("pk-{i:03}");
        db.put(key.as_bytes(), &doc("u1", i as i64)).expect("put");
        by_shard[db.shard_of(key.as_bytes())].push(key);
    }
    by_shard
}

/// Fail the next mutating I/O under `shard-{i}/`, then issue a write
/// routed there so the engine records its sticky fatal error. The
/// trailing slash keeps `shard-1/` from also matching the index
/// tables' `shard-1_idx_*` directories.
fn poison_shard(fault: &FaultEnv, db: &SecondaryDb, shard: usize) {
    fault.set_plan(FaultPlan {
        crash_at: Some(0),
        match_path: Some(format!("shard-{shard}/")),
        ..FaultPlan::default()
    });
    let key = (0..256)
        .map(|i| format!("poison-{i}"))
        .find(|k| db.shard_of(k.as_bytes()) == shard)
        .expect("a key routed to the target shard");
    let err = db.put(key.as_bytes(), &doc("ux", -1)).unwrap_err();
    assert!(err.is_io(), "poisoning write fails with Io: {err}");
    fault.clear_plan();
    let fatal = db.shard_primary(shard).expect("shard exists").fatal_error();
    assert!(fatal.is_some(), "the failed WAL append must stick");
}

#[test]
fn degraded_lookup_skips_the_poisoned_shard() {
    let (fault, db) = open(2);
    let by_shard = seed_keys(&db, 24);
    assert!(
        !by_shard[0].is_empty() && !by_shard[1].is_empty(),
        "seed keys must land on both shards"
    );
    poison_shard(&fault, &db, 1);

    // Strict reads keep serving: the data under the poison is intact.
    let strict = db
        .lookup_mode(USERS, &Value::str("u1"), None, ReadMode::Strict)
        .expect("strict lookup");
    assert_eq!(strict.value.len(), 24);
    assert!(strict.failed_shards.is_empty());
    assert!(strict.is_complete());

    // Degraded reads skip the poisoned shard and report it.
    let partial = db
        .lookup_mode(USERS, &Value::str("u1"), None, ReadMode::Degraded)
        .expect("degraded lookup");
    assert_eq!(partial.failed_shards, vec![1]);
    assert!(!partial.is_complete());
    let mut got: Vec<String> = partial
        .value
        .iter()
        .map(|h| String::from_utf8(h.key.clone()).expect("utf8 key"))
        .collect();
    got.sort();
    let mut want = by_shard[0].clone();
    want.sort();
    assert_eq!(got, want, "exactly the healthy shard's records survive");

    let stats = db.degraded_stats();
    assert_eq!(stats.degraded_reads, 1);
    assert_eq!(stats.failed_shard_reads, 1);
}

#[test]
fn degraded_range_lookup_and_scan_report_the_failed_shard() {
    let (fault, db) = open(2);
    let by_shard = seed_keys(&db, 24);
    poison_shard(&fault, &db, 1);

    let partial = db
        .range_lookup_mode(
            SCORE,
            &Value::Int(0),
            &Value::Int(1000),
            None,
            ReadMode::Degraded,
        )
        .expect("degraded range lookup");
    assert_eq!(partial.failed_shards, vec![1]);
    assert_eq!(partial.value.len(), by_shard[0].len());

    let scan = db
        .scan_primary_mode(
            b"pk-".as_ref(),
            b"pk-\xff".as_ref(),
            None,
            ReadMode::Degraded,
        )
        .expect("degraded scan");
    assert_eq!(scan.failed_shards, vec![1]);
    let mut got: Vec<String> = scan
        .value
        .iter()
        .map(|(k, _)| String::from_utf8(k.clone()).expect("utf8 key"))
        .collect();
    got.sort();
    let mut want = by_shard[0].clone();
    want.sort();
    assert_eq!(got, want, "keys routed to the failed shard are absent");

    // Strict variants still answer in full.
    let strict = db
        .scan_primary(b"pk-".as_ref(), b"pk-\xff".as_ref(), None)
        .expect("strict scan");
    assert_eq!(strict.len(), 24);

    let stats = db.degraded_stats();
    assert_eq!(stats.degraded_reads, 2);
    assert_eq!(stats.failed_shard_reads, 2);
}

#[test]
fn healthy_degraded_reads_are_complete_and_uncounted() {
    let (_fault, db) = open(2);
    seed_keys(&db, 12);

    let partial = db
        .lookup_mode(USERS, &Value::str("u1"), None, ReadMode::Degraded)
        .expect("degraded lookup on a healthy db");
    assert!(partial.is_complete());
    assert_eq!(partial.value.len(), 12);

    let stats = db.degraded_stats();
    assert_eq!(stats.degraded_reads, 0, "complete reads are not degraded");
    assert_eq!(stats.failed_shard_reads, 0);
}

#[test]
fn all_shards_failed_is_an_error_not_an_empty_success() {
    let (fault, db) = open(2);
    seed_keys(&db, 12);
    poison_shard(&fault, &db, 0);
    poison_shard(&fault, &db, 1);

    let err = db
        .lookup_mode(USERS, &Value::str("u1"), None, ReadMode::Degraded)
        .unwrap_err();
    assert!(
        err.is_io(),
        "with no healthy shard the first failure surfaces: {err}"
    );
}
