//! Mutation tests for the cross-table invariant: stand-alone index entries
//! must not reference primary keys with no record at all. Seeds ghost
//! entries directly into index tables (bypassing the write path, as a bug
//! in it would) and asserts `check_integrity` reports each with a precise
//! diagnostic — plus clean-database and erased-history-tolerance checks.

use ldbpp_common::coding::put_fixed64;
use ldbpp_common::json::Value;
use ldbpp_core::indexes::{CompositeIndex, EagerIndex, LazyIndex, SecondaryIndex};
use ldbpp_core::{CheckCode, Document, IndexKind, IntegrityReport, SecondaryDb};
use ldbpp_lsm::attr::AttrValue;
use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::MemEnv;
use std::sync::Arc;

fn doc(color: &str) -> Document {
    let mut d = Document::new();
    d.set("Color", Value::str(color));
    d
}

/// A primary table with one real record, `pk1`.
fn primary(env: Arc<MemEnv>) -> Db {
    let db = Db::open(env, "primary", DbOptions::small()).unwrap();
    db.put(b"pk1", b"{\"Color\":\"red\"}").unwrap();
    db
}

fn dangling_details(report: &IntegrityReport) -> Vec<&str> {
    report
        .violations
        .iter()
        .filter(|v| v.code == CheckCode::DanglingIndexEntry)
        .map(|v| v.detail.as_str())
        .collect()
}

#[test]
fn ghost_posting_in_eager_index_detected() {
    let env = MemEnv::new();
    let primary = primary(env.clone());
    let idx = EagerIndex::open(env, "idx", "Color", &DbOptions::small()).unwrap();
    idx.on_put(&primary, b"pk1", &doc("red"), 1).unwrap();
    // A posting for a primary key that was never written (sequence within
    // the primary's assigned range, so it is not a crash strand).
    idx.on_put(&primary, b"ghost", &doc("red"), 1).unwrap();

    let mut report = IntegrityReport::default();
    idx.check_integrity(&primary, &mut report).unwrap();
    let dangling = dangling_details(&report);
    assert_eq!(dangling.len(), 1, "{report}");
    assert!(dangling[0].contains("ghost"), "{report}");
    assert!(dangling[0].contains("Eager index 'Color'"), "{report}");
}

#[test]
fn ghost_posting_in_lazy_index_detected() {
    let env = MemEnv::new();
    let primary = primary(env.clone());
    let idx = LazyIndex::open(env, "idx", "Color", &DbOptions::small()).unwrap();
    idx.on_put(&primary, b"pk1", &doc("red"), 1).unwrap();
    idx.on_put(&primary, b"ghost", &doc("blue"), 1).unwrap();

    let mut report = IntegrityReport::default();
    idx.check_integrity(&primary, &mut report).unwrap();
    let dangling = dangling_details(&report);
    assert_eq!(dangling.len(), 1, "{report}");
    assert!(dangling[0].contains("ghost"), "{report}");
    assert!(dangling[0].contains("Lazy index 'Color'"), "{report}");
}

#[test]
fn ghost_entry_in_composite_index_detected() {
    let env = MemEnv::new();
    let primary = primary(env.clone());
    let idx = CompositeIndex::open(env, "idx", "Color", &DbOptions::small()).unwrap();
    idx.on_put(&primary, b"pk1", &doc("red"), 1).unwrap();
    // Forge a composite entry (secondary ‖ pk → seq) by hand.
    let mut key = AttrValue::str("blue").encode_composite();
    key.extend_from_slice(b"ghost");
    let mut seq_bytes = Vec::new();
    put_fixed64(&mut seq_bytes, 1);
    idx.table().put(&key, &seq_bytes).unwrap();

    let mut report = IntegrityReport::default();
    idx.check_integrity(&primary, &mut report).unwrap();
    let dangling = dangling_details(&report);
    assert_eq!(dangling.len(), 1, "{report}");
    assert!(dangling[0].contains("ghost"), "{report}");
    assert!(dangling[0].contains("Composite index 'Color'"), "{report}");
}

#[test]
fn tombstoned_primary_is_not_dangling() {
    // A stale posting whose primary key still carries a tombstone is the
    // normal aftermath of a delete — read-time validation absorbs it.
    let env = MemEnv::new();
    let primary = primary(env.clone());
    let idx = EagerIndex::open(env, "idx", "Color", &DbOptions::small()).unwrap();
    idx.on_put(&primary, b"pk1", &doc("red"), 1).unwrap();
    primary.put(b"pk2", b"{\"Color\":\"red\"}").unwrap();
    idx.on_put(&primary, b"pk2", &doc("red"), 2).unwrap();
    primary.delete(b"pk2").unwrap(); // tombstone stays; index not told

    let mut report = IntegrityReport::default();
    idx.check_integrity(&primary, &mut report).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn predicted_sequence_strand_is_not_dangling() {
    // Index-first write order means a crash can strand an entry whose
    // sequence the primary never assigned; the checker must tolerate it.
    let env = MemEnv::new();
    let primary = primary(env.clone());
    let idx = EagerIndex::open(env, "idx", "Color", &DbOptions::small()).unwrap();
    idx.on_put(
        &primary,
        b"stranded",
        &doc("red"),
        primary.last_sequence() + 1,
    )
    .unwrap();

    let mut report = IntegrityReport::default();
    idx.check_integrity(&primary, &mut report).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn dangling_check_disarms_after_history_erasure() {
    // Once base-level compaction discards a key's entire history, a stale
    // posting can legitimately reference a pk with no record: the strict
    // cross-check must disarm rather than cry corruption.
    let env = MemEnv::new();
    let primary = Db::open(
        env.clone(),
        "primary",
        DbOptions {
            auto_compact: false,
            ..DbOptions::small()
        },
    )
    .unwrap();
    let idx = EagerIndex::open(env, "idx", "Color", &DbOptions::small()).unwrap();

    primary.put(b"pk1", b"{\"Color\":\"red\"}").unwrap();
    idx.on_put(&primary, b"pk1", &doc("red"), 1).unwrap();
    // Update pk1 red→blue: the red posting goes stale (the write path only
    // touches the new value's list — the paper's lazy-cleanup contract).
    primary.put(b"pk1", b"{\"Color\":\"blue\"}").unwrap();
    idx.on_put(&primary, b"pk1", &doc("blue"), 2).unwrap();
    // Delete pk1 (the index only cleans the blue list), then compact the
    // tombstone away at the base level.
    primary.flush().unwrap();
    primary.delete(b"pk1").unwrap();
    idx.on_delete(&primary, b"pk1", Some(&doc("blue")), 3)
        .unwrap();
    primary.flush().unwrap();
    primary.major_compact().unwrap();
    assert!(primary.erased_keys() > 0);
    assert!(primary.newest_record(b"pk1").unwrap().is_none());

    // The red posting for pk1 now dangles — legitimately.
    let mut report = IntegrityReport::default();
    idx.check_integrity(&primary, &mut report).unwrap();
    assert!(report.is_clean(), "{report}");
}

#[test]
fn secondary_db_reports_ghost_through_facade() {
    // The SecondaryDb wrapper folds per-index findings into one report.
    let env = MemEnv::new();
    let open = |env: Arc<MemEnv>| {
        SecondaryDb::open(
            env,
            "sdb",
            ldbpp_core::SecondaryDbOptions {
                base: DbOptions::small(),
                ..Default::default()
            },
            &[("Color", IndexKind::EagerStandalone)],
        )
        .unwrap()
    };
    let db = open(env.clone());
    db.put("pk1", &doc("red")).unwrap();
    assert!(db.check_integrity().is_clean());
    drop(db);

    // Corrupt the Color index table between runs, behind the facade's
    // back, then reopen and ask the facade for a diagnosis.
    {
        let primary = Db::open(env.clone(), "sdb", DbOptions::small()).unwrap();
        let idx =
            EagerIndex::open(env.clone(), "sdb_idx_Color", "Color", &DbOptions::small()).unwrap();
        assert!(!idx.needs_backfill(), "wrong index directory name");
        idx.on_put(&primary, b"ghost", &doc("red"), 1).unwrap();
        idx.flush().unwrap();
    }
    let db = open(env);
    let report = db.check_integrity();
    assert!(report.has(CheckCode::DanglingIndexEntry), "{report}");
}
