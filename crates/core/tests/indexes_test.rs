//! Head-to-head correctness tests: all index techniques must return the
//! same answers as a brute-force model, across flushes, compactions,
//! updates and deletes.

use ldbpp_common::json::Value;
use ldbpp_core::{Document, IndexKind, SecondaryDb};
use ldbpp_lsm::db::DbOptions;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

fn tiny_opts() -> DbOptions {
    DbOptions {
        block_size: 512,
        write_buffer_size: 4 << 10,
        max_file_size: 2 << 10,
        base_level_bytes: 16 << 10,
        ..DbOptions::small()
    }
}

const ALL_KINDS: [IndexKind; 4] = [
    IndexKind::Embedded,
    IndexKind::EagerStandalone,
    IndexKind::LazyStandalone,
    IndexKind::CompositeStandalone,
];

fn tweet(user: usize, time: i64, text: &str) -> Document {
    let mut d = Document::new();
    d.set("UserID", Value::str(format!("u{user}")))
        .set("CreationTime", Value::Int(time))
        .set("Text", Value::str(text));
    d
}

fn open_with(kind: IndexKind) -> SecondaryDb {
    SecondaryDb::open_in_memory(tiny_opts(), &[("UserID", kind), ("CreationTime", kind)]).unwrap()
}

/// A brute-force reference: pk → (user, time, seq).
#[derive(Default)]
struct Model {
    rows: HashMap<String, (usize, i64, u64)>,
}

impl Model {
    fn put(&mut self, pk: &str, user: usize, time: i64, seq: u64) {
        self.rows.insert(pk.to_string(), (user, time, seq));
    }
    fn delete(&mut self, pk: &str) {
        self.rows.remove(pk);
    }
    fn lookup_user(&self, user: usize, k: Option<usize>) -> Vec<(String, u64)> {
        let mut hits: Vec<(String, u64)> = self
            .rows
            .iter()
            .filter(|(_, (u, _, _))| *u == user)
            .map(|(pk, (_, _, seq))| (pk.clone(), *seq))
            .collect();
        hits.sort_by_key(|h| std::cmp::Reverse(h.1));
        hits.truncate(k.unwrap_or(usize::MAX));
        hits
    }
    fn range_time(&self, lo: i64, hi: i64, k: Option<usize>) -> Vec<(String, u64)> {
        let mut hits: Vec<(String, u64)> = self
            .rows
            .iter()
            .filter(|(_, (_, t, _))| lo <= *t && *t <= hi)
            .map(|(pk, (_, _, seq))| (pk.clone(), *seq))
            .collect();
        hits.sort_by_key(|h| std::cmp::Reverse(h.1));
        hits.truncate(k.unwrap_or(usize::MAX));
        hits
    }
}

fn hit_keys(hits: &[ldbpp_core::LookupHit]) -> Vec<(String, u64)> {
    hits.iter()
        .map(|h| (String::from_utf8(h.key.clone()).unwrap(), h.seq))
        .collect()
}

#[test]
fn all_kinds_basic_lookup() {
    for kind in ALL_KINDS {
        let db = open_with(kind);
        for i in 0..200usize {
            db.put(format!("t{i:04}"), &tweet(i % 7, 1000 + i as i64, "hello"))
                .unwrap();
        }
        let hits = db.lookup("UserID", &Value::str("u3"), None).unwrap();
        let expect = (0..200).filter(|i| i % 7 == 3).count();
        assert_eq!(hits.len(), expect, "{kind}: all matches");
        // Newest first.
        for w in hits.windows(2) {
            assert!(w[0].seq > w[1].seq, "{kind}: ordering");
        }
        // Every hit really has the value.
        for h in &hits {
            assert_eq!(h.doc.get("UserID").unwrap().as_str(), Some("u3"));
        }
        // Top-K prefix.
        let top3 = db.lookup("UserID", &Value::str("u3"), Some(3)).unwrap();
        assert_eq!(hit_keys(&top3), hit_keys(&hits)[..3].to_vec(), "{kind}");
        // Absent value.
        assert!(db
            .lookup("UserID", &Value::str("nobody"), None)
            .unwrap()
            .is_empty());
    }
}

#[test]
fn all_kinds_survive_flush_and_compaction() {
    for kind in ALL_KINDS {
        let db = open_with(kind);
        let n = 1200usize;
        for i in 0..n {
            db.put(format!("t{i:05}"), &tweet(i % 25, 1000 + i as i64, "body"))
                .unwrap();
        }
        db.flush().unwrap();
        let counts = db.primary().level_file_counts();
        assert!(
            counts[1..].iter().sum::<usize>() > 0,
            "{kind}: deep levels exist {counts:?}"
        );
        let hits = db.lookup("UserID", &Value::str("u10"), None).unwrap();
        assert_eq!(hits.len(), n / 25, "{kind}");
        let top5 = db.lookup("UserID", &Value::str("u10"), Some(5)).unwrap();
        assert_eq!(hit_keys(&top5), hit_keys(&hits)[..5].to_vec(), "{kind}");
    }
}

#[test]
fn all_kinds_updates_invalidate_stale_entries() {
    for kind in ALL_KINDS {
        let db = open_with(kind);
        // t1 posted by u1, then "moves" to u2 (the paper's Example 3).
        db.put("t1", &tweet(1, 100, "v1")).unwrap();
        db.put("t2", &tweet(1, 101, "v1")).unwrap();
        db.put("t1", &tweet(2, 102, "v2")).unwrap();

        let u1 = db.lookup("UserID", &Value::str("u1"), None).unwrap();
        assert_eq!(
            hit_keys(&u1)
                .iter()
                .map(|(k, _)| k.clone())
                .collect::<Vec<_>>(),
            vec!["t2"],
            "{kind}: stale u1 entry for t1 must be filtered"
        );
        let u2 = db.lookup("UserID", &Value::str("u2"), None).unwrap();
        assert_eq!(u2.len(), 1, "{kind}");
        assert_eq!(u2[0].key, b"t1", "{kind}");
    }
}

#[test]
fn all_kinds_deletes_hide_records() {
    for kind in ALL_KINDS {
        let db = open_with(kind);
        for i in 0..50usize {
            db.put(format!("t{i:02}"), &tweet(1, i as i64, "x"))
                .unwrap();
        }
        for i in (0..50usize).step_by(2) {
            db.delete(format!("t{i:02}")).unwrap();
        }
        let hits = db.lookup("UserID", &Value::str("u1"), None).unwrap();
        assert_eq!(hits.len(), 25, "{kind}");
        for h in &hits {
            let id: usize = String::from_utf8(h.key[1..].to_vec())
                .unwrap()
                .parse()
                .unwrap();
            assert_eq!(id % 2, 1, "{kind}: deleted tweet {id} leaked");
        }
        // Deletes through a flush too.
        db.flush().unwrap();
        let hits = db.lookup("UserID", &Value::str("u1"), Some(10)).unwrap();
        assert_eq!(hits.len(), 10, "{kind}");
    }
}

#[test]
fn all_kinds_range_lookup_on_time() {
    for kind in ALL_KINDS {
        let db = open_with(kind);
        for i in 0..400usize {
            db.put(format!("t{i:04}"), &tweet(i % 5, 1000 + i as i64, "x"))
                .unwrap();
        }
        let hits = db
            .range_lookup("CreationTime", &Value::Int(1100), &Value::Int(1149), None)
            .unwrap();
        assert_eq!(hits.len(), 50, "{kind}");
        for h in &hits {
            let t = h.doc.get("CreationTime").unwrap().as_int().unwrap();
            assert!((1100..=1149).contains(&t), "{kind}");
        }
        for w in hits.windows(2) {
            assert!(w[0].seq > w[1].seq, "{kind}");
        }
        let top7 = db
            .range_lookup(
                "CreationTime",
                &Value::Int(1100),
                &Value::Int(1149),
                Some(7),
            )
            .unwrap();
        assert_eq!(hit_keys(&top7), hit_keys(&hits)[..7].to_vec(), "{kind}");
        // Empty range.
        assert!(db
            .range_lookup("CreationTime", &Value::Int(1), &Value::Int(2), None)
            .unwrap()
            .is_empty());
        // Inverted range rejected.
        assert!(db
            .range_lookup("CreationTime", &Value::Int(9), &Value::Int(1), None)
            .is_err());
    }
}

#[test]
fn randomized_model_equivalence() {
    // Random interleaving of puts/updates/deletes; every index kind must
    // agree with the brute-force model on every query.
    for kind in ALL_KINDS {
        let db = open_with(kind);
        let mut model = Model::default();
        let mut rng = StdRng::seed_from_u64(0x1337);
        for step in 0..1500usize {
            let op: f64 = rng.random();
            if op < 0.75 {
                let pk = format!("t{:03}", rng.random_range(0..300));
                let user = rng.random_range(0..8);
                let time = rng.random_range(0..500i64);
                let seq = db.put(&pk, &tweet(user, time, "body")).unwrap();
                model.put(&pk, user, time, seq);
            } else {
                let pk = format!("t{:03}", rng.random_range(0..300));
                db.delete(&pk).unwrap();
                model.delete(&pk);
            }
            if step % 250 == 249 {
                for user in 0..8 {
                    for k in [Some(1), Some(5), None] {
                        let got = db
                            .lookup("UserID", &Value::str(format!("u{user}")), k)
                            .unwrap();
                        let want = model.lookup_user(user, k);
                        assert_eq!(
                            hit_keys(&got),
                            want,
                            "{kind}: step {step} user u{user} k {k:?}"
                        );
                    }
                }
                for (lo, hi) in [(0i64, 499), (100, 150), (400, 450)] {
                    let got = db
                        .range_lookup("CreationTime", &Value::Int(lo), &Value::Int(hi), Some(10))
                        .unwrap();
                    let want = model.range_time(lo, hi, Some(10));
                    assert_eq!(hit_keys(&got), want, "{kind}: step {step} range {lo}..{hi}");
                }
            }
        }
    }
}

#[test]
fn no_index_fallback_scans() {
    let db = SecondaryDb::open_in_memory(tiny_opts(), &[("UserID", IndexKind::None)]).unwrap();
    for i in 0..300usize {
        db.put(format!("t{i:03}"), &tweet(i % 4, i as i64, "x"))
            .unwrap();
    }
    let hits = db.lookup("UserID", &Value::str("u2"), Some(5)).unwrap();
    assert_eq!(hits.len(), 5);
    for w in hits.windows(2) {
        assert!(w[0].seq > w[1].seq);
    }
    // Undeclared attribute errors.
    assert!(db.lookup("Nope", &Value::str("x"), None).is_err());
}

#[test]
fn mixed_index_kinds_coexist() {
    let db = SecondaryDb::open_in_memory(
        tiny_opts(),
        &[
            ("UserID", IndexKind::LazyStandalone),
            ("CreationTime", IndexKind::Embedded),
        ],
    )
    .unwrap();
    for i in 0..500usize {
        db.put(format!("t{i:03}"), &tweet(i % 6, 1000 + i as i64, "x"))
            .unwrap();
    }
    assert_eq!(db.index_kind("UserID"), IndexKind::LazyStandalone);
    assert_eq!(db.index_kind("CreationTime"), IndexKind::Embedded);
    assert_eq!(db.index_kind("Other"), IndexKind::None);
    let by_user = db.lookup("UserID", &Value::str("u2"), Some(3)).unwrap();
    assert_eq!(by_user.len(), 3);
    let by_time = db
        .range_lookup("CreationTime", &Value::Int(1200), &Value::Int(1210), None)
        .unwrap();
    assert_eq!(by_time.len(), 11);
}

#[test]
fn embedded_has_no_index_table_standalone_do() {
    for kind in ALL_KINDS {
        let db = open_with(kind);
        for i in 0..800usize {
            db.put(format!("t{i:04}"), &tweet(i % 10, i as i64, "abcdefgh"))
                .unwrap();
        }
        db.flush().unwrap();
        if kind == IndexKind::Embedded {
            assert_eq!(db.index_bytes(), 0, "{kind}");
        } else {
            assert!(db.index_bytes() > 0, "{kind}");
        }
        assert!(db.primary_bytes() > 0);
        assert_eq!(db.total_bytes(), db.primary_bytes() + db.index_bytes());
    }
}

#[test]
fn get_and_missing_attr_records() {
    let db = open_with(IndexKind::LazyStandalone);
    // A record lacking the indexed attribute is storable and findable by
    // primary key, and simply absent from the index.
    let mut d = Document::new();
    d.set("Text", Value::str("no user"));
    db.put("t0", &d).unwrap();
    db.put("t1", &tweet(1, 1, "has user")).unwrap();
    assert_eq!(db.get("t0").unwrap().unwrap(), d);
    assert!(db.get("missing").unwrap().is_none());
    let hits = db.lookup("UserID", &Value::str("u1"), None).unwrap();
    assert_eq!(hits.len(), 1);
}

#[test]
fn lookup_rejects_non_scalar_values() {
    let db = open_with(IndexKind::LazyStandalone);
    assert!(db.lookup("UserID", &Value::Array(vec![]), None).is_err());
    assert!(db.lookup("UserID", &Value::Null, None).is_err());
}

#[test]
fn embedded_validation_modes_agree_on_exactness() {
    use ldbpp_core::indexes::EmbeddedValidation;
    use ldbpp_core::SecondaryDbOptions;
    use ldbpp_lsm::env::MemEnv;

    // Build three identical datasets with heavy update churn, then compare
    // lookup results across validation modes.
    let build = |mode: EmbeddedValidation| {
        let db = SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base: tiny_opts(),
                embedded_validation: mode,
                ..Default::default()
            },
            &[("UserID", IndexKind::Embedded)],
        )
        .unwrap();
        for i in 0..900usize {
            db.put(format!("t{:03}", i % 300), &tweet(i % 9, i as i64, "x"))
                .unwrap();
        }
        db
    };
    let confirmed = build(EmbeddedValidation::GetLiteConfirmed);
    let full = build(EmbeddedValidation::FullGet);
    let lite = build(EmbeddedValidation::GetLiteOnly);
    for user in 0..9 {
        let v = Value::str(format!("u{user}"));
        let a = hit_keys(&confirmed.lookup("UserID", &v, None).unwrap());
        let b = hit_keys(&full.lookup("UserID", &v, None).unwrap());
        assert_eq!(a, b, "confirmed must equal the exact baseline (u{user})");
        // Pure GetLite may only lose results (bloom false positives), never
        // fabricate them.
        let c = hit_keys(&lite.lookup("UserID", &v, None).unwrap());
        for hit in &c {
            assert!(b.contains(hit), "GetLiteOnly fabricated {hit:?}");
        }
    }
}

#[test]
fn scan_primary_range() {
    let db = open_with(IndexKind::Embedded);
    for i in 0..200usize {
        db.put(format!("t{i:04}"), &tweet(i % 3, i as i64, "x"))
            .unwrap();
    }
    let rows = db.scan_primary("t0050", "t0059", None).unwrap();
    assert_eq!(rows.len(), 10);
    assert_eq!(rows[0].0, b"t0050");
    assert_eq!(rows[9].0, b"t0059");
    for w in rows.windows(2) {
        assert!(w[0].0 < w[1].0);
    }
    let limited = db.scan_primary("t0000", "t9999", Some(7)).unwrap();
    assert_eq!(limited.len(), 7);
    assert!(db.scan_primary("z", "a", None).is_err());
    // Deleted keys are skipped.
    db.delete("t0055").unwrap();
    let rows = db.scan_primary("t0050", "t0059", None).unwrap();
    assert_eq!(rows.len(), 9);
}

#[test]
fn conjunctive_lookup_intersects_predicates() {
    for kind in [IndexKind::LazyStandalone, IndexKind::Embedded] {
        let db =
            SecondaryDb::open_in_memory(tiny_opts(), &[("UserID", kind), ("CreationTime", kind)])
                .unwrap();
        // Users cycle mod 5, times cycle mod 7: each (user, time) pair is
        // rare, exercising the over-fetch loop.
        for i in 0..700usize {
            db.put(format!("t{i:04}"), &tweet(i % 5, (i % 7) as i64, "conj"))
                .unwrap();
        }
        let hits = db
            .lookup_all(
                &[
                    ("UserID", Value::str("u2")),
                    ("CreationTime", Value::Int(3)),
                ],
                Some(5),
            )
            .unwrap();
        assert_eq!(hits.len(), 5, "{kind}");
        for h in &hits {
            assert_eq!(h.doc.get("UserID").unwrap().as_str(), Some("u2"), "{kind}");
            assert_eq!(h.doc.get("CreationTime").unwrap().as_int(), Some(3));
        }
        for w in hits.windows(2) {
            assert!(w[0].seq > w[1].seq, "{kind}");
        }
        // Unbounded conjunction: exact count (i ≡ 2 mod 5 and ≡ 3 mod 7
        // ⇒ i ≡ 17 mod 35 ⇒ 20 of 700).
        let all = db
            .lookup_all(
                &[
                    ("UserID", Value::str("u2")),
                    ("CreationTime", Value::Int(3)),
                ],
                None,
            )
            .unwrap();
        assert_eq!(all.len(), 20, "{kind}");
        // Impossible conjunction.
        let none = db
            .lookup_all(
                &[("UserID", Value::str("u2")), ("UserID", Value::str("u3"))],
                None,
            )
            .unwrap();
        assert!(none.is_empty(), "{kind}");
        // Empty predicate list rejected.
        assert!(db.lookup_all(&[], None).is_err());
    }
}

mod io_shapes {
    //! The paper's core I/O mechanisms as executable assertions.
    use super::*;

    fn loaded(kind: IndexKind, n: usize) -> SecondaryDb {
        let db = open_with(kind);
        for i in 0..n {
            db.put(format!("t{i:05}"), &tweet(i % 40, 1000 + i as i64, "io"))
                .unwrap();
        }
        db.flush().unwrap();
        db
    }

    #[test]
    fn embedded_absent_value_reads_no_blocks() {
        let db = loaded(IndexKind::Embedded, 3000);
        let before = db.primary_io();
        // An absent value *inside* the zone-map range, so pruning falls
        // to the bloom filters.
        let hits = db.lookup("UserID", &Value::str("u20x"), None).unwrap();
        assert!(hits.is_empty());
        let io = db.primary_io().since(&before);
        // Bloom filters answer from memory; only false positives (~0.8 %
        // at 10 bits/key) cost a block read.
        assert!(io.bloom_checks > 200, "filters must have been probed");
        let fp_reads = io.block_reads as f64 / io.bloom_checks as f64;
        assert!(
            fp_reads < 0.03,
            "absent-value lookup read {} blocks over {} probes",
            io.block_reads,
            io.bloom_checks
        );
    }

    #[test]
    fn lazy_topk1_reads_far_fewer_blocks_than_unbounded() {
        let db = loaded(IndexKind::LazyStandalone, 3000);
        let user = Value::str("u7");
        let before = db.primary_io().block_reads + db.index_io().block_reads;
        db.lookup("UserID", &user, Some(1)).unwrap();
        let k1 = db.primary_io().block_reads + db.index_io().block_reads - before;

        let before = db.primary_io().block_reads + db.index_io().block_reads;
        let all = db.lookup("UserID", &user, None).unwrap();
        let kall = db.primary_io().block_reads + db.index_io().block_reads - before;
        assert!(all.len() > 20);
        assert!(
            kall >= k1 * 5,
            "early exit must save I/O: K=1 {k1} vs all {kall}"
        );
    }

    #[test]
    fn composite_topk1_validation_io_bounded_by_posting_list_length() {
        // Same keyspace, 10× different posting-list lengths: 600 docs over
        // 40 users (15 per user) vs 6000 (150 per user).
        let small = loaded(IndexKind::CompositeStandalone, 600);
        let large = loaded(IndexKind::CompositeStandalone, 6000);

        let probe = Value::str("u7");
        let reads_k1 = |db: &SecondaryDb| {
            let before = db.primary_io().block_reads;
            let hits = db.lookup("UserID", &probe, Some(1)).unwrap();
            assert_eq!(hits.len(), 1);
            db.primary_io().block_reads - before
        };
        let small_k1 = reads_k1(&small);
        let large_k1 = reads_k1(&large);
        // LOOKUP(A, a, 1) validates candidates newest-first and stops at
        // the first confirmed hit, so primary-side data-block reads stay
        // bounded no matter how long the posting list grows. (The index
        // table itself must still be range-scanned — composite entries are
        // not time-ordered across levels, the paper's §4.2 caveat.)
        assert!(
            large_k1 <= small_k1 + 4,
            "K=1 validation reads must not scale with posting length: \
             {small_k1} blocks at 15 postings vs {large_k1} at 150"
        );

        // Unbounded validation on the long list dwarfs K=1.
        let before = large.primary_io().block_reads;
        let all = large.lookup("UserID", &probe, None).unwrap();
        let large_all = large.primary_io().block_reads - before;
        assert!(all.len() >= 100);
        assert!(
            large_all >= large_k1.max(1) * 10,
            "early exit must save validation I/O: K=1 {large_k1} vs all {large_all}"
        );
    }

    #[test]
    fn eager_lookup_is_one_index_read() {
        let db = loaded(IndexKind::EagerStandalone, 2000);
        // Warm the table metadata, then measure steady-state index reads.
        db.lookup("UserID", &Value::str("u3"), Some(1)).unwrap();
        let before = db.index_io();
        for u in 4..14 {
            db.lookup("UserID", &Value::str(format!("u{u}")), Some(1))
                .unwrap();
        }
        let reads = db.index_io().since(&before).block_reads as f64 / 10.0;
        assert!(
            reads <= 2.5,
            "Eager should read ~1 index block per lookup, measured {reads}"
        );
    }

    #[test]
    fn file_level_zone_maps_prune_out_of_range_queries() {
        let db = loaded(IndexKind::Embedded, 3000);
        let before = db.primary_io();
        // Query far outside the CreationTime range: every file prunes at
        // the metadata level.
        let hits = db
            .range_lookup("CreationTime", &Value::Int(1), &Value::Int(2), None)
            .unwrap();
        assert!(hits.is_empty());
        let io = db.primary_io().since(&before);
        assert_eq!(io.block_reads, 0, "no data blocks for an impossible range");
        assert!(io.file_zonemap_prunes > 0, "whole files must be pruned");
    }

    #[test]
    fn getlite_keeps_embedded_hit_validation_free_of_data_io() {
        // On a static store (no updates), valid matches require no extra
        // reads beyond the scanned blocks themselves: GetLite answers from
        // metadata and never triggers the confirming probe.
        let db = loaded(IndexKind::Embedded, 2000);
        let before = db.primary_io();
        let hits = db.lookup("UserID", &Value::str("u5"), None).unwrap();
        let io = db.primary_io().since(&before);
        assert!(!hits.is_empty());
        // Every read block can contain at most a handful of matches; the
        // total reads must stay at the scan level (≪ matches × levels).
        assert!(
            io.block_reads <= hits.len() as u64 + 40,
            "{} reads for {} hits",
            io.block_reads,
            hits.len()
        );
    }
}

#[test]
fn non_utf8_pk_rejected_before_primary_write() {
    // Posting-list indexes can't serialize non-UTF-8 keys; the rejection
    // must happen *before* the primary write so tables never diverge.
    let db = open_with(IndexKind::LazyStandalone);
    let pk = [0xffu8, 0xfe, b'x'];
    let err = db.put(&pk[..], &tweet(1, 1, "x")).unwrap_err();
    assert!(err.to_string().contains("UTF-8"));
    assert!(
        db.get(&pk[..]).unwrap().is_none(),
        "primary must be untouched"
    );
    // Composite and Embedded handle arbitrary bytes fine.
    for kind in [IndexKind::CompositeStandalone, IndexKind::Embedded] {
        let db = open_with(kind);
        db.put(&pk[..], &tweet(1, 1, "x")).unwrap();
        assert!(db.get(&pk[..]).unwrap().is_some(), "{kind}");
        let hits = db.lookup("UserID", &Value::str("u1"), None).unwrap();
        assert_eq!(hits.len(), 1, "{kind}");
    }
}
