//! Self-healing round trip for the full facade: corrupt a populated
//! [`SecondaryDb`] (primary and index tables alike), run
//! [`ldbpp_lsm::repair_db`] over every table directory, reopen, and
//! [`SecondaryDb::heal`] — every surviving record must be readable via GET
//! *and* via all five lookup techniques, and `check_integrity` must end
//! clean.

use ldbpp_common::json::Value;
use ldbpp_core::indexes::{EagerIndex, SecondaryIndex};
use ldbpp_core::{Document, IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::{Env, FaultEnv, MemEnv};
use ldbpp_lsm::repair::repair_db;
use std::collections::BTreeSet;
use std::sync::Arc;

const DB: &str = "sdb";
const SPECS: &[(&str, IndexKind)] = &[
    ("Embed", IndexKind::Embedded),
    ("Eager", IndexKind::EagerStandalone),
    ("Lazy", IndexKind::LazyStandalone),
    ("Comp", IndexKind::CompositeStandalone),
    ("Plain", IndexKind::None),
];
/// The stand-alone index table directories, named by [`SecondaryDb::open`].
const INDEX_DIRS: &[&str] = &["sdb_idx_Eager", "sdb_idx_Lazy", "sdb_idx_Comp"];

fn base_opts() -> DbOptions {
    DbOptions {
        auto_compact: false,
        ..DbOptions::small()
    }
}

fn open(env: Arc<dyn Env>) -> SecondaryDb {
    SecondaryDb::open(
        env,
        DB,
        SecondaryDbOptions {
            base: base_opts(),
            ..Default::default()
        },
        SPECS,
    )
    .unwrap()
}

fn pk(i: usize) -> String {
    format!("pk{i:03}")
}

fn group(i: usize) -> String {
    format!("g{}", i % 4)
}

fn doc(i: usize) -> Document {
    let mut d = Document::new();
    for attr in ["Embed", "Eager", "Lazy", "Comp", "Plain"] {
        d.set(attr, Value::str(group(i)));
    }
    d.set("N", Value::Int(i as i64));
    d
}

/// Populate 40 records across 4 groups and flush everything to tables.
fn populate(db: &SecondaryDb) {
    for i in 0..40 {
        db.put(pk(i), &doc(i)).unwrap();
    }
    db.flush().unwrap();
}

/// Repair the primary directory and every stand-alone index directory.
fn repair_all(env: &Arc<dyn Env>) {
    // The primary's table format includes the Embedded attribute's
    // per-block metadata, which rewrites must regenerate.
    let primary_opts = DbOptions {
        indexed_attrs: vec!["Embed".to_string()],
        extractor: Some(Arc::new(ldbpp_core::JsonAttrExtractor)),
        ..base_opts()
    };
    let _ = repair_db(env, DB, &primary_opts).unwrap();
    for dir in INDEX_DIRS {
        let _ = repair_db(env, dir, &base_opts()).unwrap();
    }
}

/// Every record the repaired primary still holds must be reachable through
/// GET and through each of the five techniques (four indexes + full scan).
fn assert_survivors_fully_readable(db: &SecondaryDb) {
    let survivors: Vec<usize> = (0..40)
        .filter(|i| db.get(pk(*i)).unwrap().is_some())
        .collect();
    assert!(!survivors.is_empty(), "repair lost everything");
    for g in 0..4 {
        let expect: BTreeSet<String> = survivors
            .iter()
            .filter(|i| *i % 4 == g)
            .map(|i| pk(*i))
            .collect();
        for attr in ["Embed", "Eager", "Lazy", "Comp", "Plain"] {
            let hits = db
                .lookup(attr, &Value::str(format!("g{g}")), None)
                .unwrap_or_else(|e| panic!("{attr} lookup failed: {e}"));
            let got: BTreeSet<String> = hits
                .iter()
                .map(|h| String::from_utf8(h.key.clone()).unwrap())
                .collect();
            assert_eq!(
                got, expect,
                "{attr} lookup for g{g} disagrees with the primary"
            );
        }
    }
}

#[test]
fn heal_is_a_noop_on_a_clean_database() {
    let env: Arc<dyn Env> = MemEnv::new();
    let db = open(env);
    populate(&db);
    let report = db.heal().unwrap();
    assert!(!report.rebuilt, "{report:?}");
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.replayed, 0);
    assert_survivors_fully_readable(&db);
}

#[test]
fn heal_after_primary_corruption_and_repair() {
    let fault = FaultEnv::new(MemEnv::new());
    let env: Arc<dyn Env> = fault.clone();
    drop({
        let db = open(env.clone());
        populate(&db);
        db
    });
    // Bit rot inside a primary data block: some records die with it, and
    // every stand-alone index now holds postings for the dead.
    let table = env
        .list(DB)
        .unwrap()
        .into_iter()
        .find(|n| n.ends_with(".ldb"))
        .unwrap();
    fault.flip_byte(&format!("{DB}/{table}"), 32).unwrap();

    repair_all(&env);
    let db = open(env);
    let heal = db.heal().unwrap();
    assert!(
        heal.rebuilt,
        "dangling postings must force a rebuild: {heal:?}"
    );
    assert!(heal.is_clean(), "{heal:?}");
    let report = db.check_integrity();
    assert!(report.is_clean(), "{report}");
    assert_survivors_fully_readable(&db);
}

#[test]
fn heal_after_index_corruption_and_repair() {
    let fault = FaultEnv::new(MemEnv::new());
    let env: Arc<dyn Env> = fault.clone();
    drop({
        let db = open(env.clone());
        populate(&db);
        db
    });
    // Seed a ghost posting the way a write-path bug would, then damage the
    // index table with bit rot (the primary stays intact throughout).
    {
        let primary = Db::open(env.clone(), DB, base_opts()).unwrap();
        let idx = EagerIndex::open(env.clone(), "sdb_idx_Eager", "Eager", &base_opts()).unwrap();
        let mut ghost_doc = Document::new();
        ghost_doc.set("Eager", Value::str("g0"));
        idx.on_put(&primary, b"ghost", &ghost_doc, 1).unwrap();
        idx.flush().unwrap();
    }
    let eager_table = env
        .list("sdb_idx_Eager")
        .unwrap()
        .into_iter()
        .find(|n| n.ends_with(".ldb"))
        .unwrap();
    fault
        .flip_byte(&format!("sdb_idx_Eager/{eager_table}"), 32)
        .unwrap();

    repair_all(&env);
    let db = open(env);
    let heal = db.heal().unwrap();
    assert!(heal.rebuilt, "{heal:?}");
    assert!(heal.is_clean(), "{heal:?}");
    assert_eq!(heal.replayed, 40, "all records replay into the indexes");
    assert_survivors_fully_readable(&db);
    // The ghost is gone from the rebuilt index, not just filtered at read
    // time.
    let hits = db.lookup("Eager", &Value::str("g0"), None).unwrap();
    assert!(hits.iter().all(|h| h.key != b"ghost"));
}
