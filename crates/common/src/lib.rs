//! Shared primitives for the LevelDB++ workspace.
//!
//! This crate hosts the low-level building blocks every other crate relies
//! on:
//!
//! * [`error`] — the common [`Error`]/[`Result`] types.
//! * [`coding`] — LevelDB-style fixed and varint integer encodings.
//! * [`crc32c`] — the Castagnoli CRC used to checksum log records and table
//!   footers, including LevelDB's masking trick.
//! * [`json`] — a small self-contained JSON value model, parser and writer.
//!   The paper stores record values and posting lists as JSON; we implement
//!   JSON in-house because `serde_json` is outside the approved dependency
//!   set.

pub mod coding;
pub mod crc32c;
pub mod error;
pub mod json;

pub use error::{Error, Result};
pub use json::Value;
