//! Error and result types shared across the workspace.

use std::fmt;

/// The error type used throughout LevelDB++.
///
/// Mirrors the `Status` categories of LevelDB: every fallible public
/// operation in the storage engine and index layers returns one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A requested key (or file) does not exist.
    NotFound(String),
    /// Stored data failed validation (bad magic, CRC mismatch, truncated
    /// block, malformed JSON, ...).
    Corruption(String),
    /// The operation is not supported in the current configuration, e.g.
    /// a `LOOKUP` on an attribute that has no index.
    NotSupported(String),
    /// The caller passed an argument that can never be valid, e.g. an empty
    /// key or an inverted range.
    InvalidArgument(String),
    /// An underlying I/O operation failed.
    Io(String),
    /// The storage device is out of space. Split from [`Error::Io`] so
    /// callers can distinguish a full disk (retryable after freeing space,
    /// never a data-integrity problem) from arbitrary I/O failures.
    NoSpace(String),
    /// The server (or a shared resource) is overloaded and shed this
    /// request. Transient by construction: the operation was *not*
    /// executed and may be retried after a backoff.
    Busy(String),
    /// An operation exceeded its deadline (socket read/write timeout,
    /// stalled peer). The outcome of the in-flight operation is unknown,
    /// so retries must be idempotent.
    Timeout(String),
}

impl Error {
    /// True if this error is [`Error::NotFound`].
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound(_))
    }

    /// True if this error is [`Error::Corruption`].
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Corruption(_))
    }

    /// Convenience constructor for [`Error::Corruption`].
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for [`Error::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Convenience constructor for [`Error::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Convenience constructor for [`Error::NotSupported`].
    pub fn not_supported(msg: impl Into<String>) -> Self {
        Error::NotSupported(msg.into())
    }

    /// True if this error is [`Error::Io`].
    pub fn is_io(&self) -> bool {
        matches!(self, Error::Io(_))
    }

    /// Convenience constructor for [`Error::Io`].
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// True if this error is [`Error::NoSpace`].
    pub fn is_no_space(&self) -> bool {
        matches!(self, Error::NoSpace(_))
    }

    /// Convenience constructor for [`Error::NoSpace`].
    pub fn no_space(msg: impl Into<String>) -> Self {
        Error::NoSpace(msg.into())
    }

    /// True if this error is [`Error::Busy`].
    pub fn is_busy(&self) -> bool {
        matches!(self, Error::Busy(_))
    }

    /// Convenience constructor for [`Error::Busy`].
    pub fn busy(msg: impl Into<String>) -> Self {
        Error::Busy(msg.into())
    }

    /// True if this error is [`Error::Timeout`].
    pub fn is_timeout(&self) -> bool {
        matches!(self, Error::Timeout(_))
    }

    /// Convenience constructor for [`Error::Timeout`].
    pub fn timeout(msg: impl Into<String>) -> Self {
        Error::Timeout(msg.into())
    }

    /// True if a client may safely retry the operation that produced this
    /// error (after reconnecting and backing off).
    ///
    /// `Busy` means the request was shed before execution; `Timeout` means
    /// the outcome is unknown, which is safe to retry only because writes
    /// carry idempotency ids (see the `ldbpp-proto` retry layer). All other
    /// categories are treated as fatal for the *request*: they describe a
    /// property of the arguments or of stored data that a retry cannot
    /// change.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Busy(_) | Error::Timeout(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::NotSupported(m) => write!(f, "not supported: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::NoSpace(m) => write!(f, "no space: {m}"),
            Error::Busy(m) => write!(f, "busy: {m}"),
            Error::Timeout(m) => write!(f, "timeout: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            Error::NotFound(e.to_string())
        } else {
            Error::Io(e.to_string())
        }
    }
}

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_category() {
        assert_eq!(Error::NotFound("k1".into()).to_string(), "not found: k1");
        assert_eq!(
            Error::corruption("bad magic").to_string(),
            "corruption: bad magic"
        );
        assert_eq!(
            Error::invalid("empty key").to_string(),
            "invalid argument: empty key"
        );
        assert_eq!(Error::Io("disk".into()).to_string(), "io error: disk");
    }

    #[test]
    fn predicates() {
        assert!(Error::not_found("x").is_not_found());
        assert!(!Error::corruption("x").is_not_found());
        assert!(Error::corruption("x").is_corruption());
        assert!(!Error::not_found("x").is_corruption());
    }

    #[test]
    fn from_io_error_maps_not_found() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        assert!(Error::from(io).is_not_found());
        let io = std::io::Error::other("boom");
        assert!(matches!(Error::from(io), Error::Io(_)));
    }

    #[test]
    fn busy_and_timeout_are_retryable() {
        let b = Error::busy("shed");
        assert!(b.is_busy());
        assert!(b.is_retryable());
        assert!(!b.is_io());
        assert_eq!(b.to_string(), "busy: shed");
        let t = Error::timeout("read deadline");
        assert!(t.is_timeout());
        assert!(t.is_retryable());
        assert_eq!(t.to_string(), "timeout: read deadline");
        assert!(!Error::io("reset").is_retryable());
        assert!(!Error::corruption("crc").is_retryable());
        assert!(!Error::no_space("full").is_retryable());
    }

    #[test]
    fn no_space_is_distinct_from_io() {
        let e = Error::no_space("device full");
        assert!(e.is_no_space());
        assert!(!e.is_io());
        assert!(!e.is_corruption());
        assert_eq!(e.to_string(), "no space: device full");
    }
}
