//! CRC32C (Castagnoli) with LevelDB's mask/unmask scheme.
//!
//! Log records and table footers are protected by CRC32C. LevelDB
//! additionally *masks* stored CRCs so that computing the CRC of a string
//! that itself contains embedded CRCs does not degrade the checksum; we
//! reproduce that behaviour bit-for-bit.

/// The Castagnoli polynomial, reflected.
const POLY: u32 = 0x82f6_3b78;

/// Lazily-built 8-entry-per-byte lookup table (slicing-by-1; plenty fast for
/// the block sizes we checksum).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Compute the CRC32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    extend(0, data)
}

/// Extend a running CRC32C with more data.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut c = !crc;
    for &b in data {
        c = t[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Mask a CRC prior to storage (LevelDB trick).
pub fn mask(crc: u32) -> u32 {
    (crc.rotate_right(15)).wrapping_add(MASK_DELTA)
}

/// Undo [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / iSCSI test vectors for CRC32C.
        assert_eq!(crc32c(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(crc32c(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46dd_794e);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113f_db5c);
    }

    #[test]
    fn standard_check_value() {
        // The canonical "123456789" check value for CRC-32C.
        assert_eq!(crc32c(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_equals_whole() {
        let data = b"hello world, this is leveldb++";
        let whole = crc32c(data);
        let split = extend(crc32c(&data[..10]), &data[10..]);
        assert_eq!(whole, split);
    }

    #[test]
    fn mask_roundtrip_and_differs() {
        let crc = crc32c(b"foo");
        assert_ne!(mask(crc), crc);
        assert_eq!(unmask(mask(crc)), crc);
    }

    proptest! {
        #[test]
        fn prop_mask_roundtrip(v in any::<u32>()) {
            prop_assert_eq!(unmask(mask(v)), v);
        }

        #[test]
        fn prop_extend_split(data in proptest::collection::vec(any::<u8>(), 0..256), split in 0usize..256) {
            let split = split.min(data.len());
            let whole = crc32c(&data);
            let halves = extend(crc32c(&data[..split]), &data[split..]);
            prop_assert_eq!(whole, halves);
        }
    }
}
