//! LevelDB-style integer encodings.
//!
//! Fixed-width little-endian 32/64-bit encodings plus the 7-bit-per-byte
//! varint encodings used pervasively in block, table and log formats.

use crate::error::{Error, Result};

/// Append a little-endian u32.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decode a little-endian u32 from the start of `src`.
///
/// Panics if `src` is shorter than 4 bytes; use at call sites that have
/// already validated lengths.
pub fn decode_fixed32(src: &[u8]) -> u32 {
    u32::from_le_bytes(src[..4].try_into().unwrap())
}

/// Decode a little-endian u64 from the start of `src`.
pub fn decode_fixed64(src: &[u8]) -> u64 {
    u64::from_le_bytes(src[..8].try_into().unwrap())
}

/// Append a varint-encoded u32.
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64)
}

/// Append a varint-encoded u64.
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Number of bytes `put_varint64` would emit for `v`.
pub fn varint_len(mut v: u64) -> usize {
    let mut n = 1;
    while v >= 0x80 {
        v >>= 7;
        n += 1;
    }
    n
}

/// Decode a varint u64 from the start of `src`.
///
/// Returns the value and the number of bytes consumed.
pub fn get_varint64(src: &[u8]) -> Result<(u64, usize)> {
    let mut result: u64 = 0;
    let mut shift = 0u32;
    for (i, &b) in src.iter().enumerate() {
        if shift > 63 {
            return Err(Error::corruption("varint64 overflow"));
        }
        result |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok((result, i + 1));
        }
        shift += 7;
    }
    Err(Error::corruption("truncated varint64"))
}

/// Decode a varint u32 from the start of `src`.
pub fn get_varint32(src: &[u8]) -> Result<(u32, usize)> {
    let (v, n) = get_varint64(src)?;
    if v > u32::MAX as u64 {
        return Err(Error::corruption("varint32 overflow"));
    }
    Ok((v as u32, n))
}

/// Append a length-prefixed (varint32) byte slice.
pub fn put_length_prefixed(dst: &mut Vec<u8>, slice: &[u8]) {
    put_varint32(dst, slice.len() as u32);
    dst.extend_from_slice(slice);
}

/// Decode a length-prefixed slice from the start of `src`.
///
/// Returns the slice and total bytes consumed (prefix + payload).
pub fn get_length_prefixed(src: &[u8]) -> Result<(&[u8], usize)> {
    let (len, n) = get_varint32(src)?;
    let end = n + len as usize;
    if src.len() < end {
        return Err(Error::corruption("truncated length-prefixed slice"));
    }
    Ok((&src[n..end], end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(decode_fixed32(&buf), 0xdead_beef);
        assert_eq!(decode_fixed64(&buf[4..]), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn varint_boundaries() {
        // Encoded sizes at the 7-bit boundaries.
        for (v, len) in [
            (0u64, 1usize),
            (127, 1),
            (128, 2),
            (16383, 2),
            (16384, 3),
            (u32::MAX as u64, 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), len, "encoded length of {v}");
            assert_eq!(varint_len(v), len);
            let (dec, n) = get_varint64(&buf).unwrap();
            assert_eq!((dec, n), (v, len));
        }
    }

    #[test]
    fn varint32_rejects_overflow() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u32::MAX as u64 + 1);
        assert!(get_varint32(&buf).is_err());
    }

    #[test]
    fn truncated_varint_is_corruption() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, 300);
        buf.pop();
        assert!(get_varint64(&buf).unwrap_err().is_corruption());
        assert!(get_varint64(&[]).is_err());
    }

    #[test]
    fn malicious_varint_overflow() {
        // 11 continuation bytes exceed a u64's 63-bit shift budget.
        let buf = [0xffu8; 11];
        assert!(get_varint64(&buf).unwrap_err().is_corruption());
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        put_length_prefixed(&mut buf, b"");
        put_length_prefixed(&mut buf, &[0u8; 200]);
        let (s, n) = get_length_prefixed(&buf).unwrap();
        assert_eq!(s, b"hello");
        let (s2, n2) = get_length_prefixed(&buf[n..]).unwrap();
        assert_eq!(s2, b"");
        let (s3, _) = get_length_prefixed(&buf[n + n2..]).unwrap();
        assert_eq!(s3, &[0u8; 200]);
    }

    #[test]
    fn length_prefixed_truncated() {
        let mut buf = Vec::new();
        put_length_prefixed(&mut buf, b"hello");
        assert!(get_length_prefixed(&buf[..3]).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint_roundtrip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (dec, n) = get_varint64(&buf).unwrap();
            prop_assert_eq!(dec, v);
            prop_assert_eq!(n, buf.len());
            prop_assert_eq!(varint_len(v), buf.len());
        }

        #[test]
        fn prop_length_prefixed_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut buf = Vec::new();
            put_length_prefixed(&mut buf, &data);
            let (s, n) = get_length_prefixed(&buf).unwrap();
            prop_assert_eq!(s, &data[..]);
            prop_assert_eq!(n, buf.len());
        }

        #[test]
        fn prop_varint_ordering_preserves_stream(vs in proptest::collection::vec(any::<u64>(), 0..64)) {
            // A stream of varints decodes back to the same sequence.
            let mut buf = Vec::new();
            for &v in &vs {
                put_varint64(&mut buf, v);
            }
            let mut off = 0;
            let mut out = Vec::new();
            while off < buf.len() {
                let (v, n) = get_varint64(&buf[off..]).unwrap();
                out.push(v);
                off += n;
            }
            prop_assert_eq!(out, vs);
        }
    }
}
