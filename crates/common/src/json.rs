//! A small, self-contained JSON value model, parser and writer.
//!
//! The paper stores each record's value as a JSON object
//! (`{"UserID": "u1", "Text": "..."}`) and serializes stand-alone posting
//! lists as JSON arrays. `serde_json` is outside the approved dependency
//! set, so we implement the needed subset here: objects, arrays, strings,
//! 64-bit integers, floats, booleans and null, with standard escape
//! handling.
//!
//! Numbers that are integral round-trip through [`Value::Int`] so that
//! sequence numbers and timestamps survive exactly.

use crate::error::{Error, Result};
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Integral number (preserves full i64 precision).
    Int(i64),
    /// Non-integral number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with deterministic (sorted) key order.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn object<I, K>(pairs: I) -> Value
    where
        I: IntoIterator<Item = (K, Value)>,
        K: Into<String>,
    {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Get a field of an object, if this is an object and the field exists.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// View as `&str` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// View as i64 if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// View as array slice if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array access.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Insert into an object; returns the previous value if any.
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        match self {
            Value::Object(m) => m.insert(key.into(), value),
            _ => panic!("insert on non-object JSON value"),
        }
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Parse a JSON document. The entire input must be consumed (modulo
    /// trailing whitespace).
    pub fn parse(input: &str) -> Result<Value> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::corruption(format!(
                "trailing characters at byte {} in JSON",
                p.pos
            )));
        }
        Ok(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let s = format!("{x}");
                out.push_str(&s);
                // Ensure it re-parses as a float, not an int.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::corruption(format!(
                "expected '{}' at byte {} in JSON",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::corruption("JSON nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::corruption(format!(
                "unexpected byte 0x{c:02x} at {} in JSON",
                self.pos
            ))),
            None => Err(Error::corruption("unexpected end of JSON")),
        }
    }

    fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::corruption(format!(
                "bad literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::corruption(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            let v = self.parse_value(depth + 1)?;
            items.push(v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::corruption(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::corruption("unterminated JSON string"))?;
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::corruption("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Handle surrogate pairs.
                            if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if !(0xdc00..0xe000).contains(&low) {
                                        return Err(Error::corruption("bad low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xd800) << 10) + (low - 0xdc00);
                                    s.push(
                                        char::from_u32(c)
                                            .ok_or_else(|| Error::corruption("bad codepoint"))?,
                                    );
                                } else {
                                    return Err(Error::corruption("lone high surrogate"));
                                }
                            } else if (0xdc00..0xe000).contains(&cp) {
                                return Err(Error::corruption("lone low surrogate"));
                            } else {
                                s.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::corruption("bad codepoint"))?,
                                );
                            }
                        }
                        _ => return Err(Error::corruption("bad escape character")),
                    }
                }
                _ => {
                    // Consume one UTF-8 encoded character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::corruption("invalid UTF-8 in JSON string"))?;
                    let ch = text.chars().next().unwrap();
                    if (ch as u32) < 0x20 {
                        return Err(Error::corruption("unescaped control character"));
                    }
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::corruption("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::corruption("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error::corruption("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::corruption(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Int(42));
        assert_eq!(Value::parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(Value::parse("3.5").unwrap(), Value::Float(3.5));
        assert_eq!(Value::parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::str("hi"));
    }

    #[test]
    fn parse_tweet_like_object() {
        let doc = r#"{"UserID": "u42", "Text": "hello world", "CreationTime": 1528070400}"#;
        let v = Value::parse(doc).unwrap();
        assert_eq!(v.get("UserID").unwrap().as_str(), Some("u42"));
        assert_eq!(v.get("CreationTime").unwrap().as_int(), Some(1528070400));
        assert!(v.get("Missing").is_none());
    }

    #[test]
    fn posting_list_roundtrip() {
        // The Stand-Alone indexes serialize posting lists as JSON arrays of
        // [primary_key, seq] pairs.
        let list = Value::Array(vec![
            Value::Array(vec![Value::str("t4"), Value::Int(9)]),
            Value::Array(vec![Value::str("t1"), Value::Int(2)]),
        ]);
        let text = list.to_json();
        assert_eq!(text, r#"[["t4",9],["t1",2]]"#);
        assert_eq!(Value::parse(&text).unwrap(), list);
    }

    #[test]
    fn escapes_roundtrip() {
        let s = Value::str("a\"b\\c\nd\te\u{08}\u{0c}\r \u{1} é 😀");
        let text = s.to_json();
        assert_eq!(Value::parse(&text).unwrap(), s);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Value::parse(r#""é""#).unwrap(), Value::str("é"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(Value::parse(r#""😀""#).unwrap(), Value::str("😀"));
        assert!(Value::parse(r#""\ud83d""#).is_err());
        assert!(Value::parse(r#""\ude00""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"abc",
            "{\"a\" 1}",
            "[1 2]",
            "nul",
            "{'a':1}",
            "01x",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Value::parse("42 junk").is_err());
        assert!(Value::parse("{} {}").is_err());
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Value::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(
            v,
            Value::object([
                ("a", Value::Array(vec![Value::Int(1), Value::Int(2)])),
                ("b", Value::Null),
            ])
        );
    }

    #[test]
    fn object_key_order_is_deterministic() {
        let v1 = Value::parse(r#"{"b":1,"a":2}"#).unwrap();
        let v2 = Value::parse(r#"{"a":2,"b":1}"#).unwrap();
        assert_eq!(v1.to_json(), v2.to_json());
    }

    #[test]
    fn int_precision_preserved() {
        let big = i64::MAX;
        let text = Value::Int(big).to_json();
        assert_eq!(Value::parse(&text).unwrap().as_int(), Some(big));
        let small = i64::MIN;
        let text = Value::Int(small).to_json();
        assert_eq!(Value::parse(&text).unwrap().as_int(), Some(small));
    }

    #[test]
    fn float_writes_reparse_as_float() {
        let v = Value::Float(2.0);
        let text = v.to_json();
        assert_eq!(Value::parse(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn as_f64_covers_both_numbers() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(3.25).as_f64(), Some(3.25));
        assert_eq!(Value::Null.as_f64(), None);
    }

    fn arb_json(depth: u32) -> BoxedStrategy<Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only; NaN/inf are written as null.
            (-1.0e15f64..1.0e15).prop_map(|f| if f.fract() == 0.0 {
                Value::Float(f + 0.5)
            } else {
                Value::Float(f)
            }),
            "[a-zA-Z0-9 _\\-\"\\\\\n\t]{0,20}".prop_map(Value::Str),
        ];
        if depth == 0 {
            leaf.boxed()
        } else {
            prop_oneof![
                leaf.clone(),
                proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Value::Array),
                proptest::collection::btree_map("[a-z]{1,8}", arb_json(depth - 1), 0..4)
                    .prop_map(Value::Object),
            ]
            .boxed()
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in arb_json(3)) {
            let text = v.to_json();
            let parsed = Value::parse(&text).unwrap();
            prop_assert_eq!(parsed, v);
        }

        #[test]
        fn prop_parser_never_panics(s in "\\PC{0,64}") {
            let _ = Value::parse(&s);
        }
    }
}
