//! Twitter-like dataset and operation workload generators.
//!
//! Reimplements the paper's open-source workload generator (its citation \[30\]): a
//! synthetic tweet stream whose attribute-value distributions follow a seed
//! dataset's statistics, plus *Static* and *Mixed* operation workloads
//! (§5.1).
//!
//! We do not have the paper's 10 GB seed crawl (8 M geotagged tweets
//! collected over three weeks via the Twitter Streaming API — not
//! redistributable), so [`seed::SeedStats`] bakes in the published
//! statistics: ~30 tweets per user on average, ~35 tweets per second,
//! ~550 bytes per tweet, and the heavy-tailed user rank-frequency curve of
//! the paper's Figure 7. Every generator is deterministic given a seed.

pub mod ops;
pub mod seed;
pub mod tweets;
pub mod ycsb;
pub mod zipf;

pub use ops::{MixedKind, MixedWorkload, Operation, StaticQueries};
pub use seed::SeedStats;
pub use tweets::{Tweet, TweetGenerator};
pub use ycsb::{YcsbKind, YcsbOp, YcsbWorkload};
pub use zipf::Zipf;
