//! The synthetic tweet stream.
//!
//! Mirrors the paper's dataset generator: user ids follow the seed
//! rank-frequency distribution (heavy users get more synthetic tweets),
//! `CreationTime` advances with a uniformly drawn number of tweets per
//! second (making it time-correlated), and a filler body gives records a
//! realistic size.

use crate::seed::SeedStats;
use crate::zipf::Zipf;
use ldbpp_common::json::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One generated record.
#[derive(Debug, Clone, PartialEq)]
pub struct Tweet {
    /// Primary key, `t{counter:09}` — monotonically increasing like a real
    /// tweet id.
    pub id: String,
    /// Secondary attribute `UserID` (`u{rank:07}`).
    pub user: String,
    /// Secondary attribute `CreationTime` (epoch seconds, time-correlated).
    pub creation_time: i64,
    /// Body text (filler; never indexed, only there for realistic record
    /// sizes, as in the paper).
    pub text: String,
}

impl Tweet {
    /// The JSON document stored as the record value.
    pub fn document(&self) -> ldbpp_common::json::Value {
        Value::object([
            ("UserID", Value::str(self.user.clone())),
            ("CreationTime", Value::Int(self.creation_time)),
            ("Text", Value::str(self.text.clone())),
        ])
    }
}

/// Deterministic synthetic tweet stream.
///
/// ```
/// use ldbpp_workload::{SeedStats, TweetGenerator};
///
/// let mut g = TweetGenerator::new(SeedStats::default(), 1000, 42);
/// let t = g.next_tweet();
/// assert!(t.id.starts_with('t'));
/// assert!(t.user.starts_with('u'));
/// ```
pub struct TweetGenerator {
    stats: SeedStats,
    users: Zipf,
    rng: StdRng,
    counter: u64,
    current_second: i64,
    remaining_this_second: u32,
    body_len: usize,
}

impl TweetGenerator {
    /// A generator for approximately `num_tweets` records (fixes the user
    /// pool size), seeded deterministically.
    pub fn new(stats: SeedStats, num_tweets: usize, seed: u64) -> TweetGenerator {
        let pool = stats.user_pool(num_tweets);
        // JSON overhead + ids + timestamp ≈ 90 bytes; the body makes up the
        // rest of the target record size.
        let body_len = stats.avg_tweet_bytes.saturating_sub(90).max(8);
        TweetGenerator {
            users: Zipf::new(pool, stats.user_zipf_exponent),
            current_second: stats.start_time,
            remaining_this_second: 0,
            stats,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
            body_len,
        }
    }

    /// Number of distinct users in the pool.
    pub fn user_pool(&self) -> usize {
        self.users.n()
    }

    /// The user id string for a rank.
    pub fn user_id(rank: usize) -> String {
        format!("u{rank:07}")
    }

    /// Draw a user rank from the seed distribution.
    pub fn sample_user_rank(&mut self) -> usize {
        self.users.sample(&mut self.rng)
    }

    /// Generate the next tweet.
    pub fn next_tweet(&mut self) -> Tweet {
        while self.remaining_this_second == 0 {
            // "The number of tweets per second is selected based on a
            // uniform distribution with minimum 0 and maximum equal to two
            // times the average."
            let max = (2.0 * self.stats.avg_tweets_per_second) as u32;
            self.remaining_this_second = self.rng.random_range(0..=max);
            self.current_second += 1;
        }
        self.remaining_this_second -= 1;

        let rank = self.users.sample(&mut self.rng);
        let id = format!("t{:09}", self.counter);
        self.counter += 1;
        let mut text = String::with_capacity(self.body_len);
        for _ in 0..self.body_len {
            let c = b'a' + self.rng.random_range(0..26u8);
            text.push(c as char);
        }
        Tweet {
            id,
            user: Self::user_id(rank),
            creation_time: self.current_second,
            text,
        }
    }

    /// Generate a batch of tweets.
    pub fn take(&mut self, n: usize) -> Vec<Tweet> {
        (0..n).map(|_| self.next_tweet()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_monotone_and_unique() {
        let mut g = TweetGenerator::new(SeedStats::default(), 1000, 1);
        let tweets = g.take(1000);
        for w in tweets.windows(2) {
            assert!(w[0].id < w[1].id);
            assert!(w[0].creation_time <= w[1].creation_time);
        }
    }

    #[test]
    fn creation_time_is_time_correlated() {
        let mut g = TweetGenerator::new(SeedStats::default(), 5000, 2);
        let tweets = g.take(5000);
        // Spearman-ish check: insertion order vs CreationTime order agree.
        let mut inversions = 0usize;
        for w in tweets.windows(2) {
            if w[1].creation_time < w[0].creation_time {
                inversions += 1;
            }
        }
        assert_eq!(inversions, 0);
        // And time actually advances at roughly the configured rate.
        let span = tweets.last().unwrap().creation_time - tweets[0].creation_time;
        let rate = 5000.0 / span.max(1) as f64;
        assert!((rate - 35.0).abs() < 10.0, "tweets/sec ≈ {rate}");
    }

    #[test]
    fn user_distribution_is_heavy_tailed() {
        let mut g = TweetGenerator::new(SeedStats::default(), 30_000, 3);
        let tweets = g.take(30_000);
        let mut counts = std::collections::HashMap::new();
        for t in &tweets {
            *counts.entry(t.user.clone()).or_insert(0usize) += 1;
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Top user posts far more than the median user (Figure 7 shape).
        let median = freqs[freqs.len() / 2];
        assert!(
            freqs[0] > median * 10,
            "top {} vs median {median}",
            freqs[0]
        );
        // Average tweets/user in the right ballpark.
        let avg = 30_000.0 / counts.len() as f64;
        assert!(avg > 15.0, "avg tweets/user {avg}");
    }

    #[test]
    fn record_size_near_target() {
        let mut g = TweetGenerator::new(SeedStats::default(), 100, 4);
        let t = g.next_tweet();
        let bytes = t.document().to_json().len();
        assert!(
            (450..=650).contains(&bytes),
            "record size {bytes} should be near 550"
        );
    }

    #[test]
    fn deterministic() {
        let a: Vec<Tweet> = TweetGenerator::new(SeedStats::default(), 100, 9).take(50);
        let b: Vec<Tweet> = TweetGenerator::new(SeedStats::default(), 100, 9).take(50);
        assert_eq!(a, b);
    }
}
