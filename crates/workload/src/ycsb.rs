//! YCSB-style core workloads A–F.
//!
//! The paper motivates its own generator by noting that YCSB "does not
//! allow fine-grained control of the ratio of queries on primary to
//! secondary attributes" — but the standard YCSB mixes remain the lingua
//! franca for primary-key evaluation, so we provide them too. Key choice
//! uses the usual Zipfian request distribution (workload D uses
//! "latest").

use crate::tweets::{Tweet, TweetGenerator};
use crate::zipf::Zipf;
use crate::SeedStats;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One YCSB-style operation.
#[derive(Debug, Clone, PartialEq)]
pub enum YcsbOp {
    /// Read one record by key.
    Read { key: String },
    /// Overwrite one record.
    Update(Tweet),
    /// Insert a new record.
    Insert(Tweet),
    /// Short primary-key range scan starting at `start`.
    Scan { start: String, len: usize },
    /// Read-modify-write of one record.
    ReadModifyWrite(Tweet),
}

/// The six standard core workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbKind {
    /// 50 % read / 50 % update, zipfian.
    A,
    /// 95 % read / 5 % update, zipfian.
    B,
    /// 100 % read, zipfian.
    C,
    /// 95 % read / 5 % insert, latest-skewed reads.
    D,
    /// 95 % scan / 5 % insert, zipfian start keys.
    E,
    /// 50 % read / 50 % read-modify-write, zipfian.
    F,
}

impl YcsbKind {
    /// Workload label ("A".."F").
    pub fn name(self) -> &'static str {
        match self {
            YcsbKind::A => "A",
            YcsbKind::B => "B",
            YcsbKind::C => "C",
            YcsbKind::D => "D",
            YcsbKind::E => "E",
            YcsbKind::F => "F",
        }
    }
}

/// Generates a YCSB-style stream over an initially loaded keyspace.
pub struct YcsbWorkload {
    kind: YcsbKind,
    generator: TweetGenerator,
    /// Keys `t000000000..t{loaded}` exist.
    loaded: usize,
    keys: Zipf,
    rng: StdRng,
    max_scan_len: usize,
}

impl YcsbWorkload {
    /// A workload over `record_count` preloaded records (insert them first
    /// with [`YcsbWorkload::load_phase`]).
    pub fn new(kind: YcsbKind, record_count: usize, seed: u64) -> YcsbWorkload {
        assert!(record_count > 0);
        YcsbWorkload {
            kind,
            generator: TweetGenerator::new(SeedStats::compact(), record_count * 2, seed),
            loaded: 0,
            keys: Zipf::new(record_count, 0.99), // classic YCSB zipfian θ
            rng: StdRng::seed_from_u64(seed ^ 0x9c5b),
            max_scan_len: 100,
        }
    }

    /// The insert phase: `n` fresh records to load before running the mix.
    pub fn load_phase(&mut self, n: usize) -> Vec<Tweet> {
        let out = self.generator.take(n);
        self.loaded += n;
        out
    }

    fn zipf_key(&mut self) -> String {
        // Zipf rank 0 = hottest; map onto the loaded keyspace.
        let rank = self.keys.sample(&mut self.rng) % self.loaded.max(1);
        format!("t{rank:09}")
    }

    fn latest_key(&mut self) -> String {
        // "Latest" distribution: zipfian over recency.
        let back = self.keys.sample(&mut self.rng) % self.loaded.max(1);
        format!("t{:09}", self.loaded - 1 - back)
    }

    fn updated_tweet(&mut self, key: String) -> Tweet {
        let mut t = self.generator.next_tweet();
        t.id = key;
        t
    }

    /// Next operation of the mix. Call after at least one `load_phase`.
    pub fn next_op(&mut self) -> YcsbOp {
        assert!(self.loaded > 0, "run load_phase first");
        let x: f64 = self.rng.random();
        match self.kind {
            YcsbKind::A => {
                if x < 0.5 {
                    YcsbOp::Read {
                        key: self.zipf_key(),
                    }
                } else {
                    let key = self.zipf_key();
                    YcsbOp::Update(self.updated_tweet(key))
                }
            }
            YcsbKind::B => {
                if x < 0.95 {
                    YcsbOp::Read {
                        key: self.zipf_key(),
                    }
                } else {
                    let key = self.zipf_key();
                    YcsbOp::Update(self.updated_tweet(key))
                }
            }
            YcsbKind::C => YcsbOp::Read {
                key: self.zipf_key(),
            },
            YcsbKind::D => {
                if x < 0.95 {
                    YcsbOp::Read {
                        key: self.latest_key(),
                    }
                } else {
                    let t = self.generator.next_tweet();
                    self.loaded += 1;
                    YcsbOp::Insert(t)
                }
            }
            YcsbKind::E => {
                if x < 0.95 {
                    let len = self.rng.random_range(1..=self.max_scan_len);
                    YcsbOp::Scan {
                        start: self.zipf_key(),
                        len,
                    }
                } else {
                    let t = self.generator.next_tweet();
                    self.loaded += 1;
                    YcsbOp::Insert(t)
                }
            }
            YcsbKind::F => {
                if x < 0.5 {
                    YcsbOp::Read {
                        key: self.zipf_key(),
                    }
                } else {
                    let key = self.zipf_key();
                    YcsbOp::ReadModifyWrite(self.updated_tweet(key))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_counts(kind: YcsbKind, n: usize) -> (usize, usize, usize, usize, usize) {
        let mut w = YcsbWorkload::new(kind, 1000, 3);
        w.load_phase(1000);
        let (mut r, mut u, mut i, mut s, mut rmw) = (0, 0, 0, 0, 0);
        for _ in 0..n {
            match w.next_op() {
                YcsbOp::Read { .. } => r += 1,
                YcsbOp::Update(_) => u += 1,
                YcsbOp::Insert(_) => i += 1,
                YcsbOp::Scan { .. } => s += 1,
                YcsbOp::ReadModifyWrite(_) => rmw += 1,
            }
        }
        (r, u, i, s, rmw)
    }

    #[test]
    fn workload_mixes_match_spec() {
        let n = 20_000;
        let (r, u, _, _, _) = mix_counts(YcsbKind::A, n);
        assert!((r as f64 / n as f64 - 0.5).abs() < 0.02, "A reads {r}");
        assert!((u as f64 / n as f64 - 0.5).abs() < 0.02);

        let (r, u, _, _, _) = mix_counts(YcsbKind::B, n);
        assert!((r as f64 / n as f64 - 0.95).abs() < 0.01, "B reads {r}");
        assert!(u > 0);

        let (r, _, _, _, _) = mix_counts(YcsbKind::C, n);
        assert_eq!(r, n, "C is read-only");

        let (_, _, i, s, _) = mix_counts(YcsbKind::E, n);
        assert!((s as f64 / n as f64 - 0.95).abs() < 0.01, "E scans {s}");
        assert!(i > 0);

        let (r, _, _, _, rmw) = mix_counts(YcsbKind::F, n);
        assert!((r as f64 / n as f64 - 0.5).abs() < 0.02, "F reads {r}");
        assert!(rmw > 0);
    }

    #[test]
    fn reads_target_loaded_keys_and_are_skewed() {
        let mut w = YcsbWorkload::new(YcsbKind::C, 500, 7);
        w.load_phase(500);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            if let YcsbOp::Read { key } = w.next_op() {
                let idx: usize = key[1..].parse().unwrap();
                assert!(idx < 500);
                *counts.entry(idx).or_insert(0usize) += 1;
            }
        }
        let hottest = counts.values().max().unwrap();
        let avg = 20_000 / 500;
        assert!(
            *hottest > avg * 5,
            "zipfian skew expected: {hottest} vs {avg}"
        );
    }

    #[test]
    fn d_reads_skew_to_latest() {
        let mut w = YcsbWorkload::new(YcsbKind::D, 1000, 11);
        w.load_phase(1000);
        let mut newest_third = 0usize;
        let mut reads = 0usize;
        for _ in 0..10_000 {
            if let YcsbOp::Read { key } = w.next_op() {
                let idx: usize = key[1..].parse().unwrap();
                reads += 1;
                if idx >= 667 {
                    newest_third += 1;
                }
            }
        }
        assert!(
            newest_third as f64 / reads as f64 > 0.8,
            "latest-skew: {newest_third}/{reads}"
        );
    }

    #[test]
    fn inserts_extend_keyspace() {
        let mut w = YcsbWorkload::new(YcsbKind::D, 100, 13);
        let loaded = w.load_phase(100);
        assert_eq!(loaded.len(), 100);
        let mut inserted = Vec::new();
        for _ in 0..2000 {
            if let YcsbOp::Insert(t) = w.next_op() {
                inserted.push(t.id.clone());
            }
        }
        assert!(!inserted.is_empty());
        for w in inserted.windows(2) {
            assert!(w[0] < w[1], "insert keys monotone");
        }
    }
}
