//! Statistics of the paper's seed dataset, used to parameterize the
//! synthetic generator.
//!
//! From §5.1: "We collected 8 million tweets ... posted and geotagged
//! within New York State ... The average number of tweets per user is 30
//! and the average number of tweets per second is 35. The average size of
//! a tweet is 550 bytes, each containing 22 attributes." Figure 7 shows the
//! user rank-frequency distribution is heavy-tailed (Zipf-like).

/// Distributional statistics driving the synthetic tweet stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SeedStats {
    /// Average tweets per user (seed: 30) — fixes the user-pool size for a
    /// target tweet count.
    pub avg_tweets_per_user: f64,
    /// Average tweets per second (seed: 35); per-second counts are drawn
    /// uniformly from `0..=2×avg` as in the paper.
    pub avg_tweets_per_second: f64,
    /// Zipf exponent of the user rank-frequency curve. Figure 7's log-log
    /// slope is about 1 over 267 K users; at laptop-scale user pools a raw
    /// exponent of 1.0 concentrates far more mass in the head user than the
    /// seed data does (the paper's top user holds ~0.1 % of tweets, not
    /// over 10 %), so the default is softened to keep the head/average
    /// ratio in the seed's regime while preserving the heavy tail.
    pub user_zipf_exponent: f64,
    /// Target average record size in bytes (seed: 550); the generated body
    /// text is padded so serialized records land near this.
    pub avg_tweet_bytes: usize,
    /// Epoch (seconds) of the first generated tweet.
    pub start_time: i64,
}

impl Default for SeedStats {
    fn default() -> Self {
        SeedStats {
            avg_tweets_per_user: 30.0,
            avg_tweets_per_second: 35.0,
            user_zipf_exponent: 0.85,
            avg_tweet_bytes: 550,
            start_time: 1_520_000_000, // early March 2018, the crawl window
        }
    }
}

impl SeedStats {
    /// A smaller-record variant for quick experiments (same shape, less
    /// I/O volume per record).
    pub fn compact() -> SeedStats {
        SeedStats {
            avg_tweet_bytes: 200,
            ..SeedStats::default()
        }
    }

    /// Number of distinct users to simulate for `num_tweets` total tweets.
    pub fn user_pool(&self, num_tweets: usize) -> usize {
        ((num_tweets as f64 / self.avg_tweets_per_user).ceil() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let s = SeedStats::default();
        assert_eq!(s.avg_tweets_per_user, 30.0);
        assert_eq!(s.avg_tweets_per_second, 35.0);
        assert_eq!(s.avg_tweet_bytes, 550);
    }

    #[test]
    fn user_pool_scales() {
        let s = SeedStats::default();
        assert_eq!(s.user_pool(3000), 100);
        assert_eq!(s.user_pool(1), 1);
        assert_eq!(s.user_pool(0), 1);
    }
}
