//! Zipf-distributed sampling over ranks `0..n`.
//!
//! The seed dataset's user rank-frequency curve (paper Figure 7) is a
//! classic heavy-tailed power law; we sample user ranks from a truncated
//! Zipf distribution with a precomputed CDF and binary search. `rand_distr`
//! is outside the approved dependency set, so this is implemented in-house.

use rand::RngExt;

/// A truncated Zipf distribution over `0..n` with exponent `s`:
/// `P(rank = i) ∝ 1 / (i + 1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler. Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Draw a rank.
    pub fn sample<R: RngExt + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mass_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.n(), 100);
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(500));
    }

    #[test]
    fn empirical_matches_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in [0usize, 1, 5, 20] {
            let emp = counts[i] as f64 / n as f64;
            let want = z.pmf(i);
            assert!(
                (emp - want).abs() < 0.01,
                "rank {i}: empirical {emp} vs pmf {want}"
            );
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(100, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
