//! Operation workloads: Static query phases and Mixed streams (§5.1).
//!
//! "The Static one first does all the insertions, builds the indexes and
//! then performs queries on the static data. ... In contrast, Mixed has
//! continuous data arrivals, interleaved with queries on primary and
//! secondary attributes." Query conditions are drawn from the data's own
//! value distributions (heavy users are queried more often, like real
//! feeds).

use crate::seed::SeedStats;
use crate::tweets::{Tweet, TweetGenerator};
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One operation of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// Insert a fresh record.
    Put(Tweet),
    /// Overwrite an existing primary key (the Mixed workloads' "Update").
    Update(Tweet),
    /// Primary-key read.
    Get { key: String },
    /// `LOOKUP(UserID, user, k)`.
    LookupUser { user: String, k: Option<usize> },
    /// `RANGELOOKUP(UserID, lo, hi, k)` spanning `span` users.
    RangeUsers {
        lo: String,
        hi: String,
        k: Option<usize>,
    },
    /// `RANGELOOKUP(CreationTime, lo, hi, k)` spanning minutes.
    RangeTime { lo: i64, hi: i64, k: Option<usize> },
}

/// Draws query operations against an already-loaded Static dataset.
pub struct StaticQueries {
    tweets_loaded: usize,
    user_pool: usize,
    users: Zipf,
    time_range: (i64, i64),
    rng: StdRng,
}

impl StaticQueries {
    /// Query generator over `loaded` tweets (the insert phase's output).
    pub fn new(stats: &SeedStats, loaded: &[Tweet], seed: u64) -> StaticQueries {
        assert!(!loaded.is_empty());
        let user_pool = stats.user_pool(loaded.len());
        StaticQueries {
            tweets_loaded: loaded.len(),
            user_pool,
            users: Zipf::new(user_pool, stats.user_zipf_exponent),
            time_range: (
                loaded.first().unwrap().creation_time,
                loaded.last().unwrap().creation_time,
            ),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A GET on a uniformly random existing key.
    pub fn get(&mut self) -> Operation {
        let i = self.rng.random_range(0..self.tweets_loaded);
        Operation::Get {
            key: format!("t{i:09}"),
        }
    }

    /// A LOOKUP on a user drawn from the posting-frequency distribution.
    pub fn lookup_user(&mut self, k: Option<usize>) -> Operation {
        let rank = self.users.sample(&mut self.rng);
        Operation::LookupUser {
            user: TweetGenerator::user_id(rank),
            k,
        }
    }

    /// A RANGELOOKUP over `span` consecutive user ids.
    pub fn range_users(&mut self, span: usize, k: Option<usize>) -> Operation {
        let span = span.min(self.user_pool).max(1);
        let start = self
            .rng
            .random_range(0..self.user_pool.saturating_sub(span - 1).max(1));
        Operation::RangeUsers {
            lo: TweetGenerator::user_id(start),
            hi: TweetGenerator::user_id(start + span - 1),
            k,
        }
    }

    /// A RANGELOOKUP over `minutes` of CreationTime.
    pub fn range_time(&mut self, minutes: i64, k: Option<usize>) -> Operation {
        self.range_time_span(minutes * 60, k)
    }

    /// A RANGELOOKUP over a fraction of the dataset's total time span —
    /// lets experiments keep the paper's *selectivity* (fraction of
    /// records) constant across dataset scales.
    pub fn range_time_fraction(&mut self, fraction: f64, k: Option<usize>) -> Operation {
        let (t0, t1) = self.time_range;
        let span = (((t1 - t0) as f64 * fraction) as i64).max(1);
        self.range_time_span(span, k)
    }

    /// A RANGELOOKUP over `span` seconds of CreationTime.
    pub fn range_time_span(&mut self, span: i64, k: Option<usize>) -> Operation {
        let (t0, t1) = self.time_range;
        let lo = if t1 - span > t0 {
            self.rng.random_range(t0..=(t1 - span))
        } else {
            t0
        };
        Operation::RangeTime {
            lo,
            hi: lo + span - 1,
            k,
        }
    }
}

/// Mixed workload presets from Table 7(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixedKind {
    /// 80 % PUT · 15 % GET · 5 % LOOKUP · 0 % updates.
    WriteHeavy,
    /// 20 % PUT · 70 % GET · 10 % LOOKUP · 0 % updates.
    ReadHeavy,
    /// 40 % PUT · 15 % GET · 5 % LOOKUP · 40 % of PUTs are updates.
    UpdateHeavy,
}

impl MixedKind {
    /// `(put, get, lookup, update)` fractions.
    pub fn ratios(self) -> (f64, f64, f64, f64) {
        match self {
            MixedKind::WriteHeavy => (0.80, 0.15, 0.05, 0.0),
            MixedKind::ReadHeavy => (0.20, 0.70, 0.10, 0.0),
            MixedKind::UpdateHeavy => (0.40, 0.15, 0.05, 0.40),
        }
    }

    /// Label used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            MixedKind::WriteHeavy => "write-heavy",
            MixedKind::ReadHeavy => "read-heavy",
            MixedKind::UpdateHeavy => "update-heavy",
        }
    }
}

/// A continuous stream of interleaved operations.
pub struct MixedWorkload {
    kind: MixedKind,
    generator: TweetGenerator,
    inserted: usize,
    lookup_k: Option<usize>,
    rng: StdRng,
    users: Zipf,
}

impl MixedWorkload {
    /// A mixed stream expected to run for about `expected_ops` operations
    /// (sizes the user pool).
    pub fn new(
        kind: MixedKind,
        stats: SeedStats,
        expected_ops: usize,
        lookup_k: Option<usize>,
        seed: u64,
    ) -> MixedWorkload {
        let (put, _, _, update) = kind.ratios();
        let expected_tweets = ((expected_ops as f64) * (put + update)).ceil() as usize;
        let pool = stats.user_pool(expected_tweets.max(1));
        MixedWorkload {
            kind,
            generator: TweetGenerator::new(stats.clone(), expected_tweets.max(1), seed),
            inserted: 0,
            lookup_k,
            rng: StdRng::seed_from_u64(seed ^ 0x5eed),
            users: Zipf::new(pool, stats.user_zipf_exponent),
        }
    }

    /// Which preset this stream follows.
    pub fn kind(&self) -> MixedKind {
        self.kind
    }

    /// The next operation (None only before the first insert for
    /// read-type draws, in which case a Put is substituted).
    pub fn next_op(&mut self) -> Operation {
        let (put, get, lookup, update) = self.kind.ratios();
        let total = put + get + lookup + update;
        let x: f64 = self.rng.random::<f64>() * total;
        if x < put || self.inserted == 0 {
            let t = self.generator.next_tweet();
            self.inserted += 1;
            Operation::Put(t)
        } else if x < put + update {
            // Re-insert an existing primary key with fresh content.
            let i = self.rng.random_range(0..self.inserted);
            let mut t = self.generator.next_tweet();
            t.id = format!("t{i:09}");
            Operation::Update(t)
        } else if x < put + update + get {
            let i = self.rng.random_range(0..self.inserted);
            Operation::Get {
                key: format!("t{i:09}"),
            }
        } else {
            let rank = self.users.sample(&mut self.rng);
            Operation::LookupUser {
                user: TweetGenerator::user_id(rank),
                k: self.lookup_k,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(n: usize) -> Vec<Tweet> {
        TweetGenerator::new(SeedStats::default(), n, 1).take(n)
    }

    #[test]
    fn static_queries_reference_loaded_data() {
        let tweets = load(500);
        let mut q = StaticQueries::new(&SeedStats::default(), &tweets, 2);
        for _ in 0..100 {
            match q.get() {
                Operation::Get { key } => {
                    let i: usize = key[1..].parse().unwrap();
                    assert!(i < 500);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match q.lookup_user(Some(10)) {
            Operation::LookupUser { user, k } => {
                assert!(user.starts_with('u'));
                assert_eq!(k, Some(10));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn range_queries_have_requested_spans() {
        let tweets = load(2000);
        let mut q = StaticQueries::new(&SeedStats::default(), &tweets, 3);
        match q.range_users(10, None) {
            Operation::RangeUsers { lo, hi, .. } => {
                let a: usize = lo[1..].parse().unwrap();
                let b: usize = hi[1..].parse().unwrap();
                assert_eq!(b - a + 1, 10);
            }
            other => panic!("unexpected {other:?}"),
        }
        match q.range_time(5, Some(7)) {
            Operation::RangeTime { lo, hi, k } => {
                assert_eq!(hi - lo + 1, 300);
                assert_eq!(k, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn mixed_ratios_approximately_hold() {
        for kind in [
            MixedKind::WriteHeavy,
            MixedKind::ReadHeavy,
            MixedKind::UpdateHeavy,
        ] {
            let mut w = MixedWorkload::new(kind, SeedStats::default(), 10_000, Some(10), 5);
            let mut counts = [0usize; 4];
            for _ in 0..10_000 {
                match w.next_op() {
                    Operation::Put(_) => counts[0] += 1,
                    Operation::Get { .. } => counts[1] += 1,
                    Operation::LookupUser { .. } => counts[2] += 1,
                    Operation::Update(_) => counts[3] += 1,
                    other => panic!("unexpected {other:?}"),
                }
            }
            let (put, get, lookup, update) = kind.ratios();
            let tol = 0.02 * 10_000.0;
            assert!(
                (counts[0] as f64 - put * 10_000.0).abs() < tol,
                "{kind:?} put"
            );
            assert!(
                (counts[1] as f64 - get * 10_000.0).abs() < tol,
                "{kind:?} get"
            );
            assert!(
                (counts[2] as f64 - lookup * 10_000.0).abs() < tol,
                "{kind:?} lookup"
            );
            assert!(
                (counts[3] as f64 - update * 10_000.0).abs() < tol,
                "{kind:?} update"
            );
        }
    }

    #[test]
    fn mixed_reads_only_touch_inserted_keys() {
        let mut w = MixedWorkload::new(MixedKind::ReadHeavy, SeedStats::default(), 2000, None, 6);
        let mut max_inserted = 0usize;
        for _ in 0..2000 {
            match w.next_op() {
                Operation::Put(t) => {
                    let i: usize = t.id[1..].parse().unwrap();
                    assert_eq!(i, max_inserted, "fresh ids are sequential");
                    max_inserted += 1;
                }
                Operation::Get { key } | Operation::Update(Tweet { id: key, .. }) => {
                    let i: usize = key[1..].parse().unwrap();
                    assert!(i < max_inserted);
                }
                Operation::LookupUser { .. } => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn update_heavy_emits_updates() {
        let mut w = MixedWorkload::new(
            MixedKind::UpdateHeavy,
            SeedStats::default(),
            1000,
            Some(5),
            7,
        );
        let has_update = (0..1000).any(|_| matches!(w.next_op(), Operation::Update(_)));
        assert!(has_update);
    }
}
