//! Regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--smoke] [--out DIR] <experiment>...
//! repro all                 # everything
//! repro fig8 fig10          # a subset
//! ```
//!
//! Each experiment prints its series as an aligned table and writes
//! `<out>/<id>.tsv` (default `results/`).

use ldbpp_bench::experiments::{
    appendix_c, chaos, fig10_11, fig12_15, fig7, fig8, fig9, net_ycsb, tables, write_scaling,
};
use ldbpp_bench::harness::Series;
use ldbpp_bench::setup::Scale;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--smoke] [--tweets N] [--seed S] [--out DIR] \
         [--server ADDR] [--clients N] <experiment>...\n\
         experiments: all fig7 fig8 fig9 fig10 fig11 fig12 tab3 tab5 appc1 appc2 ablations write_scaling net_ycsb chaos\n\
         --server/--clients apply to net_ycsb and chaos: drive an external\n\
         ldbpp_server instead of the in-process grid (chaos puts its fault\n\
         proxy in front of the given address)"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::default_scale();
    let mut out_dir = "results".to_string();
    let mut experiments: Vec<String> = Vec::new();
    let mut server_addr: Option<String> = None;
    let mut clients = 4usize;

    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => scale = Scale::smoke(),
            "--out" => match args.next() {
                Some(dir) => out_dir = dir,
                None => usage(),
            },
            "--server" => match args.next() {
                Some(addr) => server_addr = Some(addr),
                None => usage(),
            },
            "--clients" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n >= 1 => clients = n,
                _ => usage(),
            },
            "--tweets" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => scale.tweets = n,
                None => usage(),
            },
            "--seed" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => scale.seed = n,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            name => experiments.push(name.to_string()),
        }
    }
    if experiments.is_empty() {
        usage();
    }
    const KNOWN: [&str; 19] = [
        "net_ycsb",
        "chaos",
        "all",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig12_15",
        "tab3",
        "tab5",
        "appc1",
        "appc2",
        "ablations",
        "write_scaling",
    ];
    // Validate everything up front: a typo must not discard an hour of
    // completed experiments (results are only written at the end).
    for exp in &experiments {
        if !KNOWN.contains(&exp.as_str()) {
            eprintln!("unknown experiment '{exp}'");
            usage();
        }
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = [
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "tab3",
            "tab5",
            "appc1",
            "appc2",
            "ablations",
            "write_scaling",
            "net_ycsb",
            "chaos",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }

    let mut produced: Vec<Series> = Vec::new();
    for exp in &experiments {
        eprintln!(
            ">> running {exp} (tweets={}, seed={})",
            scale.tweets, scale.seed
        );
        let started = std::time::Instant::now();
        match exp.as_str() {
            "fig7" => produced.push(fig7::run(scale)),
            "fig8" => {
                produced.push(fig8::size(scale));
                produced.push(fig8::put_performance(scale));
                produced.push(fig8::get_performance(scale));
            }
            "fig9" => produced.push(fig9::run(scale)),
            "fig10" => {
                produced.push(fig10_11::fig10_lookup(scale));
                produced.push(fig10_11::fig10_rangelookup(scale));
            }
            "fig11" => {
                produced.push(fig10_11::fig11_lookup(scale));
                produced.push(fig10_11::fig11_rangelookup(scale));
            }
            "fig12" | "fig13" | "fig14" | "fig15" | "fig12_15" => {
                produced.push(fig12_15::run(scale))
            }
            "tab3" => produced.push(tables::tab3(scale)),
            "tab5" => produced.push(tables::tab5(scale)),
            "appc1" => produced.push(appendix_c::bloom_sweep(scale)),
            "appc2" => produced.push(appendix_c::compression(scale)),
            "write_scaling" => produced.push(write_scaling::run(scale)),
            "net_ycsb" => produced.push(match &server_addr {
                Some(addr) => net_ycsb::run_external(addr, clients, scale),
                None => net_ycsb::run(scale),
            }),
            "chaos" => produced.push(match &server_addr {
                Some(addr) => chaos::run_external(addr, scale),
                None => chaos::run(scale),
            }),
            "ablations" => {
                produced.push(appendix_c::zonemap_granularity(scale));
                produced.push(appendix_c::getlite_validation(scale));
                produced.push(appendix_c::cache_inflection(scale));
            }
            other => unreachable!("validated above: {other}"),
        }
        eprintln!("   {exp} done in {:.1}s", started.elapsed().as_secs_f64());
    }

    for series in &produced {
        println!("{}", series.to_table());
        match series.write_tsv(&out_dir) {
            Ok(path) => eprintln!("   wrote {path}"),
            Err(e) => eprintln!("   failed writing {}: {e}", series.id),
        }
    }
}
