//! Beyond the paper: contended write scaling under group commit and
//! hash sharding.
//!
//! N writer threads drive independent YCSB-style insert streams into a
//! [`SecondaryDb`] whose WAL fsync is made artificially expensive
//! ([`SyncLatencyEnv`]), the configuration where commit latency — not
//! CPU — bounds throughput. Two mechanisms fight that bound:
//!
//! * **Group commit** (DESIGN.md §14): concurrent batches on one engine
//!   share a single sync, so throughput scales with the mean group size.
//! * **Sharding** (DESIGN.md §15): with S engine shards there are S
//!   independent WALs, so up to S syncs proceed *in parallel* instead of
//!   serializing behind one writer queue.
//!
//! The sweep runs the full (shards × threads) grid and reports, per
//! cell: aggregate throughput, PUT p50/p99, mean group size, syncs per
//! write, and the full group-size histogram (summed over shards).

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, doc_of, Scale};
use ldbpp_core::{SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::{MemEnv, SyncLatencyEnv};
use ldbpp_workload::TweetGenerator;
use std::time::{Duration, Instant};

/// Shard counts of the scaling grid.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Writer-thread counts of the scaling grid.
const THREAD_COUNTS: [usize; 3] = [1, 4, 8];

/// Simulated fsync cost. Large against MemEnv's ~ns appends *and* the
/// per-put CPU work (record generation + memtable insert, ~100 µs), so
/// the run is firmly fsync-bound (the regime where group commit and
/// parallel per-shard WALs pay); small enough that the full grid stays
/// in benchtop seconds.
const SYNC_DELAY: Duration = Duration::from_micros(500);

/// Histogram bucket labels, mirroring `IoStats::group_size_bucket`.
const HIST_LABELS: [&str; 6] = ["g1", "g2", "g3_4", "g5_8", "g9_16", "g17p"];

/// One cell of the grid: `threads` writers insert `total_ops` records
/// (split evenly) into a fresh fsync-bound `shards`-shard database.
/// Returns the merged per-put latencies, the wall time, and the
/// I/O-stat delta summed over all shards.
fn run_cell(
    shards: usize,
    threads: usize,
    total_ops: usize,
    seed: u64,
) -> (LatencyStats, Duration, ldbpp_lsm::env::IoSnapshot) {
    let env = SyncLatencyEnv::new(MemEnv::new(), SYNC_DELAY);
    let mut base = bench_opts();
    // Fsync-bound config: sync the WAL on every commit, and keep flushes
    // rare (big memtable) so the sync cost dominates the measurement.
    base.wal_sync = true;
    base.write_buffer_size = 4 << 20;
    base.background_work = true;
    let db = SecondaryDb::open(
        env,
        "db",
        SecondaryDbOptions {
            base,
            shards,
            ..Default::default()
        },
        &[],
    )
    .unwrap();

    let before = db.primary_io();
    let per_thread = total_ops / threads;
    let started = Instant::now();
    let mut merged = LatencyStats::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = &db;
                s.spawn(move || {
                    // Per-thread generator and key prefix: disjoint streams,
                    // deterministic for a fixed (seed, thread) pair. Keys
                    // hash-route across shards per put, so every shard sees
                    // pressure from every writer.
                    let mut generator =
                        TweetGenerator::new(bench_stats(), per_thread, seed ^ (t as u64) << 32);
                    let mut lat = LatencyStats::new();
                    for _ in 0..per_thread {
                        let tweet = generator.next_tweet();
                        let key = format!("w{t}-{}", tweet.id);
                        let doc = doc_of(&tweet);
                        lat.time(|| {
                            db.put(&key, &doc).unwrap();
                        });
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
    });
    let elapsed = started.elapsed();
    let delta = db.primary_io().since(&before);
    (merged, elapsed, delta)
}

/// The full {1,2,4}-shard × {1,4,8}-writer scaling grid.
pub fn run(scale: Scale) -> Series {
    let mut headers = vec![
        "shards",
        "threads",
        "ops",
        "kops_s",
        "put_p50_us",
        "put_p99_us",
        "groups",
        "mean_group",
        "syncs_per_op",
    ];
    headers.extend(HIST_LABELS);
    let mut series = Series::new(
        "write_scaling",
        "Contended PUT throughput vs shards and writer threads (fsync-bound)",
        &headers,
    );

    // Fixed total work per cell so cells are comparable: more threads (or
    // shards) must win by grouping or parallel syncs, not by doing less.
    let total_ops = (scale.mixed_ops / 10).max(1_000);
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let (lat, elapsed, delta) = run_cell(shards, threads, total_ops, scale.seed);
            let ops = lat.len();
            let kops = ops as f64 / elapsed.as_secs_f64() / 1e3;
            let mean_group = delta.grouped_writes as f64 / delta.group_commits.max(1) as f64;
            let mut row = vec![
                shards.to_string(),
                threads.to_string(),
                ops.to_string(),
                fnum(kops),
                fnum(lat.percentile_us(0.50)),
                fnum(lat.percentile_us(0.99)),
                delta.group_commits.to_string(),
                fnum(mean_group),
                fnum(delta.wal_syncs as f64 / ops as f64),
            ];
            row.extend(delta.group_size_hist.iter().map(|c| c.to_string()));
            series.push(row);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(s: &Series, shards: &str, threads: &str, col: &str) -> f64 {
        s.value(|r| r[0] == shards && r[1] == threads, col)
            .unwrap_or_else(|| panic!("missing cell ({shards} shards, {threads} threads)"))
    }

    #[test]
    fn four_writers_at_least_double_one_writer_throughput() {
        let s = run(Scale::smoke());
        // Group commit on a single engine: fixed work, more threads, the
        // shared syncs must at least double aggregate throughput.
        let (one, four) = (cell(&s, "1", "1", "kops_s"), cell(&s, "1", "4", "kops_s"));
        assert!(
            four >= 2.0 * one,
            "group commit must amortize the fsync: 4 writers {four} kops/s \
             vs 1 writer {one} kops/s"
        );
        // In the fsync-bound config a lone writer pays one sync per write;
        // grouped writers pay strictly fewer.
        assert!(
            cell(&s, "1", "1", "syncs_per_op") > 0.9,
            "single writer should sync ~every write"
        );
        assert!(
            cell(&s, "1", "4", "syncs_per_op") < cell(&s, "1", "1", "syncs_per_op"),
            "groups must share syncs"
        );
        assert!(
            cell(&s, "1", "4", "mean_group") > 1.0,
            "no grouping happened at 4 writers"
        );
    }

    #[test]
    fn four_shards_beat_one_shard_at_eight_writers() {
        let s = run(Scale::smoke());
        // The ISSUE acceptance criterion: at 8 writers, 4 independent WALs
        // syncing in parallel must out-run one engine's single writer
        // queue, even though each shard forms smaller commit groups.
        let (one, four) = (cell(&s, "1", "8", "kops_s"), cell(&s, "4", "8", "kops_s"));
        assert!(
            four > one,
            "parallel per-shard syncs must beat one serialized queue: \
             4 shards {four} kops/s vs 1 shard {one} kops/s at 8 writers"
        );
        // Sharding wins by parallelism, not by skipping syncs: per-op sync
        // cost is higher (smaller groups), yet throughput is too.
        assert!(
            cell(&s, "4", "8", "mean_group") <= cell(&s, "1", "8", "mean_group"),
            "4 shards should split writers into smaller commit groups"
        );
    }
}
