//! Beyond the paper: contended write scaling under group commit.
//!
//! N writer threads drive independent YCSB-style insert streams into one
//! database whose WAL fsync is made artificially expensive
//! ([`SyncLatencyEnv`]), the configuration where commit latency — not
//! CPU — bounds throughput. Without group commit, aggregate throughput
//! would be flat in N (one sync per write, serialized); with the writer
//! queue of DESIGN.md §14, concurrent batches share one sync, so
//! throughput scales with the mean group size. The series reports, per
//! thread count: aggregate throughput, PUT p50/p99, mean group size,
//! syncs per write, and the full group-size histogram.

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, Scale};
use ldbpp_lsm::db::Db;
use ldbpp_lsm::env::{MemEnv, SyncLatencyEnv};
use ldbpp_workload::TweetGenerator;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Thread counts of the scaling curve.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Simulated fsync cost. Large against MemEnv's ~ns appends *and* the
/// per-put CPU work (record generation + memtable insert, ~100 µs), so
/// the run is firmly fsync-bound (the regime where group commit pays);
/// small enough that the full curve stays in benchtop seconds.
const SYNC_DELAY: Duration = Duration::from_micros(500);

/// Histogram bucket labels, mirroring `IoStats::group_size_bucket`.
const HIST_LABELS: [&str; 6] = ["g1", "g2", "g3_4", "g5_8", "g9_16", "g17p"];

/// One cell of the curve: `threads` writers insert `total_ops` records
/// (split evenly) into a fresh fsync-bound database. Returns the merged
/// per-put latencies, the wall time, and the I/O-stat delta.
fn run_cell(
    threads: usize,
    total_ops: usize,
    seed: u64,
) -> (LatencyStats, Duration, ldbpp_lsm::env::IoSnapshot) {
    let env = SyncLatencyEnv::new(MemEnv::new(), SYNC_DELAY);
    let mut opts = bench_opts();
    // Fsync-bound config: sync the WAL on every commit, and keep flushes
    // rare (big memtable) so the sync cost dominates the measurement.
    opts.wal_sync = true;
    opts.write_buffer_size = 4 << 20;
    opts.background_work = true;
    let db = Arc::new(Db::open(env, "db", opts).unwrap());

    let before = db.stats().snapshot();
    let per_thread = total_ops / threads;
    let started = Instant::now();
    let mut merged = LatencyStats::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = Arc::clone(&db);
                s.spawn(move || {
                    // Per-thread generator and key prefix: disjoint streams,
                    // deterministic for a fixed (seed, thread) pair.
                    let mut generator =
                        TweetGenerator::new(bench_stats(), per_thread, seed ^ (t as u64) << 32);
                    let mut lat = LatencyStats::new();
                    for _ in 0..per_thread {
                        let tweet = generator.next_tweet();
                        let key = format!("w{t}-{}", tweet.id);
                        let value = tweet.document().to_string();
                        lat.time(|| db.put(key.as_bytes(), value.as_bytes()).unwrap());
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().unwrap());
        }
    });
    let elapsed = started.elapsed();
    let delta = db.stats().snapshot().since(&before);
    (merged, elapsed, delta)
}

/// The full 1/2/4/8-writer scaling sweep.
pub fn run(scale: Scale) -> Series {
    let mut headers = vec![
        "threads",
        "ops",
        "kops_s",
        "put_p50_us",
        "put_p99_us",
        "groups",
        "mean_group",
        "syncs_per_op",
    ];
    headers.extend(HIST_LABELS);
    let mut series = Series::new(
        "write_scaling",
        "Contended PUT throughput vs writer threads (fsync-bound, group commit)",
        &headers,
    );

    // Fixed total work per cell so cells are comparable: more threads must
    // win by grouping, not by doing less per thread.
    let total_ops = (scale.mixed_ops / 10).max(1_000);
    for threads in THREAD_COUNTS {
        let (lat, elapsed, delta) = run_cell(threads, total_ops, scale.seed);
        let ops = lat.len();
        let kops = ops as f64 / elapsed.as_secs_f64() / 1e3;
        let mean_group = delta.grouped_writes as f64 / delta.group_commits.max(1) as f64;
        let mut row = vec![
            threads.to_string(),
            ops.to_string(),
            fnum(kops),
            fnum(lat.percentile_us(0.50)),
            fnum(lat.percentile_us(0.99)),
            delta.group_commits.to_string(),
            fnum(mean_group),
            fnum(delta.wal_syncs as f64 / ops as f64),
        ];
        row.extend(delta.group_size_hist.iter().map(|c| c.to_string()));
        series.push(row);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_writers_at_least_double_one_writer_throughput() {
        let s = run(Scale::smoke());
        let kops = |threads: f64| {
            s.value(|r| r[0].parse::<f64>().unwrap() == threads, "kops_s")
                .unwrap()
        };
        let (one, four) = (kops(1.0), kops(4.0));
        assert!(
            four >= 2.0 * one,
            "group commit must amortize the fsync: 4 writers {four} kops/s \
             vs 1 writer {one} kops/s"
        );
        // In the fsync-bound config a lone writer pays one sync per write;
        // grouped writers pay strictly fewer.
        let syncs = |threads: f64| {
            s.value(|r| r[0].parse::<f64>().unwrap() == threads, "syncs_per_op")
                .unwrap()
        };
        assert!(syncs(1.0) > 0.9, "single writer should sync ~every write");
        assert!(syncs(4.0) < syncs(1.0), "groups must share syncs");
        let mean_group = s.value(|r| r[0] == "4", "mean_group").unwrap();
        assert!(mean_group > 1.0, "no grouping happened at 4 writers");
    }
}
