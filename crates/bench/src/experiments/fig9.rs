//! Figure 9: PUT performance over time and cumulative index-compaction
//! I/O as the database grows (the experiment that exposes Eager's
//! exploding write amplification).

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, doc_of, Scale, VARIANTS};
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::TweetGenerator;

const WINDOWS: usize = 10;

/// Run the insert phase for one (variant, attribute) pair, sampling mean
/// PUT latency and cumulative index-table compaction+flush I/O per window.
fn run_attr(kind: IndexKind, attr: &'static str, scale: Scale, series: &mut Series) {
    let db = SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: bench_opts(),
            ..Default::default()
        },
        &[(attr, kind)],
    )
    .unwrap();
    let mut generator = TweetGenerator::new(bench_stats(), scale.tweets, scale.seed);
    let window = (scale.tweets / WINDOWS).max(1);
    let mut done = 0usize;
    while done < scale.tweets {
        let mut lat = LatencyStats::new();
        for _ in 0..window.min(scale.tweets - done) {
            let t = generator.next_tweet();
            let doc = doc_of(&t);
            lat.time(|| db.put(&t.id, &doc).unwrap());
            done += 1;
        }
        // Index-side write I/O: the stand-alone table's compaction + flush
        // blocks; the Embedded Index has no separate table (its cost rides
        // in the primary table, reported as 0 extra here, as in the paper).
        let cum_blocks = match db.index_stats_of(attr) {
            Some(stats) => {
                let s = stats.snapshot();
                s.compaction_io_blocks() + s.flush_blocks_written
            }
            None => 0,
        };
        series.push(vec![
            kind.name().to_string(),
            attr.to_string(),
            done.to_string(),
            fnum(lat.mean_us()),
            cum_blocks.to_string(),
        ]);
    }
}

/// Figures 9(a)(b)(c) in one sweep: per-window mean PUT latency and
/// cumulative index compaction I/O, for both attributes and all variants.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig9",
        "PUT latency and cumulative index compaction I/O over time",
        &[
            "variant",
            "attr",
            "inserted",
            "mean_put_us",
            "cum_index_io_blocks",
        ],
    );
    for kind in VARIANTS {
        run_attr(kind, "UserID", scale, &mut series);
        run_attr(kind, "CreationTime", scale, &mut series);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eager_compaction_io_dwarfs_lazy_on_userid() {
        let s = run(Scale::smoke());
        let final_io = |variant: &str, attr: &str| -> f64 {
            s.rows
                .iter()
                .rfind(|r| r[0] == variant && r[1] == attr)
                .unwrap()[4]
                .parse()
                .unwrap()
        };
        let eager = final_io("Eager", "UserID");
        let lazy = final_io("Lazy", "UserID");
        assert!(
            eager > 3.0 * lazy,
            "Eager UserID index I/O ({eager}) should dwarf Lazy ({lazy})"
        );
        // Embedded has no index table at all.
        assert_eq!(final_io("Embedded", "UserID"), 0.0);
    }

    #[test]
    fn eager_is_gentler_on_time_correlated_attr() {
        // "Eager Index shows good performance for the time-correlated
        // CreationTime index, because the posting list is created
        // sequentially": its I/O blow-up vs Lazy is much smaller there.
        let s = run(Scale::smoke());
        let final_io = |variant: &str, attr: &str| -> f64 {
            s.rows
                .iter()
                .rfind(|r| r[0] == variant && r[1] == attr)
                .unwrap()[4]
                .parse()
                .unwrap()
        };
        let ratio_uid = final_io("Eager", "UserID") / final_io("Lazy", "UserID").max(1.0);
        let ratio_ct =
            final_io("Eager", "CreationTime") / final_io("Lazy", "CreationTime").max(1.0);
        assert!(
            ratio_uid > ratio_ct,
            "Eager/Lazy I/O ratio should be worse for UserID ({ratio_uid:.1}) than \
             CreationTime ({ratio_ct:.1})"
        );
    }
}
