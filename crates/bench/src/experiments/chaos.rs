//! Beyond the paper: the networked YCSB mix of `net_ycsb` driven
//! *through a chaos proxy* (DESIGN.md §18) — what fault injection costs
//! a retrying client, and proof that the exactly-once machinery holds
//! while paying it.
//!
//! Each row is one fault profile (clean / drop / delay / drop+delay)
//! with every fault decision derived from the run's seed. The client
//! threads use [`RetryClient`] — reconnect, bounded backoff, idempotent
//! write sessions — so every operation eventually succeeds; the
//! faulted columns report what that persistence cost (retries,
//! redials) next to the injected-fault count. The in-process mode then
//! closes the loop: the shard sequence clock must equal the number of
//! acked writes (no lost ack, no duplicate apply) and
//! `check_integrity` must come back clean, reported in the
//! `exactly_once` column.
//!
//! `run_external` drives an already-running `ldbpp_server` through a
//! local proxy (`repro --server ADDR chaos`) — the CI chaos smoke
//! stage's mode. The server's internals are not reachable from here,
//! so `exactly_once` is verified by reading every acked key back over
//! a clean connection instead of by the sequence clock.

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, doc_of, Scale};
use ldbpp_core::{SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_proto::{
    ChaosProxy, DirectedFaults, NetFaultPlan, RetryClient, RetryPolicy, Server, ServerConfig,
    WireValue, WriteOp,
};
use ldbpp_workload::TweetGenerator;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Client connections per cell.
const CLIENTS: usize = 4;

/// Records preloaded over BATCH before measurement.
const PRELOAD: usize = 200;

/// Writes per BATCH frame during the preload (one idempotency unit).
const BATCH_SIZE: usize = 50;

/// The named fault profiles of the grid. Rates are per-mille per frame
/// in *both* directions; they are tuned so a budgeted retry client
/// always gets through while every profile visibly bites.
fn profiles(seed: u64) -> Vec<(&'static str, NetFaultPlan)> {
    let drop = DirectedFaults {
        drop_per_mille: 20,
        ..DirectedFaults::default()
    };
    let delay = DirectedFaults {
        delay_per_mille: 100,
        delay: Duration::from_micros(500),
        ..DirectedFaults::default()
    };
    let both = DirectedFaults {
        drop_per_mille: 15,
        delay_per_mille: 80,
        delay: Duration::from_micros(500),
        ..DirectedFaults::default()
    };
    let plan = |dir: &DirectedFaults| NetFaultPlan {
        seed,
        to_server: dir.clone(),
        to_client: dir.clone(),
    };
    vec![
        ("clean", NetFaultPlan::clean(seed)),
        ("drop", plan(&drop)),
        ("delay", plan(&delay)),
        ("drop+delay", plan(&both)),
    ]
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 12,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(40),
        timeout: Duration::from_millis(150),
    }
}

/// What one cell measured, summed over its client threads.
#[derive(Default)]
struct CellStats {
    lat: LatencyStats,
    acked_puts: u64,
    lookup_hits: u64,
    attempts: u64,
    retries: u64,
    reconnects: u64,
}

/// BATCH-load the warm dataset through the proxy; returns the keys and
/// users the measured GET/LOOKUP streams target, plus the acked write
/// count (every batched put allocates one sequence).
fn preload(addr: SocketAddr, seed: u64) -> (Vec<String>, Vec<String>, u64) {
    let mut client = RetryClient::with_session(addr.to_string(), retry_policy(), seed ^ 0xb00d);
    let mut generator = TweetGenerator::new(bench_stats(), PRELOAD, seed);
    let mut keys = Vec::with_capacity(PRELOAD);
    let mut users = Vec::with_capacity(PRELOAD);
    let mut pending: Vec<WriteOp> = Vec::with_capacity(BATCH_SIZE);
    let mut acked = 0u64;
    for _ in 0..PRELOAD {
        let tweet = generator.next_tweet();
        let key = format!("warm-{}", tweet.id);
        pending.push(WriteOp::Put {
            pk: key.clone().into_bytes(),
            doc: doc_of(&tweet).to_bytes(),
        });
        keys.push(key);
        users.push(tweet.user.clone());
        if pending.len() == BATCH_SIZE {
            let n = pending.len() as u64;
            client
                .batch(std::mem::take(&mut pending))
                .expect("batch load");
            acked += n;
        }
    }
    if !pending.is_empty() {
        let n = pending.len() as u64;
        client.batch(pending).expect("batch load tail");
        acked += n;
    }
    (keys, users, acked)
}

/// One client thread's measured stream: the 70/20/10 PUT/GET/LOOKUP mix
/// of `net_ycsb`, but through a [`RetryClient`] so injected faults cost
/// retries rather than failures.
fn client_stream(
    addr: SocketAddr,
    thread: usize,
    ops: usize,
    seed: u64,
    keys: &[String],
    users: &[String],
) -> CellStats {
    let session = seed ^ ((thread as u64 + 1) << 40);
    let mut client = RetryClient::with_session(addr.to_string(), retry_policy(), session);
    let mut generator = TweetGenerator::new(bench_stats(), ops, seed ^ ((thread as u64) << 32));
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (thread as u64 + 1);
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut stats = CellStats::default();
    for _ in 0..ops {
        let op = next() % 10;
        let started = Instant::now();
        match op {
            0..=6 => {
                let tweet = generator.next_tweet();
                let key = format!("c{thread}-{}", tweet.id);
                client
                    .put(key.as_bytes(), &doc_of(&tweet).to_bytes())
                    .expect("put through chaos");
                stats.acked_puts += 1;
            }
            7..=8 => {
                let key = &keys[next() as usize % keys.len()];
                let got = client.get(key.as_bytes()).expect("get through chaos");
                assert!(got.is_some(), "preloaded key {key} missing");
            }
            _ => {
                let user = &users[next() as usize % users.len()];
                let hits = client
                    .lookup("UserID", WireValue::Str(user.clone()), Some(10))
                    .expect("lookup through chaos");
                stats.lookup_hits += hits.len() as u64;
            }
        }
        stats.lat.record(started.elapsed());
    }
    let retry = client.retry_stats();
    stats.attempts = retry.attempts;
    stats.retries = retry.retries;
    stats.reconnects = retry.reconnects;
    stats
}

/// Drive the mix through the proxy at `addr`; returns the merged cell
/// stats, the measured-phase wall time, and the preloaded keys (for
/// clean-link read-back verification). `acked_writes` accumulates
/// every write the workload got acked (preload included).
fn drive(
    addr: SocketAddr,
    total_ops: usize,
    seed: u64,
    acked_writes: &mut u64,
) -> (CellStats, Duration, Vec<String>) {
    let (keys, users, preloaded) = preload(addr, seed);
    *acked_writes += preloaded;
    let per_client = (total_ops / CLIENTS).max(1);
    let started = Instant::now();
    let mut merged = CellStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let (keys, users) = (&keys, &users);
                s.spawn(move || client_stream(addr, t, per_client, seed, keys, users))
            })
            .collect();
        for h in handles {
            let cell = h.join().expect("client thread");
            merged.lat.merge(&cell.lat);
            merged.acked_puts += cell.acked_puts;
            merged.lookup_hits += cell.lookup_hits;
            merged.attempts += cell.attempts;
            merged.retries += cell.retries;
            merged.reconnects += cell.reconnects;
        }
    });
    let elapsed = started.elapsed();
    *acked_writes += merged.acked_puts;
    (merged, elapsed, keys)
}

fn headers() -> [&'static str; 10] {
    [
        "profile",
        "clients",
        "ops",
        "kops_s",
        "p50_us",
        "p99_us",
        "retries",
        "reconnects",
        "faults",
        "exactly_once",
    ]
}

#[allow(clippy::too_many_arguments)]
fn row(
    profile: &str,
    stats: &CellStats,
    elapsed: Duration,
    faults: u64,
    exactly_once: &str,
) -> Vec<String> {
    let ops = stats.lat.len();
    vec![
        profile.to_string(),
        CLIENTS.to_string(),
        ops.to_string(),
        fnum(ops as f64 / elapsed.as_secs_f64() / 1e3),
        fnum(stats.lat.percentile_us(0.50)),
        fnum(stats.lat.percentile_us(0.99)),
        stats.retries.to_string(),
        stats.reconnects.to_string(),
        faults.to_string(),
        exactly_once.to_string(),
    ]
}

/// The in-process grid: a fresh 2-shard `MemEnv` server per profile,
/// with the sequence-clock exactly-once check and a final integrity
/// sweep closing each row.
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "chaos",
        "Networked YCSB mix through a chaos proxy: fault profiles vs retry cost, \
         with the exactly-once invariant checked per row",
        &headers(),
    );
    let total_ops = (scale.mixed_ops / 8).max(400);
    for (profile, plan) in profiles(scale.seed) {
        let db = Arc::new(
            SecondaryDb::open(
                MemEnv::new(),
                "db",
                SecondaryDbOptions {
                    base: bench_opts(),
                    shards: 2,
                    ..Default::default()
                },
                &[("UserID", ldbpp_core::IndexKind::LazyStandalone)],
            )
            .expect("open database"),
        );
        let handle = Server::start(
            Arc::clone(&db),
            "127.0.0.1:0",
            ServerConfig {
                read_poll: Duration::from_millis(10),
                ..ServerConfig::default()
            },
        )
        .expect("start server");
        let mut proxy = ChaosProxy::start(handle.local_addr(), plan).expect("start proxy");
        let mut acked_writes = 0u64;
        let (stats, elapsed, _keys) =
            drive(proxy.local_addr(), total_ops, scale.seed, &mut acked_writes);
        let faults = proxy.stats().faults_injected();
        proxy.stop();

        // Graceful shutdown over a clean connection, then the invariant.
        let mut ctl = RetryClient::with_session(
            handle.local_addr().to_string(),
            retry_policy(),
            scale.seed ^ 0xc7f,
        );
        let _ = ctl.call(&ldbpp_proto::Request::Shutdown);
        handle.join().expect("join server");
        let seq_clock = (0..db.shard_count())
            .filter_map(|i| db.shard_primary(i))
            .map(|d| d.last_sequence())
            .max()
            .unwrap_or(0);
        assert_eq!(
            seq_clock, acked_writes,
            "{profile}: sequence clock disagrees with acked writes"
        );
        db.wait_for_background_idle().expect("quiesce");
        assert!(
            db.check_integrity().is_clean(),
            "{profile}: integrity violations after chaos"
        );
        series.push(row(profile, &stats, elapsed, faults, "yes"));
    }
    series
}

/// One proxy-per-profile pass against an external, already-running
/// server — the CI chaos smoke stage's mode. Exactly-once is verified
/// by reading every acked key back over a clean (un-proxied)
/// connection; the server's sequence clock is not reachable from here.
pub fn run_external(addr: &str, scale: Scale) -> Series {
    let upstream: SocketAddr = addr.parse().expect("--server must be host:port");
    let mut series = Series::new(
        "chaos_external",
        "Networked YCSB mix through a chaos proxy against an external ldbpp_server",
        &headers(),
    );
    let total_ops = (scale.mixed_ops / 8).max(400);
    for (profile, plan) in [
        ("clean", NetFaultPlan::clean(scale.seed)),
        (
            "drop+delay",
            profiles(scale.seed).pop().expect("profiles is non-empty").1,
        ),
    ] {
        let mut proxy = ChaosProxy::start(upstream, plan).expect("start proxy");
        let mut acked_writes = 0u64;
        let (stats, elapsed, keys) =
            drive(proxy.local_addr(), total_ops, scale.seed, &mut acked_writes);
        let faults = proxy.stats().faults_injected();
        proxy.stop();

        // Clean-link verification: every acked preload key must still
        // read back once the chaos is gone.
        let mut direct =
            RetryClient::with_session(upstream.to_string(), retry_policy(), scale.seed ^ 0xfee1);
        for key in &keys {
            let got = direct.get(key.as_bytes()).expect("verify get");
            assert!(got.is_some(), "{profile}: acked key {key} lost after chaos");
        }
        series.push(row(profile, &stats, elapsed, faults, "read-back"));
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_profile_cell_is_sound() {
        // One in-process cell under the drop profile at a tiny scale:
        // the mix must complete, the exactly-once invariant must hold,
        // and the proxy must have actually dropped something (20‰ over
        // hundreds of frames makes an all-clean run a broken injector,
        // not bad luck).
        let db = Arc::new(
            SecondaryDb::open(
                MemEnv::new(),
                "db",
                SecondaryDbOptions {
                    base: bench_opts(),
                    shards: 2,
                    ..Default::default()
                },
                &[("UserID", ldbpp_core::IndexKind::LazyStandalone)],
            )
            .expect("open"),
        );
        let handle = Server::start(
            Arc::clone(&db),
            "127.0.0.1:0",
            ServerConfig {
                read_poll: Duration::from_millis(10),
                ..ServerConfig::default()
            },
        )
        .expect("start");
        let plan = profiles(7)
            .into_iter()
            .find(|(name, _)| *name == "drop")
            .expect("drop profile exists")
            .1;
        let mut proxy = ChaosProxy::start(handle.local_addr(), plan).expect("proxy");
        let mut acked_writes = 0u64;
        let (stats, elapsed, _keys) = drive(proxy.local_addr(), 200, 7, &mut acked_writes);
        let faults = proxy.stats().faults_injected();
        proxy.stop();
        assert_eq!(stats.lat.len(), 200);
        assert!(faults > 0, "the drop profile never dropped a frame");
        assert!(elapsed.as_secs_f64() > 0.0);

        let mut ctl =
            RetryClient::with_session(handle.local_addr().to_string(), retry_policy(), 0xc7f);
        let _ = ctl.call(&ldbpp_proto::Request::Shutdown);
        handle.join().expect("join");
        let seq_clock = (0..db.shard_count())
            .filter_map(|i| db.shard_primary(i))
            .map(|d| d.last_sequence())
            .max()
            .unwrap_or(0);
        assert_eq!(seq_clock, acked_writes, "lost ack or duplicate apply");
        assert!(db.check_integrity().is_clean());
    }
}
