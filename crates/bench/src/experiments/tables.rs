//! Tables 3 and 5: measured I/O against the analytical cost models.

use crate::harness::{fnum, Series};
use crate::setup::{bench_opts, bench_stats, load_static, Scale};
use ldbpp_common::json::Value;
use ldbpp_core::cost;
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::{Operation, StaticQueries};

fn open(kind: IndexKind) -> SecondaryDb {
    SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: bench_opts(),
            ..Default::default()
        },
        &[("UserID", kind), ("CreationTime", kind)],
    )
    .unwrap()
}

/// Table 3: Embedded-Index LOOKUP cost — measured blocks per lookup vs the
/// `(K+ε) + fp·Σblocks` model.
pub fn tab3(scale: Scale) -> Series {
    let mut series = Series::new(
        "tab3",
        "Embedded Index: measured vs modelled LOOKUP block reads",
        &[
            "topk",
            "measured_blocks_per_op",
            "model_upper_bound",
            "within_model",
            "bloom_checks_per_op",
            "total_blocks",
        ],
    );
    let db = open(IndexKind::Embedded);
    let tweets = load_static(&db, scale.tweets, scale.seed);
    let version = db.primary().current_version();
    let total_blocks: u64 = version.files.iter().flatten().map(|f| f.num_blocks).sum();
    let fp = cost::bloom_fp_rate(bench_opts().bloom_bits_per_key as f64);

    for k in [Some(1usize), Some(10), None] {
        let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 3);
        let before = db.primary_io();
        let mut matched = 0usize;
        let n = scale.lookups;
        for _ in 0..n {
            if let Operation::LookupUser { user, .. } = queries.lookup_user(k) {
                matched += db.lookup("UserID", &Value::str(user), k).unwrap().len();
            }
        }
        let io = db.primary_io().since(&before);
        let measured = io.block_reads as f64 / n as f64;
        // Model: K' matched blocks + epsilon (end-of-level scan slack,
        // bounded here by matched count) + fp · total blocks.
        let kprime = matched as f64 / n as f64;
        let model = kprime + kprime + fp * total_blocks as f64 + 1.0;
        series.push(vec![
            k.map(|v| v.to_string()).unwrap_or("all".into()),
            fnum(measured),
            fnum(model),
            (measured <= model * 2.0).to_string(),
            fnum(io.bloom_checks as f64 / n as f64),
            total_blocks.to_string(),
        ]);
    }
    series
}

/// Table 5: stand-alone index I/O — index reads per LOOKUP and measured
/// write amplification vs the WAMF model.
pub fn tab5(scale: Scale) -> Series {
    let mut series = Series::new(
        "tab5",
        "Stand-alone indexes: lookup reads and write amplification vs model",
        &[
            "variant",
            "index_reads_per_lookup",
            "model_index_reads",
            "data_reads_per_lookup",
            "index_write_bytes_per_put",
            "model_wamf",
            "levels",
        ],
    );
    for (kind, model_kind) in [
        (IndexKind::EagerStandalone, cost::StandaloneKind::Eager),
        (IndexKind::LazyStandalone, cost::StandaloneKind::Lazy),
        (
            IndexKind::CompositeStandalone,
            cost::StandaloneKind::Composite,
        ),
    ] {
        let db = open(kind);
        let tweets = load_static(&db, scale.tweets, scale.seed);
        db.flush().unwrap();

        // Write cost of the UserID index table, normalized per PUT: total
        // physical bytes (WAL + flush + compaction). Eager's lists make
        // this balloon — its WAL already carries the whole rewritten list
        // every time — which is exactly the paper's WAMF effect.
        let stats = db.index_stats_of("UserID").unwrap().snapshot();
        let physical =
            stats.wal_bytes_written + stats.flush_bytes_written + stats.compaction_bytes_written;
        let write_bytes_per_put = physical as f64 / scale.tweets as f64;

        // Model inputs.
        let levels = {
            // Count populated levels of the UserID index table via its size
            // footprint (approximate: derive from primary's shape).
            let v = db.primary().current_version();
            v.deepest_populated() as u64
        };
        let avg_list = bench_stats().avg_tweets_per_user;
        let model_wamf = match model_kind {
            cost::StandaloneKind::Eager => cost::wamf_eager(avg_list, levels),
            _ => cost::wamf_lazy(levels) as f64,
        };

        // Lookup I/O split between index table and data table.
        let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 4);
        let idx_before = db.index_io();
        let data_before = db.primary_io();
        let n = scale.lookups;
        for _ in 0..n {
            if let Operation::LookupUser { user, .. } = queries.lookup_user(Some(10)) {
                let _ = db.lookup("UserID", &Value::str(user), Some(10)).unwrap();
            }
        }
        let idx_reads = db.index_io().since(&idx_before).block_reads as f64 / n as f64;
        let data_reads = db.primary_io().since(&data_before).block_reads as f64 / n as f64;
        let (_, model_idx) = cost::standalone_lookup_reads(model_kind, 10, levels);

        series.push(vec![
            kind.name().to_string(),
            fnum(idx_reads),
            fnum(model_idx as f64),
            fnum(data_reads),
            fnum(write_bytes_per_put),
            fnum(model_wamf),
            levels.to_string(),
        ]);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab3_measured_within_model() {
        let s = tab3(Scale::smoke());
        for row in &s.rows {
            assert_eq!(row[3], "true", "measured within model bound: {row:?}");
        }
    }

    #[test]
    fn tab5_eager_wamf_dominates() {
        let s = tab5(Scale::smoke());
        let wb = |v: &str| s.value(|r| r[0] == v, "index_write_bytes_per_put").unwrap();
        assert!(
            wb("Eager") > 2.0 * wb("Lazy"),
            "Eager write bytes/put {} ≫ Lazy {}",
            wb("Eager"),
            wb("Lazy")
        );
        // Eager answers lookups from fewer index reads than Lazy/Composite
        // (one list read vs per-level probing).
        let idx = |v: &str| s.value(|r| r[0] == v, "index_reads_per_lookup").unwrap();
        assert!(idx("Eager") <= idx("Lazy") + 0.5);
    }
}
