//! Figure 8: overhead of each index variant on basic operations —
//! (a) database size, (b) PUT cost decomposed per index, (c) GET latency.

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, doc_of, Scale, VARIANTS};
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::{StaticQueries, TweetGenerator};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn open_variant(kind: Option<IndexKind>) -> SecondaryDb {
    let specs: Vec<(&str, IndexKind)> = match kind {
        None => vec![
            ("UserID", IndexKind::None),
            ("CreationTime", IndexKind::None),
        ],
        Some(k) => vec![("UserID", k), ("CreationTime", k)],
    };
    SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: bench_opts(),
            ..Default::default()
        },
        &specs,
    )
    .unwrap()
}

/// Figure 8(a): primary-table and per-index sizes after the static load.
pub fn size(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig8a",
        "database size after static load (bytes)",
        &[
            "variant",
            "primary",
            "UserID_index",
            "CreationTime_index",
            "total",
        ],
    );
    for kind in std::iter::once(None).chain(VARIANTS.into_iter().map(Some)) {
        let db = open_variant(kind);
        let mut generator = TweetGenerator::new(bench_stats(), scale.tweets, scale.seed);
        for _ in 0..scale.tweets {
            let t = generator.next_tweet();
            db.put(&t.id, &doc_of(&t)).unwrap();
        }
        db.flush().unwrap();
        let per_attr: std::collections::HashMap<String, u64> =
            db.index_bytes_by_attr().into_iter().collect();
        let name = kind.map(|k| k.name()).unwrap_or("NoIndex");
        series.push(vec![
            name.to_string(),
            db.primary_bytes().to_string(),
            per_attr.get("UserID").copied().unwrap_or(0).to_string(),
            per_attr
                .get("CreationTime")
                .copied()
                .unwrap_or(0)
                .to_string(),
            db.total_bytes().to_string(),
        ]);
    }
    series
}

/// Figure 8(b): mean PUT latency decomposed into primary-table time and
/// each index's overhead (isolated by differencing single-index builds, as
/// in the paper).
pub fn put_performance(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig8b",
        "PUT cost decomposition (mean µs/op)",
        &[
            "variant",
            "primary_us",
            "CreationTime_index_us",
            "UserID_index_us",
            "total_us",
        ],
    );

    let time_load = |specs: &[(&str, IndexKind)]| -> f64 {
        let db = SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base: bench_opts(),
                ..Default::default()
            },
            specs,
        )
        .unwrap();
        let mut generator = TweetGenerator::new(bench_stats(), scale.tweets, scale.seed);
        let mut lat = LatencyStats::new();
        for _ in 0..scale.tweets {
            let t = generator.next_tweet();
            let doc = doc_of(&t);
            lat.time(|| db.put(&t.id, &doc).unwrap());
        }
        lat.mean_us()
    };

    let baseline = time_load(&[]);
    for kind in VARIANTS {
        let with_ct = time_load(&[("CreationTime", kind)]);
        let with_both = time_load(&[("CreationTime", kind), ("UserID", kind)]);
        let ct_cost = (with_ct - baseline).max(0.0);
        let uid_cost = (with_both - with_ct).max(0.0);
        series.push(vec![
            kind.name().to_string(),
            fnum(baseline),
            fnum(ct_cost),
            fnum(uid_cost),
            fnum(with_both),
        ]);
    }
    series.push(vec![
        "NoIndex".to_string(),
        fnum(baseline),
        "0".to_string(),
        "0".to_string(),
        fnum(baseline),
    ]);
    series
}

/// Figure 8(c): mean GET latency per variant on the static dataset.
pub fn get_performance(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig8c",
        "GET latency on static data (mean µs/op)",
        &["variant", "get_us", "block_reads_per_get"],
    );
    for kind in std::iter::once(None).chain(VARIANTS.into_iter().map(Some)) {
        let db = open_variant(kind);
        let tweets = crate::setup::load_static(&db, scale.tweets, scale.seed);
        let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 1);
        let mut lat = LatencyStats::new();
        let before = db.primary_io();
        let mut rng = StdRng::seed_from_u64(scale.seed + 2);
        for _ in 0..scale.gets {
            let op = queries.get();
            if let ldbpp_workload::Operation::Get { key } = op {
                // Sprinkle a few misses like a real workload.
                let key = if rng.random::<f64>() < 0.05 {
                    format!("missing{key}")
                } else {
                    key
                };
                lat.time(|| db.get(&key).unwrap());
            }
        }
        let reads = db.primary_io().since(&before).block_reads as f64 / scale.gets as f64;
        let name = kind.map(|k| k.name()).unwrap_or("NoIndex");
        series.push(vec![name.to_string(), fnum(lat.mean_us()), fnum(reads)]);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_is_most_space_efficient_index() {
        let s = size(Scale::smoke());
        let total = |v: &str| s.value(|r| r[0] == v, "total").unwrap();
        let noindex = total("NoIndex");
        let embedded = total("Embedded");
        let lazy = total("Lazy");
        let composite = total("Composite");
        // Embedded ≈ NoIndex (filters only), stand-alone pay extra tables.
        assert!(embedded < lazy, "embedded {embedded} < lazy {lazy}");
        assert!(embedded < composite);
        assert!(embedded < noindex * 1.25);
        // Stand-alone index tables are non-trivial.
        let uid = s.value(|r| r[0] == "Lazy", "UserID_index").unwrap();
        assert!(uid > 0.0);
        let uid_e = s.value(|r| r[0] == "Embedded", "UserID_index").unwrap();
        assert_eq!(uid_e, 0.0);
    }

    #[test]
    fn gets_unaffected_by_index_choice() {
        let s = get_performance(Scale::smoke());
        let reads = |v: &str| s.value(|r| r[0] == v, "block_reads_per_get").unwrap();
        // "All the index variants have identical GET performance."
        let all = [
            reads("NoIndex"),
            reads("Embedded"),
            reads("Eager"),
            reads("Lazy"),
            reads("Composite"),
        ];
        for pair in all.windows(2) {
            assert!(
                (pair[0] - pair[1]).abs() < 0.5,
                "GET block reads should match: {all:?}"
            );
        }
    }
}
