//! Beyond the paper: YCSB-style throughput over the wire protocol.
//!
//! N client threads each hold one TCP connection to an `ldbpp_server`
//! (DESIGN.md §16) and drive a mixed op stream — 70% PUT, 20% GET, 10%
//! LOOKUP(UserID, K=10) — after a BATCH-loaded warm dataset. Two modes:
//!
//! * [`run`]: the full {1,2,4}-shard × {1,4,8}-client grid against
//!   in-process servers over `MemEnv`, so the grid isolates protocol +
//!   server-threading cost from disk noise. This is the experiment
//!   `EXPERIMENTS.md` tabulates.
//! * [`run_external`]: one row against an already-running server
//!   (`repro --server ADDR --clients N net_ycsb`) — the CI smoke stage
//!   drives a real `ldbpp_server` process on `DiskEnv` this way.
//!
//! Fixed total work per cell, as in `write_scaling`: more clients (or
//! shards) must win by concurrency, not by doing less.

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, doc_of, Scale};
use ldbpp_core::{SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_proto::{Client, Server, ServerConfig, WireValue, WriteOp};
use ldbpp_workload::TweetGenerator;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard counts of the in-process grid.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Client-connection counts of the grid.
const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];

/// Records preloaded over BATCH before measurement (GET/LOOKUP targets).
const PRELOAD: usize = 500;

/// Writes per BATCH frame during the preload.
const BATCH_SIZE: usize = 100;

/// Per-thread measured latencies, split by op for the tail columns.
#[derive(Default)]
struct OpStats {
    all: LatencyStats,
    put: LatencyStats,
    get: LatencyStats,
    lookup: LatencyStats,
    lookup_hits: u64,
}

impl OpStats {
    fn merge(&mut self, other: &OpStats) {
        self.all.merge(&other.all);
        self.put.merge(&other.put);
        self.get.merge(&other.get);
        self.lookup.merge(&other.lookup);
        self.lookup_hits += other.lookup_hits;
    }
}

/// BATCH-load `PRELOAD` tweets through one connection; returns the keys
/// and user ids the measured GET/LOOKUP streams will target.
fn preload(addr: SocketAddr, seed: u64) -> (Vec<String>, Vec<String>) {
    let mut client =
        Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect for preload");
    let mut generator = TweetGenerator::new(bench_stats(), PRELOAD, seed);
    let mut keys = Vec::with_capacity(PRELOAD);
    let mut users = Vec::with_capacity(PRELOAD);
    let mut pending: Vec<WriteOp> = Vec::with_capacity(BATCH_SIZE);
    for _ in 0..PRELOAD {
        let tweet = generator.next_tweet();
        let key = format!("warm-{}", tweet.id);
        pending.push(WriteOp::Put {
            pk: key.clone().into_bytes(),
            doc: doc_of(&tweet).to_bytes(),
        });
        keys.push(key);
        users.push(tweet.user.clone());
        if pending.len() == BATCH_SIZE {
            let (applied, _) = client
                .batch(std::mem::take(&mut pending))
                .expect("batch load");
            assert_eq!(applied as usize, BATCH_SIZE);
        }
    }
    if !pending.is_empty() {
        client.batch(pending).expect("batch load tail");
    }
    (keys, users)
}

/// One client thread's measured stream: `ops` operations in a 70/20/10
/// PUT/GET/LOOKUP mix, deterministic for a fixed `(seed, thread)` pair.
fn client_stream(
    addr: SocketAddr,
    thread: usize,
    ops: usize,
    seed: u64,
    keys: &[String],
    users: &[String],
) -> OpStats {
    let mut client =
        Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect client");
    let mut generator = TweetGenerator::new(bench_stats(), ops, seed ^ ((thread as u64) << 32));
    // xorshift for op selection, disjoint from the tweet generator's RNG.
    let mut rng = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (thread as u64 + 1);
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut stats = OpStats::default();
    for _ in 0..ops {
        let op = next() % 10;
        let started = Instant::now();
        match op {
            0..=6 => {
                let tweet = generator.next_tweet();
                let key = format!("c{thread}-{}", tweet.id);
                client
                    .put(key.as_bytes(), &doc_of(&tweet).to_bytes())
                    .expect("put");
                stats.put.record(started.elapsed());
            }
            7..=8 => {
                let key = &keys[next() as usize % keys.len()];
                let got = client.get(key.as_bytes()).expect("get");
                assert!(got.is_some(), "preloaded key {key} missing");
                stats.get.record(started.elapsed());
            }
            _ => {
                let user = &users[next() as usize % users.len()];
                let hits = client
                    .lookup("UserID", WireValue::Str(user.clone()), Some(10))
                    .expect("lookup");
                stats.lookup_hits += hits.len() as u64;
                stats.lookup.record(started.elapsed());
            }
        }
        stats.all.record(started.elapsed());
    }
    stats
}

/// Drive `clients` concurrent connections for `total_ops` operations
/// (split evenly) against the server at `addr`; returns the merged stats
/// and the wall time of the measured phase.
fn drive(addr: SocketAddr, clients: usize, total_ops: usize, seed: u64) -> (OpStats, Duration) {
    let (keys, users) = preload(addr, seed);
    let per_client = (total_ops / clients).max(1);
    let started = Instant::now();
    let mut merged = OpStats::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|t| {
                let (keys, users) = (&keys, &users);
                s.spawn(move || client_stream(addr, t, per_client, seed, keys, users))
            })
            .collect();
        for h in handles {
            merged.merge(&h.join().expect("client thread"));
        }
    });
    (merged, started.elapsed())
}

fn headers() -> [&'static str; 10] {
    [
        "shards",
        "clients",
        "ops",
        "kops_s",
        "p50_us",
        "p99_us",
        "put_p99_us",
        "get_p99_us",
        "lookup_p99_us",
        "lookup_hits",
    ]
}

fn row(shards: &str, clients: usize, stats: &OpStats, elapsed: Duration) -> Vec<String> {
    let ops = stats.all.len();
    vec![
        shards.to_string(),
        clients.to_string(),
        ops.to_string(),
        fnum(ops as f64 / elapsed.as_secs_f64() / 1e3),
        fnum(stats.all.percentile_us(0.50)),
        fnum(stats.all.percentile_us(0.99)),
        fnum(stats.put.percentile_us(0.99)),
        fnum(stats.get.percentile_us(0.99)),
        fnum(stats.lookup.percentile_us(0.99)),
        stats.lookup_hits.to_string(),
    ]
}

/// The full {1,2,4}-shard × {1,4,8}-client grid against in-process
/// servers (fresh `MemEnv` database per cell).
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "net_ycsb",
        "Networked YCSB mix (70/20/10 put/get/lookup) vs shards and client connections",
        &headers(),
    );
    let total_ops = (scale.mixed_ops / 4).max(800);
    for shards in SHARD_COUNTS {
        for clients in CLIENT_COUNTS {
            let db = Arc::new(
                SecondaryDb::open(
                    MemEnv::new(),
                    "db",
                    SecondaryDbOptions {
                        base: bench_opts(),
                        shards,
                        ..Default::default()
                    },
                    &[("UserID", ldbpp_core::IndexKind::LazyStandalone)],
                )
                .expect("open database"),
            );
            let handle = Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default())
                .expect("start server");
            let addr = handle.local_addr();
            let (stats, elapsed) = drive(addr, clients, total_ops, scale.seed);
            series.push(row(&shards.to_string(), clients, &stats, elapsed));
            let mut shutter = Client::connect_with_timeout(addr, Duration::from_secs(60))
                .expect("connect for shutdown");
            shutter.shutdown().expect("graceful shutdown");
            handle.join().expect("join server");
        }
    }
    series
}

/// One row against an external, already-running server — the CI smoke
/// stage's mode. The server's shard count is not knowable from here, so
/// the column reports `ext`.
pub fn run_external(addr: &str, clients: usize, scale: Scale) -> Series {
    let addr: SocketAddr = addr.parse().expect("--server must be host:port");
    let mut series = Series::new(
        "net_ycsb_external",
        "Networked YCSB mix against an external ldbpp_server",
        &headers(),
    );
    let total_ops = (scale.mixed_ops / 4).max(800);
    let (stats, elapsed) = drive(addr, clients, total_ops, scale.seed);
    series.push(row("ext", clients, &stats, elapsed));
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_grid_cell_is_sound() {
        // One in-process cell at the smallest scale: the mix must execute
        // end-to-end, the lookups must see the preloaded users, and the
        // throughput must be finite and positive.
        let db = Arc::new(
            SecondaryDb::open(
                MemEnv::new(),
                "db",
                SecondaryDbOptions {
                    base: bench_opts(),
                    shards: 2,
                    ..Default::default()
                },
                &[("UserID", ldbpp_core::IndexKind::LazyStandalone)],
            )
            .expect("open"),
        );
        let handle =
            Server::start(Arc::clone(&db), "127.0.0.1:0", ServerConfig::default()).expect("start");
        let addr = handle.local_addr();
        let (stats, elapsed) = drive(addr, 4, 400, 7);
        assert_eq!(stats.all.len(), 400);
        assert!(!stats.put.is_empty() && !stats.get.is_empty() && !stats.lookup.is_empty());
        assert!(stats.lookup_hits > 0, "lookups must reach the preload");
        assert!(elapsed.as_secs_f64() > 0.0);
        let mut shutter =
            Client::connect_with_timeout(addr, Duration::from_secs(60)).expect("connect");
        shutter.shutdown().expect("shutdown");
        handle.join().expect("join");
        assert!(db.check_integrity().is_clean());
    }
}
