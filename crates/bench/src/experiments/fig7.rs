//! Figure 7: rank-frequency distribution of the UserID attribute in the
//! (synthetic stand-in for the) seed dataset.

use crate::harness::Series;
use crate::setup::{bench_stats, Scale};
use ldbpp_workload::TweetGenerator;
use std::collections::HashMap;

/// Generate the dataset and report tweets-per-user by user rank.
pub fn run(scale: Scale) -> Series {
    let mut generator = TweetGenerator::new(bench_stats(), scale.tweets, scale.seed);
    let mut counts: HashMap<String, u64> = HashMap::new();
    for _ in 0..scale.tweets {
        let t = generator.next_tweet();
        *counts.entry(t.user).or_insert(0) += 1;
    }
    let mut freqs: Vec<u64> = counts.values().copied().collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));

    let mut series = Series::new(
        "fig7",
        "UserID rank-frequency distribution (seed model)",
        &["user_rank", "tweets"],
    );
    // Log-spaced ranks, like the paper's log-log plot.
    let mut rank = 1usize;
    while rank <= freqs.len() {
        series.push(vec![rank.to_string(), freqs[rank - 1].to_string()]);
        rank = (rank * 2).max(rank + 1);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_heavy_tailed() {
        let s = run(Scale::smoke());
        assert!(s.rows.len() > 3);
        let first: f64 = s.rows.first().unwrap()[1].parse().unwrap();
        let last: f64 = s.rows.last().unwrap()[1].parse().unwrap();
        assert!(first > 20.0 * last, "head {first} should dwarf tail {last}");
    }
}
