//! Figures 12–15: Mixed workloads — overall mean time per operation over
//! time (Fig 12) and cumulative disk I/O decomposed into compaction, GET
//! and LOOKUP (Figs 13, 14, 15 for the write-, read- and update-heavy
//! mixes).

use crate::harness::{fnum, Series};
use crate::setup::{bench_opts, bench_stats, doc_of, Scale, VARIANTS_NO_EAGER};
use ldbpp_common::json::Value;
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::{MixedKind, MixedWorkload, Operation};
use std::time::Instant;

const WINDOWS: usize = 10;

/// Per-window measurements for one (workload, variant) run.
fn run_one(kind: IndexKind, mixed: MixedKind, scale: Scale, series: &mut Series) {
    // Only the UserID attribute is indexed and queried (per the paper).
    let db = SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: bench_opts(),
            ..Default::default()
        },
        &[("UserID", kind)],
    )
    .unwrap();
    let mut workload =
        MixedWorkload::new(mixed, bench_stats(), scale.mixed_ops, Some(10), scale.seed);
    let window = (scale.mixed_ops / WINDOWS).max(1);

    let mut done = 0usize;
    let mut cum_get_blocks = 0u64;
    let mut cum_lookup_blocks = 0u64;
    while done < scale.mixed_ops {
        let start = Instant::now();
        let mut window_ops = 0usize;
        for _ in 0..window.min(scale.mixed_ops - done) {
            let op = workload.next_op();
            match op {
                Operation::Put(t) | Operation::Update(t) => {
                    db.put(&t.id, &doc_of(&t)).unwrap();
                }
                Operation::Get { key } => {
                    let before = db.primary_io().block_reads;
                    let _ = db.get(&key).unwrap();
                    cum_get_blocks += db.primary_io().block_reads - before;
                }
                Operation::LookupUser { user, k } => {
                    let before = db.primary_io().block_reads + db.index_io().block_reads;
                    let _ = db.lookup("UserID", &Value::str(user), k).unwrap();
                    cum_lookup_blocks +=
                        db.primary_io().block_reads + db.index_io().block_reads - before;
                }
                _ => {}
            }
            window_ops += 1;
            done += 1;
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / window_ops.max(1) as f64;
        let p = db.primary_io();
        let i = db.index_io();
        let cum_compaction = p.compaction_io_blocks()
            + p.flush_blocks_written
            + i.compaction_io_blocks()
            + i.flush_blocks_written;
        series.push(vec![
            mixed.name().to_string(),
            kind.name().to_string(),
            done.to_string(),
            fnum(mean_us),
            cum_compaction.to_string(),
            cum_get_blocks.to_string(),
            cum_lookup_blocks.to_string(),
        ]);
    }
}

/// The full Mixed sweep (Figures 12–15 in one table).
pub fn run(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig12_15",
        "Mixed workloads: mean op latency and cumulative I/O (compaction / GET / LOOKUP)",
        &[
            "workload",
            "variant",
            "ops",
            "mean_op_us",
            "cum_compaction_blocks",
            "cum_get_blocks",
            "cum_lookup_blocks",
        ],
    );
    for mixed in [
        MixedKind::WriteHeavy,
        MixedKind::ReadHeavy,
        MixedKind::UpdateHeavy,
    ] {
        for kind in VARIANTS_NO_EAGER {
            run_one(kind, mixed, scale, &mut series);
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn last_row<'a>(s: &'a Series, workload: &str, variant: &str) -> &'a Vec<String> {
        s.rows
            .iter()
            .rfind(|r| r[0] == workload && r[1] == variant)
            .unwrap()
    }

    #[test]
    fn mixed_shapes() {
        let s = run(Scale::smoke());
        // Every (workload, variant) pair produced samples and did work.
        for workload in ["write-heavy", "read-heavy", "update-heavy"] {
            for variant in ["Embedded", "Lazy", "Composite"] {
                let row = last_row(&s, workload, variant);
                let compaction: u64 = row[4].parse().unwrap();
                assert!(compaction > 0, "{workload}/{variant} compacted");
            }
        }
    }

    #[test]
    fn embedded_lookup_io_exceeds_standalone_in_read_heavy() {
        let s = run(Scale::smoke());
        let lookup_blocks =
            |variant: &str| -> f64 { last_row(&s, "read-heavy", variant)[6].parse().unwrap() };
        let emb = lookup_blocks("Embedded");
        let lazy = lookup_blocks("Lazy");
        assert!(
            emb >= lazy,
            "Embedded lookup I/O ({emb}) ≥ Lazy ({lazy}) on non-time-correlated attr"
        );
    }
}
