//! Figures 10 and 11: LOOKUP and RANGELOOKUP response times by variant,
//! top-K and selectivity — for the non-time-correlated `UserID` index
//! (Fig 10) and the time-correlated `CreationTime` index (Fig 11).

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, load_static, Scale, VARIANTS};
use ldbpp_common::json::Value;
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::{IoSnapshot, MemEnv};
use ldbpp_workload::{Operation, StaticQueries, Tweet};

/// The paper's top-K settings: small, medium, unlimited.
pub const TOPKS: [Option<usize>; 3] = [Some(1), Some(10), None];

struct VariantDb {
    kind_name: String,
    db: SecondaryDb,
    tweets: Vec<Tweet>,
}

fn build_all(scale: Scale, include_eager: bool, include_noindex: bool) -> Vec<VariantDb> {
    let mut out = Vec::new();
    let mut kinds: Vec<(String, IndexKind)> = Vec::new();
    if include_noindex {
        kinds.push(("NoIndex".into(), IndexKind::None));
    }
    for kind in VARIANTS {
        if kind == IndexKind::EagerStandalone && !include_eager {
            continue;
        }
        kinds.push((kind.name().into(), kind));
    }
    for (name, kind) in kinds {
        let db = SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base: bench_opts(),
                ..Default::default()
            },
            &[("UserID", kind), ("CreationTime", kind)],
        )
        .unwrap();
        let tweets = load_static(&db, scale.tweets, scale.seed);
        out.push(VariantDb {
            kind_name: name,
            db,
            tweets,
        });
    }
    out
}

fn total_io(db: &SecondaryDb) -> IoSnapshot {
    let p = db.primary_io();
    let i = db.index_io();
    IoSnapshot {
        block_reads: p.block_reads + i.block_reads,
        bloom_checks: p.bloom_checks + i.bloom_checks,
        ..p
    }
}

fn push_measurement(
    series: &mut Series,
    variant: &str,
    query: &str,
    topk_label: &str,
    lat: &LatencyStats,
    io: IoSnapshot,
    ops: usize,
) {
    let b = lat.summary();
    series.push(vec![
        variant.to_string(),
        query.to_string(),
        topk_label.to_string(),
        fnum(b.min),
        fnum(b.p25),
        fnum(b.median),
        fnum(b.p75),
        fnum(b.max),
        fnum(b.mean),
        fnum(io.block_reads as f64 / ops.max(1) as f64),
        fnum(io.bloom_checks as f64 / ops.max(1) as f64),
    ]);
}

const HEADERS: [&str; 11] = [
    "variant",
    "query",
    "topk",
    "min_us",
    "p25_us",
    "median_us",
    "p75_us",
    "max_us",
    "mean_us",
    "blocks_per_op",
    "bloom_checks_per_op",
];

fn topk_label(k: Option<usize>) -> String {
    match k {
        Some(k) => k.to_string(),
        None => "all".to_string(),
    }
}

/// Figure 10(a): `LOOKUP(UserID, u, K)` latencies.
pub fn fig10_lookup(scale: Scale) -> Series {
    let mut series = Series::new("fig10a", "UserID LOOKUP response time by top-K", &HEADERS);
    for v in build_all(scale, false, true) {
        for k in TOPKS {
            let mut queries = StaticQueries::new(&bench_stats(), &v.tweets, scale.seed + 7);
            let mut lat = LatencyStats::new();
            let before = total_io(&v.db);
            // The NoIndex full scan is orders of magnitude slower; sample
            // fewer queries for it, like the paper's smaller NoIndex runs.
            let n = if v.kind_name == "NoIndex" {
                (scale.lookups / 10).max(3)
            } else {
                scale.lookups
            };
            for _ in 0..n {
                if let Operation::LookupUser { user, .. } = queries.lookup_user(k) {
                    lat.time(|| v.db.lookup("UserID", &Value::str(user), k).unwrap());
                }
            }
            let io = total_io(&v.db).since(&before);
            push_measurement(
                &mut series,
                &v.kind_name,
                "lookup",
                &topk_label(k),
                &lat,
                io,
                n,
            );
        }
    }
    series
}

/// Figures 10(b)(c): `RANGELOOKUP(UserID, ..)` for two selectivities
/// (10 and 100 users).
pub fn fig10_rangelookup(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig10bc",
        "UserID RANGELOOKUP response time by selectivity and top-K",
        &HEADERS,
    );
    for v in build_all(scale, false, true) {
        for span in [10usize, 100] {
            for k in TOPKS {
                let mut queries = StaticQueries::new(&bench_stats(), &v.tweets, scale.seed + 8);
                let mut lat = LatencyStats::new();
                let before = total_io(&v.db);
                let n = if v.kind_name == "NoIndex" {
                    (scale.range_lookups / 5).max(2)
                } else {
                    scale.range_lookups
                };
                for _ in 0..n {
                    if let Operation::RangeUsers { lo, hi, .. } = queries.range_users(span, k) {
                        lat.time(|| {
                            v.db.range_lookup("UserID", &Value::str(lo), &Value::str(hi), k)
                                .unwrap()
                        });
                    }
                }
                let io = total_io(&v.db).since(&before);
                push_measurement(
                    &mut series,
                    &v.kind_name,
                    &format!("range_{span}_users"),
                    &topk_label(k),
                    &lat,
                    io,
                    n,
                );
            }
        }
    }
    series
}

/// Figure 11(a): `LOOKUP(CreationTime, t, K)` (time-correlated; Eager
/// included as in the paper).
pub fn fig11_lookup(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig11a",
        "CreationTime LOOKUP response time by top-K",
        &HEADERS,
    );
    for v in build_all(scale, true, true) {
        for k in TOPKS {
            let mut lat = LatencyStats::new();
            let before = total_io(&v.db);
            // Look up exact seconds that exist in the data.
            let step = (v.tweets.len() / scale.lookups.max(1)).max(1);
            let mut n = 0;
            for t in v.tweets.iter().step_by(step).take(scale.lookups) {
                let ts = Value::Int(t.creation_time);
                lat.time(|| v.db.lookup("CreationTime", &ts, k).unwrap());
                n += 1;
            }
            let io = total_io(&v.db).since(&before);
            push_measurement(
                &mut series,
                &v.kind_name,
                "lookup",
                &topk_label(k),
                &lat,
                io,
                n,
            );
        }
    }
    series
}

/// Figures 11(b)(c): `RANGELOOKUP(CreationTime, ..)` for 1-minute and
/// 10-minute windows.
pub fn fig11_rangelookup(scale: Scale) -> Series {
    let mut series = Series::new(
        "fig11bc",
        "CreationTime RANGELOOKUP response time by selectivity and top-K",
        &HEADERS,
    );
    for v in build_all(scale, true, true) {
        // Selectivity as a fraction of the stream's time span, so the
        // paper's narrow/wide split survives dataset rescaling.
        for (sel_label, fraction) in [("narrow_0.5pct", 0.005f64), ("wide_5pct", 0.05)] {
            for k in TOPKS {
                let mut queries = StaticQueries::new(&bench_stats(), &v.tweets, scale.seed + 9);
                let mut lat = LatencyStats::new();
                let before = total_io(&v.db);
                for _ in 0..scale.range_lookups {
                    if let Operation::RangeTime { lo, hi, .. } =
                        queries.range_time_fraction(fraction, k)
                    {
                        lat.time(|| {
                            v.db.range_lookup("CreationTime", &Value::Int(lo), &Value::Int(hi), k)
                                .unwrap()
                        });
                    }
                }
                let io = total_io(&v.db).since(&before);
                push_measurement(
                    &mut series,
                    &v.kind_name,
                    &format!("range_{sel_label}"),
                    &topk_label(k),
                    &lat,
                    io,
                    scale.range_lookups,
                );
            }
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(s: &Series, variant: &str, query: &str, topk: &str) -> f64 {
        s.value(
            |r| r[0] == variant && r[1] == query && r[2] == topk,
            "blocks_per_op",
        )
        .unwrap()
    }

    #[test]
    fn fig10_shapes() {
        let s = fig10_lookup(Scale::smoke());
        // Small top-K: Lazy stops at the first level with K results, while
        // Embedded must finish scanning a whole level and Composite must
        // traverse everything.
        let emb1 = blocks(&s, "Embedded", "lookup", "1");
        let lazy1 = blocks(&s, "Lazy", "lookup", "1");
        let comp1 = blocks(&s, "Composite", "lookup", "1");
        // At smoke scale both can bottom out at the same sub-block cost, so
        // ties are allowed; Lazy must never be *worse*.
        assert!(
            lazy1 <= emb1,
            "Lazy K=1 ({lazy1}) should not lose to Embedded K=1 ({emb1})"
        );
        assert!(
            comp1 >= lazy1,
            "Composite K=1 ({comp1}) ≥ Lazy K=1 ({lazy1})"
        );
        // Lazy's cost grows with K (more validation GETs).
        let lazy_all = blocks(&s, "Lazy", "lookup", "all");
        assert!(lazy1 <= lazy_all + 0.5);
        // NoIndex reads everything; any index beats it at K=1.
        let noindex1 = blocks(&s, "NoIndex", "lookup", "1");
        assert!(noindex1 > lazy1 && noindex1 > emb1);
    }

    #[test]
    fn fig11_zone_maps_prune_time_ranges() {
        let s = fig11_rangelookup(Scale::smoke());
        let emb = blocks(&s, "Embedded", "range_narrow_0.5pct", "all");
        let noindex = blocks(&s, "NoIndex", "range_narrow_0.5pct", "all");
        assert!(
            emb < noindex / 4.0,
            "time-correlated zone maps must prune: embedded {emb} vs noindex {noindex}"
        );
    }
}
