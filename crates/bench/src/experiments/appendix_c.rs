//! Appendix C: bloom-filter length sweep (C.1) and compression on/off
//! (C.2), plus the ablations DESIGN.md calls out (file-level-only zone
//! maps, full-GET validation).

use crate::harness::{fnum, LatencyStats, Series};
use crate::setup::{bench_opts, bench_stats, load_static, Scale};
use ldbpp_common::json::Value;
use ldbpp_core::{IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::compress::Compression;
use ldbpp_lsm::db::DbOptions;
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::{Operation, StaticQueries};
use std::sync::Arc;

fn open_with_opts(kind: IndexKind, opts: DbOptions) -> (Arc<MemEnv>, SecondaryDb) {
    let env = MemEnv::new();
    let db = SecondaryDb::open(
        env.clone() as Arc<dyn ldbpp_lsm::env::Env>,
        "db",
        SecondaryDbOptions {
            base: opts,
            ..Default::default()
        },
        &[("UserID", kind), ("CreationTime", kind)],
    )
    .unwrap();
    (env, db)
}

/// Appendix C.1: Embedded-Index LOOKUP cost as bloom bits-per-key varies.
pub fn bloom_sweep(scale: Scale) -> Series {
    let mut series = Series::new(
        "appc1",
        "Embedded LOOKUP vs bloom filter length (bits per key)",
        &[
            "bits_per_key",
            "mean_lookup_us",
            "blocks_per_op",
            "bloom_checks_per_op",
            "bloom_negative_rate",
        ],
    );
    for bits in [2usize, 5, 10, 15, 20] {
        let opts = DbOptions {
            bloom_bits_per_key: bits,
            ..bench_opts()
        };
        let (_env, db) = open_with_opts(IndexKind::Embedded, opts);
        let tweets = load_static(&db, scale.tweets, scale.seed);
        let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 5);
        let mut lat = LatencyStats::new();
        let before = db.primary_io();
        for _ in 0..scale.lookups {
            if let Operation::LookupUser { user, .. } = queries.lookup_user(Some(10)) {
                lat.time(|| db.lookup("UserID", &Value::str(user), Some(10)).unwrap());
            }
        }
        let io = db.primary_io().since(&before);
        let neg_rate = io.bloom_negatives as f64 / io.bloom_checks.max(1) as f64;
        series.push(vec![
            bits.to_string(),
            fnum(lat.mean_us()),
            fnum(io.block_reads as f64 / scale.lookups as f64),
            fnum(io.bloom_checks as f64 / scale.lookups as f64),
            fnum(neg_rate),
        ]);
    }
    series
}

/// Appendix C.2: compression on vs off — database size and query latency.
pub fn compression(scale: Scale) -> Series {
    let mut series = Series::new(
        "appc2",
        "Snaplite compression vs uncompressed blocks",
        &[
            "variant",
            "compression",
            "total_bytes",
            "mean_lookup_us",
            "blocks_per_op",
        ],
    );
    for kind in [IndexKind::Embedded, IndexKind::LazyStandalone] {
        for (label, compression) in [
            ("snaplite", Compression::Snaplite),
            ("none", Compression::None),
        ] {
            let opts = DbOptions {
                compression,
                ..bench_opts()
            };
            let (_env, db) = open_with_opts(kind, opts);
            let tweets = load_static(&db, scale.tweets, scale.seed);
            db.flush().unwrap();
            let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 6);
            let mut lat = LatencyStats::new();
            let before_p = db.primary_io();
            let before_i = db.index_io();
            for _ in 0..scale.lookups {
                if let Operation::LookupUser { user, .. } = queries.lookup_user(Some(10)) {
                    lat.time(|| db.lookup("UserID", &Value::str(user), Some(10)).unwrap());
                }
            }
            let blocks = db.primary_io().since(&before_p).block_reads
                + db.index_io().since(&before_i).block_reads;
            series.push(vec![
                kind.name().to_string(),
                label.to_string(),
                db.total_bytes().to_string(),
                fnum(lat.mean_us()),
                fnum(blocks as f64 / scale.lookups as f64),
            ]);
        }
    }
    series
}

/// Ablation: file-level-only zone maps (AsterixDB style) vs per-block zone
/// maps, on time-correlated range lookups — measured as blocks read with
/// block-level pruning disabled by querying with bloom-only paths.
///
/// Implemented by comparing the Embedded Index against a variant database
/// whose block size equals its file size (one block per file ⇒ block-level
/// zone maps degenerate to file-level ones).
pub fn zonemap_granularity(scale: Scale) -> Series {
    let mut series = Series::new(
        "abl_zonemap",
        "Ablation: per-block vs file-level-only zone maps (CreationTime ranges)",
        &["granularity", "blocks_per_op", "mean_us"],
    );
    for (label, opts) in [
        ("per-block", bench_opts()),
        (
            "file-level-only",
            DbOptions {
                // One block per file: the per-block zone map degenerates to
                // the file-level map, reproducing AsterixDB's coarser design.
                block_size: bench_opts().max_file_size,
                ..bench_opts()
            },
        ),
    ] {
        let (_env, db) = open_with_opts(IndexKind::Embedded, opts);
        let tweets = load_static(&db, scale.tweets, scale.seed);
        let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 10);
        let mut lat = LatencyStats::new();
        let before = db.primary_io();
        for _ in 0..scale.range_lookups {
            if let Operation::RangeTime { lo, hi, .. } =
                queries.range_time_fraction(0.005, Some(10))
            {
                lat.time(|| {
                    db.range_lookup("CreationTime", &Value::Int(lo), &Value::Int(hi), Some(10))
                        .unwrap()
                });
            }
        }
        let io = db.primary_io().since(&before);
        series.push(vec![
            label.to_string(),
            fnum(io.block_read_bytes as f64 / scale.range_lookups as f64),
            fnum(lat.mean_us()),
        ]);
    }
    series
}

/// Ablation: the three Embedded validity-check modes — the paper's
/// metadata-only `GetLite`, our confirmed variant (exact), and the
/// unoptimized full-GET baseline the paper compares against.
pub fn getlite_validation(scale: Scale) -> Series {
    use ldbpp_core::indexes::EmbeddedValidation;
    let mut series = Series::new(
        "abl_getlite",
        "Ablation: Embedded validity check — GetLite vs confirmed vs full GET",
        &["mode", "blocks_per_op", "mean_us", "hits_per_op"],
    );
    for (label, mode) in [
        ("getlite_only", EmbeddedValidation::GetLiteOnly),
        ("getlite_confirmed", EmbeddedValidation::GetLiteConfirmed),
        ("full_get", EmbeddedValidation::FullGet),
    ] {
        let db = SecondaryDb::open(
            MemEnv::new(),
            "db",
            SecondaryDbOptions {
                base: bench_opts(),
                embedded_validation: mode,
                ..Default::default()
            },
            &[("UserID", IndexKind::Embedded)],
        )
        .unwrap();
        let tweets = load_static(&db, scale.tweets, scale.seed);
        // Mix in updates so plenty of stale versions exist to invalidate.
        for t in tweets.iter().step_by(5) {
            db.put(&t.id, &crate::setup::doc_of(t)).unwrap();
        }
        let mut queries = StaticQueries::new(&bench_stats(), &tweets, scale.seed + 11);
        let mut lat = LatencyStats::new();
        let before = db.primary_io();
        let mut hits = 0usize;
        for _ in 0..scale.lookups {
            if let Operation::LookupUser { user, .. } = queries.lookup_user(Some(10)) {
                hits += lat
                    .time(|| db.lookup("UserID", &Value::str(user), Some(10)).unwrap())
                    .len();
            }
        }
        let io = db.primary_io().since(&before);
        series.push(vec![
            label.to_string(),
            fnum(io.block_reads as f64 / scale.lookups as f64),
            fnum(lat.mean_us()),
            fnum(hits as f64 / scale.lookups as f64),
        ]);
    }
    series
}

/// The Figure-12 buffer-cache effect: run the write-heavy mix with a
/// fixed-size block cache standing in for the OS page cache; as the
/// database outgrows it the hit rate collapses and per-op cost jumps —
/// the paper: "The inflection point occurs ... which is the RAM size".
pub fn cache_inflection(scale: Scale) -> Series {
    let mut series = Series::new(
        "abl_cache",
        "Block-cache (simulated OS page cache) inflection under write-heavy mix",
        &["ops", "db_bytes", "cache_hit_rate", "mean_op_us"],
    );
    let opts = DbOptions {
        // Cache sized to hold only the early database.
        block_cache_bytes: 256 << 10,
        ..bench_opts()
    };
    let db = SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: opts,
            ..Default::default()
        },
        &[("UserID", IndexKind::LazyStandalone)],
    )
    .unwrap();
    let mut workload = ldbpp_workload::MixedWorkload::new(
        ldbpp_workload::MixedKind::WriteHeavy,
        bench_stats(),
        scale.mixed_ops,
        Some(10),
        scale.seed,
    );
    let window = (scale.mixed_ops / 10).max(1);
    let mut done = 0;
    let mut last = db.primary_io();
    while done < scale.mixed_ops {
        let start = std::time::Instant::now();
        for _ in 0..window.min(scale.mixed_ops - done) {
            match workload.next_op() {
                Operation::Put(t) | Operation::Update(t) => {
                    db.put(&t.id, &crate::setup::doc_of(&t)).unwrap();
                }
                Operation::Get { key } => {
                    let _ = db.get(&key).unwrap();
                }
                Operation::LookupUser { user, k } => {
                    let _ = db.lookup("UserID", &Value::str(user), k).unwrap();
                }
                _ => {}
            }
            done += 1;
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / window as f64;
        let now = db.primary_io();
        let d = now.since(&last);
        last = now;
        let hit_rate = d.cache_hits as f64 / (d.cache_hits + d.block_reads).max(1) as f64;
        series.push(vec![
            done.to_string(),
            db.total_bytes().to_string(),
            fnum(hit_rate),
            fnum(mean_us),
        ]);
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_bloom_bits_fewer_block_reads() {
        let s = bloom_sweep(Scale::smoke());
        let blocks = |bits: &str| s.value(|r| r[0] == bits, "blocks_per_op").unwrap();
        assert!(
            blocks("2") > blocks("20"),
            "2 bits ({}) should read more blocks than 20 bits ({})",
            blocks("2"),
            blocks("20")
        );
        let neg = |bits: &str| s.value(|r| r[0] == bits, "bloom_negative_rate").unwrap();
        assert!(neg("20") > neg("2"), "longer filters reject more probes");
    }

    #[test]
    fn compression_shrinks_databases() {
        let s = compression(Scale::smoke());
        for kind in ["Embedded", "Lazy"] {
            let size = |c: &str| {
                s.value(|r| r[0] == kind && r[1] == c, "total_bytes")
                    .unwrap()
            };
            assert!(
                size("snaplite") < size("none"),
                "{kind}: compressed {} < raw {}",
                size("snaplite"),
                size("none")
            );
        }
    }

    #[test]
    fn getlite_saves_io_over_full_get() {
        let s = getlite_validation(Scale::smoke());
        let blocks = |m: &str| s.value(|r| r[0] == m, "blocks_per_op").unwrap();
        let hits = |m: &str| s.value(|r| r[0] == m, "hits_per_op").unwrap();
        assert!(
            blocks("getlite_only") <= blocks("full_get"),
            "GetLite ({}) must not read more than full GET ({})",
            blocks("getlite_only"),
            blocks("full_get")
        );
        // Confirmed mode returns exactly as many hits as the exact baseline.
        assert!((hits("getlite_confirmed") - hits("full_get")).abs() < 1e-9);
        // Pure GetLite may lose a few hits to bloom false positives but
        // never gains any.
        assert!(hits("getlite_only") <= hits("full_get") + 1e-9);
    }

    #[test]
    fn cache_hit_rate_degrades_as_db_outgrows_cache() {
        let s = cache_inflection(Scale::smoke());
        let first: f64 = s.rows[1][2].parse().unwrap();
        let last: f64 = s.rows.last().unwrap()[2].parse().unwrap();
        assert!(
            last < first,
            "hit rate should fall as the db outgrows the cache: {first} -> {last}"
        );
    }

    #[test]
    fn per_block_zone_maps_read_fewer_bytes() {
        let s = zonemap_granularity(Scale::smoke());
        let per_block = s.value(|r| r[0] == "per-block", "blocks_per_op").unwrap();
        let file_only = s
            .value(|r| r[0] == "file-level-only", "blocks_per_op")
            .unwrap();
        assert!(
            per_block < file_only,
            "finer zone maps must reduce bytes read: {per_block} vs {file_only}"
        );
    }
}
