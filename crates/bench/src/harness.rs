//! Measurement and reporting plumbing shared by all experiments.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Latency samples with the paper's box-plot summary (quartiles +
/// whiskers, Figure 10/11 style).
#[derive(Debug, Default, Clone)]
pub struct LatencyStats {
    samples_us: Vec<f64>,
}

impl LatencyStats {
    /// Empty collection.
    pub fn new() -> LatencyStats {
        LatencyStats::default()
    }

    /// Record one duration.
    pub fn record(&mut self, d: Duration) {
        self.samples_us.push(d.as_secs_f64() * 1e6);
    }

    /// Time a closure and record it, passing its output through.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(start.elapsed());
        out
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean in microseconds.
    pub fn mean_us(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }

    fn percentile(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let idx = (p * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    /// Arbitrary percentile in microseconds, `p` in `[0, 1]` (e.g. `0.99`
    /// for the tail the write-scaling curves report).
    pub fn percentile_us(&self, p: f64) -> f64 {
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self::percentile(&sorted, p)
    }

    /// Fold another collection's samples into this one (used to combine
    /// per-thread stats from a contended run).
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }

    /// `(min, p25, median, p75, max, mean)` in microseconds — the
    /// box-and-whisker numbers of Figures 10 and 11.
    pub fn summary(&self) -> BoxSummary {
        let mut sorted = self.samples_us.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        BoxSummary {
            min: sorted.first().copied().unwrap_or(0.0),
            p25: Self::percentile(&sorted, 0.25),
            median: Self::percentile(&sorted, 0.50),
            p75: Self::percentile(&sorted, 0.75),
            max: sorted.last().copied().unwrap_or(0.0),
            mean: self.mean_us(),
        }
    }
}

/// Box-plot summary in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxSummary {
    pub min: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub max: f64,
    pub mean: f64,
}

/// One output table: a named grid of rows, printable and TSV-serializable.
#[derive(Debug, Clone)]
pub struct Series {
    /// Experiment id, e.g. `fig10a`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Series {
    /// New empty series.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Series {
        Series {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.headers.len());
        self.rows.push(row);
    }

    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as TSV (headers + rows).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }

    /// Write `results/<id>.tsv` under `dir`, returning the path.
    pub fn write_tsv(&self, dir: &str) -> std::io::Result<String> {
        std::fs::create_dir_all(dir)?;
        let path = format!("{dir}/{}.tsv", self.id);
        std::fs::write(&path, self.to_tsv())?;
        Ok(path)
    }

    /// Look up a numeric cell by row predicate and column name — used by
    /// tests asserting qualitative shapes.
    pub fn value(&self, row_match: impl Fn(&[String]) -> bool, column: &str) -> Option<f64> {
        let col = self.headers.iter().position(|h| h == column)?;
        self.rows
            .iter()
            .find(|r| row_match(r))
            .and_then(|r| r[col].parse().ok())
    }
}

/// Format a float compactly for table cells.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_summary() {
        let mut s = LatencyStats::new();
        for us in [10u64, 20, 30, 40, 50] {
            s.record(Duration::from_micros(us));
        }
        let b = s.summary();
        assert_eq!(b.min.round() as u64, 10);
        assert_eq!(b.median.round() as u64, 30);
        assert_eq!(b.max.round() as u64, 50);
        assert_eq!(b.mean.round() as u64, 30);
        assert!(b.p25 <= b.median && b.median <= b.p75);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn empty_stats_dont_panic() {
        let s = LatencyStats::new();
        assert!(s.is_empty());
        let b = s.summary();
        assert_eq!(b.mean, 0.0);
    }

    #[test]
    fn time_records() {
        let mut s = LatencyStats::new();
        let v = s.time(|| 42);
        assert_eq!(v, 42);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn series_render_and_query() {
        let mut s = Series::new("figX", "demo", &["variant", "value"]);
        s.push(vec!["Embedded".into(), "12.5".into()]);
        s.push(vec!["Lazy".into(), "99".into()]);
        let table = s.to_table();
        assert!(table.contains("figX"));
        assert!(table.contains("Embedded"));
        let tsv = s.to_tsv();
        assert_eq!(tsv.lines().count(), 3);
        assert_eq!(s.value(|r| r[0] == "Lazy", "value"), Some(99.0));
        assert_eq!(s.value(|r| r[0] == "Nope", "value"), None);
    }

    #[test]
    fn write_tsv_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ldbpp-tsv-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut s = Series::new("unit_tsv", "demo", &["a", "b"]);
        s.push(vec!["1".into(), "x".into()]);
        let path = s.write_tsv(dir.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a\tb\n1\tx\n");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234.6), "1235");
        assert_eq!(fnum(42.25), "42.2");
        assert_eq!(fnum(1.23456), "1.235");
    }
}
