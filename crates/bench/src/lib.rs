//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (§5 and Appendix C).
//!
//! Each experiment in [`experiments`] prints the same rows/series the paper
//! reports and returns them as structured [`harness::Series`] values; the
//! `repro` binary drives them and writes TSV files under `results/`.
//!
//! Absolute numbers differ from the paper (we run at reduced scale against
//! an instrumented in-memory environment, not a 3 TB HDD over a month), but
//! the *shapes* — who wins, by what rough factor, where the crossovers sit
//! — are the reproduction targets; see `EXPERIMENTS.md`.

pub mod harness;
pub mod setup;

pub mod experiments {
    //! One module per paper artifact.
    pub mod appendix_c;
    pub mod chaos;
    pub mod fig10_11;
    pub mod fig12_15;
    pub mod fig7;
    pub mod fig8;
    pub mod fig9;
    pub mod net_ycsb;
    pub mod tables;
    pub mod write_scaling;
}
