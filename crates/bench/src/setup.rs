//! Shared experiment setup: database variants, scaled options, loading.

use ldbpp_core::{Document, IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::db::DbOptions;
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::{SeedStats, Tweet, TweetGenerator};
use std::sync::Arc;

/// The five index variants of the paper's figures (plus the NoIndex
/// baseline where applicable).
pub const VARIANTS: [IndexKind; 4] = [
    IndexKind::Embedded,
    IndexKind::EagerStandalone,
    IndexKind::LazyStandalone,
    IndexKind::CompositeStandalone,
];

/// Variants excluding Eager — "we already found out it is unusable for
/// high write amplification" (§5.2.1), matching the figures that drop it.
pub const VARIANTS_NO_EAGER: [IndexKind; 3] = [
    IndexKind::Embedded,
    IndexKind::LazyStandalone,
    IndexKind::CompositeStandalone,
];

/// Experiment scale: how many tweets the static load phase inserts and how
/// many queries each phase runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Static dataset size (paper: 80 M; default here: laptop-scale).
    pub tweets: usize,
    /// GET operations per measurement.
    pub gets: usize,
    /// LOOKUP operations per (variant, top-K) cell.
    pub lookups: usize,
    /// RANGELOOKUP operations per cell.
    pub range_lookups: usize,
    /// Mixed-workload total operations.
    pub mixed_ops: usize,
    /// RNG seed for determinism.
    pub seed: u64,
}

impl Scale {
    /// Fast smoke-test scale (seconds).
    pub fn smoke() -> Scale {
        Scale {
            tweets: 6_000,
            gets: 300,
            lookups: 40,
            range_lookups: 15,
            mixed_ops: 8_000,
            seed: 42,
        }
    }

    /// Default laptop scale (a few minutes for the full suite).
    pub fn default_scale() -> Scale {
        Scale {
            tweets: 40_000,
            gets: 2_000,
            lookups: 150,
            range_lookups: 40,
            mixed_ops: 50_000,
            seed: 42,
        }
    }
}

/// DB sizing for experiments: small blocks and buffers so the configured
/// record volume still builds a multi-level tree (the paper's behaviours
/// all require one).
pub fn bench_opts() -> DbOptions {
    DbOptions {
        block_size: 1024,
        write_buffer_size: 64 << 10,
        max_file_size: 32 << 10,
        base_level_bytes: 256 << 10,
        l0_compaction_trigger: 4,
        ..DbOptions::small()
    }
}

/// Seed statistics used by every experiment (compact records so runtimes
/// stay laptop-friendly; distribution shapes unchanged).
pub fn bench_stats() -> SeedStats {
    SeedStats::compact()
}

/// Open a database with both paper attributes (`UserID`, `CreationTime`)
/// indexed by `kind` (or unindexed for the NoIndex baseline).
pub fn build_db(kind: IndexKind, opts: DbOptions) -> SecondaryDb {
    SecondaryDb::open(
        MemEnv::new(),
        "db",
        SecondaryDbOptions {
            base: opts,
            ..Default::default()
        },
        &[("UserID", kind), ("CreationTime", kind)],
    )
    .expect("open database")
}

/// Open a database with a given env so callers can measure storage bytes.
pub fn build_db_in(env: Arc<MemEnv>, kind: IndexKind, opts: DbOptions) -> SecondaryDb {
    SecondaryDb::open(
        env,
        "db",
        SecondaryDbOptions {
            base: opts,
            ..Default::default()
        },
        &[("UserID", kind), ("CreationTime", kind)],
    )
    .expect("open database")
}

/// Convert a generated tweet to its stored document.
pub fn doc_of(tweet: &Tweet) -> Document {
    Document::from_value(tweet.document()).expect("tweet doc")
}

/// Insert `n` synthetic tweets, returning them for query generation.
pub fn load_static(db: &SecondaryDb, n: usize, seed: u64) -> Vec<Tweet> {
    let mut generator = TweetGenerator::new(bench_stats(), n, seed);
    let tweets = generator.take(n);
    for t in &tweets {
        db.put(&t.id, &doc_of(t)).expect("static load put");
    }
    tweets
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldbpp_common::json::Value;

    #[test]
    fn build_and_load_all_variants() {
        for kind in VARIANTS {
            let db = build_db(kind, bench_opts());
            let tweets = load_static(&db, 300, 1);
            assert_eq!(tweets.len(), 300);
            let hits = db
                .lookup("UserID", &Value::str(tweets[0].user.clone()), Some(1))
                .unwrap();
            assert!(!hits.is_empty(), "{kind}");
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::smoke().tweets < Scale::default_scale().tweets);
    }
}
