//! Criterion bench for Figures 10(b,c)/11(b,c): RANGELOOKUP latency by
//! selectivity on both attributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbpp_bench::setup::{bench_opts, build_db, load_static, VARIANTS_NO_EAGER};
use ldbpp_common::json::Value;
use std::hint::black_box;

fn bench_range_users(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangelookup_userid_10users");
    group.sample_size(10);
    for kind in VARIANTS_NO_EAGER {
        let db = build_db(kind, bench_opts());
        let _ = load_static(&db, 5000, 13);
        let mut start = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                start = (start + 17) % 100;
                let lo = format!("u{start:07}");
                let hi = format!("u{:07}", start + 9);
                black_box(
                    db.range_lookup("UserID", &Value::str(lo), &Value::str(hi), Some(10))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_range_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangelookup_creationtime_1min");
    group.sample_size(10);
    for kind in VARIANTS_NO_EAGER {
        let db = build_db(kind, bench_opts());
        let tweets = load_static(&db, 5000, 13);
        let t0 = tweets[0].creation_time;
        let t1 = tweets.last().unwrap().creation_time;
        let mut offset = 0i64;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                offset = (offset + 37) % (t1 - t0).max(1);
                let lo = t0 + offset;
                black_box(
                    db.range_lookup(
                        "CreationTime",
                        &Value::Int(lo),
                        &Value::Int(lo + 59),
                        Some(10),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

/// Latency-vs-K grid: range width (selectivity) × result bound K on the
/// UserID attribute. Demonstrates that the streaming read path makes small-K
/// queries cheaper than unbounded ones at every selectivity.
fn bench_range_k_grid(c: &mut Criterion) {
    const WIDTHS: &[usize] = &[1, 10, 50];
    const KS: &[usize] = &[1, 10, 100];
    for kind in VARIANTS_NO_EAGER {
        let db = build_db(kind, bench_opts());
        let _ = load_static(&db, 5000, 13);
        let mut group = c.benchmark_group(&format!("rangelookup_k_grid_{}", kind.name()));
        group.sample_size(10);
        for &width in WIDTHS {
            for &k in KS {
                let mut start = 0usize;
                let id = BenchmarkId::new(&format!("users{width}"), format!("k{k}"));
                group.bench_function(id, |b| {
                    b.iter(|| {
                        start = (start + 17) % 100;
                        let lo = format!("u{start:07}");
                        let hi = format!("u{:07}", start + width - 1);
                        black_box(
                            db.range_lookup("UserID", &Value::str(lo), &Value::str(hi), Some(k))
                                .unwrap(),
                        )
                    })
                });
            }
        }
        group.finish();
    }
}

criterion_group!(
    benches,
    bench_range_users,
    bench_range_time,
    bench_range_k_grid
);
criterion_main!(benches);
