//! Criterion bench for Figures 10(b,c)/11(b,c): RANGELOOKUP latency by
//! selectivity on both attributes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbpp_bench::setup::{bench_opts, build_db, load_static, VARIANTS_NO_EAGER};
use ldbpp_common::json::Value;
use std::hint::black_box;

fn bench_range_users(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangelookup_userid_10users");
    group.sample_size(10);
    for kind in VARIANTS_NO_EAGER {
        let db = build_db(kind, bench_opts());
        let _ = load_static(&db, 5000, 13);
        let mut start = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                start = (start + 17) % 100;
                let lo = format!("u{start:07}");
                let hi = format!("u{:07}", start + 9);
                black_box(
                    db.range_lookup("UserID", &Value::str(lo), &Value::str(hi), Some(10))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_range_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("rangelookup_creationtime_1min");
    group.sample_size(10);
    for kind in VARIANTS_NO_EAGER {
        let db = build_db(kind, bench_opts());
        let tweets = load_static(&db, 5000, 13);
        let t0 = tweets[0].creation_time;
        let t1 = tweets.last().unwrap().creation_time;
        let mut offset = 0i64;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                offset = (offset + 37) % (t1 - t0).max(1);
                let lo = t0 + offset;
                black_box(
                    db.range_lookup(
                        "CreationTime",
                        &Value::Int(lo),
                        &Value::Int(lo + 59),
                        Some(10),
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_users, bench_range_time);
criterion_main!(benches);
