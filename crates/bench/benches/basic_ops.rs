//! Criterion bench for Figure 8: PUT and GET cost per index variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbpp_bench::setup::{bench_opts, build_db, doc_of, load_static, VARIANTS};
use ldbpp_workload::{SeedStats, TweetGenerator};
use std::hint::black_box;

fn bench_put(c: &mut Criterion) {
    let mut group = c.benchmark_group("put");
    group.sample_size(10);
    for kind in VARIANTS {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter_batched(
                || {
                    let db = build_db(kind, bench_opts());
                    let mut generator = TweetGenerator::new(SeedStats::compact(), 4000, 7);
                    let tweets = generator.take(2000);
                    (db, tweets)
                },
                |(db, tweets)| {
                    for t in &tweets {
                        db.put(&t.id, &doc_of(t)).unwrap();
                    }
                    black_box(db.primary().last_sequence())
                },
                criterion::BatchSize::PerIteration,
            )
        });
    }
    group.finish();
}

fn bench_get(c: &mut Criterion) {
    let mut group = c.benchmark_group("get");
    group.sample_size(20);
    for kind in VARIANTS {
        let db = build_db(kind, bench_opts());
        let tweets = load_static(&db, 5000, 7);
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                i = (i + 2713) % tweets.len();
                black_box(db.get(&tweets[i].id).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_put, bench_get);
criterion_main!(benches);
