//! Criterion bench for Figure 12: mixed-workload throughput per variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbpp_bench::setup::{bench_opts, doc_of, VARIANTS_NO_EAGER};
use ldbpp_common::json::Value;
use ldbpp_core::{SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use ldbpp_workload::{MixedKind, MixedWorkload, Operation, SeedStats};
use std::hint::black_box;

fn bench_mixed(c: &mut Criterion) {
    for mixed in [
        MixedKind::WriteHeavy,
        MixedKind::ReadHeavy,
        MixedKind::UpdateHeavy,
    ] {
        let mut group = c.benchmark_group(&format!("mixed_{}", mixed.name()));
        group.sample_size(10);
        for kind in VARIANTS_NO_EAGER {
            group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
                b.iter_batched(
                    || {
                        let db = SecondaryDb::open(
                            MemEnv::new(),
                            "db",
                            SecondaryDbOptions {
                                base: bench_opts(),
                                ..Default::default()
                            },
                            &[("UserID", kind)],
                        )
                        .unwrap();
                        let workload =
                            MixedWorkload::new(mixed, SeedStats::compact(), 3000, Some(10), 3);
                        (db, workload)
                    },
                    |(db, mut workload)| {
                        for _ in 0..3000 {
                            match workload.next_op() {
                                Operation::Put(t) | Operation::Update(t) => {
                                    db.put(&t.id, &doc_of(&t)).unwrap();
                                }
                                Operation::Get { key } => {
                                    black_box(db.get(&key).unwrap());
                                }
                                Operation::LookupUser { user, k } => {
                                    black_box(db.lookup("UserID", &Value::str(user), k).unwrap());
                                }
                                _ => {}
                            }
                        }
                    },
                    criterion::BatchSize::PerIteration,
                )
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
