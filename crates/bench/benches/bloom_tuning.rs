//! Criterion bench for Appendix C.1: Embedded LOOKUP vs bloom length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbpp_bench::setup::{bench_opts, build_db, load_static};
use ldbpp_common::json::Value;
use ldbpp_core::IndexKind;
use ldbpp_lsm::db::DbOptions;
use std::hint::black_box;

fn bench_bloom_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedded_lookup_bloom_bits");
    group.sample_size(15);
    for bits in [2usize, 10, 20] {
        let opts = DbOptions {
            bloom_bits_per_key: bits,
            ..bench_opts()
        };
        let db = build_db(IndexKind::Embedded, opts);
        let tweets = load_static(&db, 5000, 17);
        let users: Vec<String> = tweets.iter().map(|t| t.user.clone()).collect();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(bits), |b| {
            b.iter(|| {
                i = (i + 997) % users.len();
                black_box(
                    db.lookup("UserID", &Value::str(users[i].clone()), Some(10))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bloom_bits);
criterion_main!(benches);
