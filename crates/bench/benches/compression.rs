//! Criterion bench for Appendix C.2: compressed vs raw blocks, plus the
//! snaplite codec itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ldbpp_bench::setup::{bench_opts, build_db, load_static};
use ldbpp_common::json::Value;
use ldbpp_core::IndexKind;
use ldbpp_lsm::compress::{self, Compression};
use ldbpp_lsm::db::DbOptions;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("snaplite_codec");
    let data: Vec<u8> = (0..64 * 1024)
        .map(|i| {
            // JSON-ish repetitive content.
            let cycle = b"{\"UserID\":\"u0000042\",\"Text\":\"lorem ipsum dolor\"}";
            cycle[i % cycle.len()]
        })
        .collect();
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_64k", |b| {
        b.iter(|| black_box(compress::compress(&data)))
    });
    let compressed = compress::compress(&data);
    group.bench_function("decompress_64k", |b| {
        b.iter(|| black_box(compress::decompress(&compressed).unwrap()))
    });
    group.finish();
}

fn bench_lookup_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_by_compression");
    group.sample_size(15);
    for (label, compression) in [
        ("snaplite", Compression::Snaplite),
        ("none", Compression::None),
    ] {
        let opts = DbOptions {
            compression,
            ..bench_opts()
        };
        let db = build_db(IndexKind::LazyStandalone, opts);
        let tweets = load_static(&db, 5000, 19);
        let users: Vec<String> = tweets.iter().map(|t| t.user.clone()).collect();
        let mut i = 0usize;
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                i = (i + 997) % users.len();
                black_box(
                    db.lookup("UserID", &Value::str(users[i].clone()), Some(10))
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_lookup_compression);
criterion_main!(benches);
