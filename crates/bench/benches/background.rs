//! Write-tail comparison: foreground (inline flush/compaction) vs the
//! background flush/compaction pipeline, on a mixed PUT/GET workload.
//!
//! Not a criterion bench: the interesting number is the per-PUT tail
//! (p99), which inline maintenance inflates by orders of magnitude — so
//! this is a tiny custom harness. Run with `cargo bench --bench background`.

use ldbpp_lsm::db::{Db, DbOptions};
use ldbpp_lsm::env::MemEnv;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::time::{Duration, Instant};

const OPS: usize = 30_000;
const VALUE_BYTES: usize = 256;
const GET_FRACTION: f64 = 0.5;
/// Paced arrival rate. At full closed-loop speed a single worker can never
/// outrun the writer on an in-memory env (maintenance is ~2-3x the write
/// work per byte), so both modes converge on the same maintenance-bound
/// tail; real deployments run at a target rate, and that is where the
/// pipeline pays off. 50k ops/s leaves the worker ~3x headroom here.
const TARGET_OPS_PER_SEC: u64 = 50_000;

fn opts(background: bool) -> DbOptions {
    // The `small()` preset (16 KiB memtable) flushes every ~60 puts, so
    // well over 1% of writes land on maintenance work — which is exactly
    // the tail the background pipeline is supposed to take off the write
    // path.
    DbOptions {
        background_work: background,
        ..DbOptions::small()
    }
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn pct(sorted: &[Duration], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    micros(sorted[idx])
}

fn run(background: bool) -> (Vec<Duration>, Vec<Duration>, Duration) {
    let db = Db::open(MemEnv::new(), "db", opts(background)).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let mut puts = Vec::with_capacity(OPS);
    let mut gets = Vec::with_capacity(OPS / 4);
    let value = vec![b'v'; VALUE_BYTES];
    let mut next_key = 0u64;
    let period = Duration::from_nanos(1_000_000_000 / TARGET_OPS_PER_SEC);
    let start = Instant::now();
    let mut slot = start;
    for _ in 0..OPS {
        // Pace by yielding, not spinning: idle time between arrivals is
        // CPU the background worker can use (essential on small hosts).
        // Latencies below are service times per operation.
        while Instant::now() < slot {
            std::thread::yield_now();
        }
        slot += period;
        if next_key > 0 && rng.random::<f64>() < GET_FRACTION {
            let key = format!("k{:08}", rng.random_range(0..next_key));
            let t = Instant::now();
            let found = db.get(key.as_bytes()).unwrap();
            gets.push(t.elapsed());
            assert!(found.is_some(), "acknowledged key {key} must be readable");
        } else {
            let key = format!("k{next_key:08}");
            let t = Instant::now();
            db.put(key.as_bytes(), &value).unwrap();
            puts.push(t.elapsed());
            next_key += 1;
        }
    }
    // Charge any outstanding background work to wall time so throughput
    // numbers compare settled trees.
    db.wait_for_background_idle().unwrap();
    (puts, gets, start.elapsed())
}

fn report(label: &str, puts: &mut [Duration], gets: &mut [Duration], wall: Duration) {
    puts.sort_unstable();
    gets.sort_unstable();
    println!(
        "{label:<12} PUT p50={:8.1}us p99={:8.1}us p999={:8.1}us max={:9.1}us | GET p50={:7.1}us p99={:8.1}us | wall={:6.0}ms ({:.0} ops/s)",
        pct(puts, 0.50),
        pct(puts, 0.99),
        pct(puts, 0.999),
        pct(puts, 1.0),
        pct(gets, 0.50),
        pct(gets, 0.99),
        wall.as_secs_f64() * 1e3,
        OPS as f64 / wall.as_secs_f64(),
    );
}

fn main() {
    println!(
        "mixed {:.0}/{:.0} PUT/GET, {OPS} ops, {VALUE_BYTES}B values — per-op latency",
        (1.0 - GET_FRACTION) * 100.0,
        GET_FRACTION * 100.0
    );
    // Warm-up pass so first-touch allocator costs do not skew either mode.
    let _ = run(false);
    for (label, background) in [("foreground", false), ("background", true)] {
        let (mut puts, mut gets, wall) = run(background);
        report(label, &mut puts, &mut gets, wall);
    }
}
