//! Criterion bench for Figures 10(a)/11(a): LOOKUP latency per variant
//! and top-K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldbpp_bench::setup::{bench_opts, build_db, load_static, VARIANTS};
use ldbpp_common::json::Value;
use std::hint::black_box;

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup_userid");
    group.sample_size(20);
    for kind in VARIANTS {
        let db = build_db(kind, bench_opts());
        let tweets = load_static(&db, 5000, 11);
        let users: Vec<String> = tweets.iter().map(|t| t.user.clone()).collect();
        for k in [Some(1usize), Some(10), None] {
            let label = format!(
                "{}_k{}",
                kind.name(),
                k.map(|v| v.to_string()).unwrap_or("all".into())
            );
            let mut i = 0usize;
            group.bench_function(BenchmarkId::from_parameter(label), |b| {
                b.iter(|| {
                    i = (i + 997) % users.len();
                    black_box(
                        db.lookup("UserID", &Value::str(users[i].clone()), k)
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
