//! Bounded depth-first schedule exploration with sleep sets and
//! preemption bounding.
//!
//! The explorer repeatedly runs a fresh [`Instance`] of a bounded model
//! under the cooperative scheduler ([`parking_lot::sched`]), each time
//! forcing a different interleaving. A persistent stack of decision
//! frames implements stateless DFS: every run replays the stack's
//! recorded choices (the current prefix) and extends it with a default
//! policy; backtracking advances the deepest frame to its next untried
//! alternative.
//!
//! Two classic reductions bound the search:
//!
//! * **Sleep sets** (Godefroid): after exploring choice `c` from state
//!   `s`, `c` is put to sleep in `s`; siblings only wake it through a
//!   dependent operation. This prunes schedules that differ only by
//!   commuting adjacent independent operations.
//! * **Preemption bounding** (Musuvathi & Qadeer): schedules may
//!   preempt a runnable thread at most `preemption_bound` times.
//!   Concurrency bugs overwhelmingly need very few preemptions, and the
//!   bound turns an exponential space into a polynomial one.
//!
//! Both reductions trade completeness for tractability; a clean sweep
//! is evidence within the bound, not a proof.
//!
//! Every explored schedule is identified by a **seed** of the form
//! `v1:<choice positions>:<crc32c>`, where the checksum fingerprints
//! the chosen operations (thread, kind, normalized object id). Object
//! ids are normalized per run — raw lock/atomic/channel ids are mapped
//! to dense ids in order of first appearance — so the same logical
//! schedule gets the same seed in every process. [`replay`] re-executes
//! a seed's exact interleaving and fails loudly on any divergence.

use ldbpp_common::crc32c::crc32c;
use parking_lot::sched::{self, ExecReport, OpKind, PendingOp};
use std::collections::HashMap;

/// One disposable run of a bounded model: the scheduled threads plus a
/// post-run invariant check (serial-oracle history validation,
/// integrity scan, ...). The factory handed to [`Explorer::explore`]
/// builds a fresh instance per schedule.
pub struct Instance {
    /// Named model threads handed to the scheduler, in index order.
    pub threads: Vec<(String, Box<dyn FnOnce() + Send>)>,
    /// Invariant check run after a schedule completes without a
    /// scheduler-level failure. `Err` descriptions become violations.
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
}

/// A schedule on which the model misbehaved.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Replayable schedule seed (`v1:...`); feed to [`replay`].
    pub seed: String,
    /// What went wrong: a panic/deadlock/step-budget description from
    /// the scheduler, or the message from the instance's check.
    pub description: String,
}

/// Exploration counters.
#[derive(Debug, Clone, Copy)]
pub struct ExploreStats {
    /// Distinct schedules executed.
    pub schedules: u64,
    /// Whether the bounded space was fully swept (as opposed to the
    /// schedule budget running out first).
    pub exhausted: bool,
}

/// Result of [`Explorer::explore`]: counters plus the first violation
/// found, if any.
#[derive(Debug)]
pub struct ExploreOutcome {
    /// Counters for the sweep.
    pub stats: ExploreStats,
    /// First violating schedule, or `None` if the sweep was clean.
    pub violation: Option<Violation>,
}

/// Exploration budget and bounds.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Stop after this many schedules even if the space is not swept.
    pub max_schedules: u64,
    /// Per-run step budget (livelock backstop), passed to the scheduler.
    pub max_steps: u64,
    /// Maximum preemptions per schedule.
    pub preemption_bound: u32,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            max_schedules: 1200,
            max_steps: 50_000,
            preemption_bound: 2,
        }
    }
}

impl Explorer {
    /// The CI-budgeted explorer: the default bounds, raised to an
    /// effectively exhaustive schedule budget when `MODEL_FULL=1` is set
    /// (mirroring the crash-sweep's `CRASH_SWEEP_FULL` convention).
    pub fn bounded() -> Explorer {
        let full = std::env::var("MODEL_FULL").is_ok_and(|v| !v.is_empty() && v != "0");
        Explorer {
            max_schedules: if full { 500_000 } else { 1200 },
            ..Explorer::default()
        }
    }

    /// Sweep the model's schedule space, returning on the first
    /// violation or when the budget/space is exhausted.
    ///
    /// The factory must build a *fresh, fully reset* instance per call
    /// (including `ldbpp_lsm::vclock::reset()` and seeded-bug flags);
    /// the previous instance is dropped before the factory runs again.
    ///
    /// Panics if two runs of the same choice prefix observe different
    /// enabled sets — that means the model itself is nondeterministic
    /// (time, randomness, or an unstubbed real dependency) and nothing
    /// it explores would be replayable.
    pub fn explore(&self, factory: &mut dyn FnMut() -> Instance) -> ExploreOutcome {
        let mut stack: Vec<Frame> = Vec::new();
        let mut stats = ExploreStats {
            schedules: 0,
            exhausted: false,
        };
        loop {
            let Instance { threads, check } = factory();
            let res = run(threads, self.max_steps, &mut stack, self.preemption_bound);
            stats.schedules += 1;
            if let Some(msg) = res.diverged {
                panic!("model nondeterminism: {msg}");
            }
            debug_assert_eq!(stack.len(), res.decisions);
            let violation = if let Some(f) = &res.report.failure {
                Some(Violation {
                    seed: seed_of(&stack),
                    description: f.describe(),
                })
            } else {
                check().err().map(|description| Violation {
                    seed: seed_of(&stack),
                    description,
                })
            };
            if violation.is_some() {
                return ExploreOutcome { stats, violation };
            }
            if stats.schedules >= self.max_schedules {
                return ExploreOutcome {
                    stats,
                    violation: None,
                };
            }
            // Backtrack: put the explored choice to sleep, advance the
            // deepest frame with an untried, awake, bound-respecting
            // alternative, and drop everything beneath it.
            loop {
                let Some(top) = stack.last_mut() else {
                    stats.exhausted = true;
                    return ExploreOutcome {
                        stats,
                        violation: None,
                    };
                };
                let done = top.enabled[top.chosen];
                if !top.sleep.contains(&done) {
                    top.sleep.push(done);
                }
                if let Some(p) = next_choice(top, self.preemption_bound) {
                    top.chosen = p;
                    top.tried[p] = true;
                    break;
                }
                stack.pop();
            }
        }
    }
}

/// Re-execute the exact interleaving identified by `seed` on a fresh
/// instance. Returns the reproduced violation (or `None` if the
/// schedule runs clean — e.g. the bug it witnessed has been fixed), or
/// an `Err` describing a divergence: the seed no longer matches the
/// model (different decision count, out-of-range choice, or operation
/// fingerprint mismatch after a code change).
pub fn replay(seed: &str, instance: Instance) -> Result<Option<Violation>, String> {
    let (positions, want_crc) = parse_seed(seed)?;
    let Instance { threads, check } = instance;
    let mut norm = Normalizer::default();
    let mut depth = 0usize;
    let mut diverged: Option<String> = None;
    let mut bytes: Vec<u8> = Vec::new();
    let report = sched::execute(threads, 50_000, &mut |enabled, _last| {
        let e = normalize(&mut norm, enabled);
        let d = depth;
        depth += 1;
        let p = match positions.get(d) {
            Some(&p) if p < e.len() => p,
            Some(&p) => {
                if diverged.is_none() {
                    diverged = Some(format!(
                        "choice {p} out of range at depth {d} ({} ops enabled)",
                        e.len()
                    ));
                }
                0
            }
            None => {
                if diverged.is_none() {
                    diverged = Some(format!("run needs more decisions than the seed has ({d})"));
                }
                0
            }
        };
        fingerprint(&mut bytes, e[p].0, &e[p].1);
        p
    });
    if let Some(msg) = diverged {
        return Err(msg);
    }
    if depth != positions.len() {
        return Err(format!(
            "seed has {} decisions but the run made {depth}",
            positions.len()
        ));
    }
    if crc32c(&bytes) != want_crc {
        return Err(
            "schedule fingerprint mismatch: the model's operations changed since the seed \
             was minted"
                .to_string(),
        );
    }
    if let Some(f) = &report.failure {
        return Ok(Some(Violation {
            seed: seed.to_string(),
            description: f.describe(),
        }));
    }
    Ok(check().err().map(|description| Violation {
        seed: seed.to_string(),
        description,
    }))
}

// ---------------------------------------------------------------------------
// DFS internals
// ---------------------------------------------------------------------------

/// One decision point of the current schedule prefix. `enabled` holds
/// the normalized enabled set observed there; `sleep` the *transitions*
/// (thread, op) already fully explored from this state (or inherited
/// from the parent); `preemptions` the count consumed *before* this
/// decision.
#[derive(Clone, Debug)]
struct Frame {
    enabled: Vec<(usize, PendingOp)>,
    chosen: usize,
    tried: Vec<bool>,
    sleep: Vec<(usize, PendingOp)>,
    last: Option<usize>,
    preemptions: u32,
}

struct RunResult {
    report: ExecReport,
    diverged: Option<String>,
    decisions: usize,
}

/// Execute one schedule: replay the stack's recorded choices, then
/// extend with the default policy (stay on the last-granted thread when
/// allowed), pushing a new frame per fresh decision.
fn run(
    threads: Vec<(String, Box<dyn FnOnce() + Send>)>,
    max_steps: u64,
    stack: &mut Vec<Frame>,
    bound: u32,
) -> RunResult {
    let replay_len = stack.len();
    let mut norm = Normalizer::default();
    let mut depth = 0usize;
    let mut diverged: Option<String> = None;
    let report = sched::execute(threads, max_steps, &mut |enabled, last| {
        let e = normalize(&mut norm, enabled);
        let d = depth;
        depth += 1;
        if d < replay_len {
            let f = &stack[d];
            if f.enabled != e && diverged.is_none() {
                diverged = Some(format!(
                    "at depth {d}: recorded enabled set {:?} but observed {:?}",
                    f.enabled, e
                ));
            }
            return f.chosen.min(e.len() - 1);
        }
        let (sleep, preemptions) = if d == 0 {
            (Vec::new(), 0)
        } else {
            let parent = &stack[d - 1];
            let (pt, pop) = parent.enabled[parent.chosen];
            // A sleeping transition stays asleep across an independent
            // step by another thread: the states commute, so exploring
            // it here would duplicate the sibling subtree where it was
            // already explored.
            let inherited = parent
                .sleep
                .iter()
                .filter(|(st, sop)| *st != pt && sop.independent(&pop))
                .copied()
                .collect();
            (inherited, parent.preemptions + preempt_cost(parent))
        };
        let eligible =
            |p: usize| !sleep.contains(&e[p]) && preemptions + cost_at(&e, last, p) <= bound;
        // Prefer continuing the running thread (preemption-free default),
        // else the first eligible op; if everything is asleep or over
        // budget this subtree is redundant — run op 0 just to finish.
        let choice = (0..e.len())
            .find(|&p| last == Some(e[p].0) && eligible(p))
            .or_else(|| (0..e.len()).find(|&p| eligible(p)))
            .unwrap_or(0);
        let mut tried = vec![false; e.len()];
        tried[choice] = true;
        stack.push(Frame {
            enabled: e,
            chosen: choice,
            tried,
            sleep,
            last,
            preemptions,
        });
        choice
    });
    RunResult {
        report,
        diverged,
        decisions: depth,
    }
}

/// Next untried, awake, bound-respecting alternative in a frame.
fn next_choice(f: &Frame, bound: u32) -> Option<usize> {
    (0..f.enabled.len()).find(|&p| {
        !f.tried[p]
            && !f.sleep.contains(&f.enabled[p])
            && f.preemptions + cost_at(&f.enabled, f.last, p) <= bound
    })
}

/// A choice costs a preemption iff it switches away from the
/// last-granted thread while that thread still has an enabled op.
fn cost_at(enabled: &[(usize, PendingOp)], last: Option<usize>, p: usize) -> u32 {
    match last {
        Some(l) if enabled[p].0 != l && enabled.iter().any(|&(t, _)| t == l) => 1,
        _ => 0,
    }
}

fn preempt_cost(f: &Frame) -> u32 {
    cost_at(&f.enabled, f.last, f.chosen)
}

// ---------------------------------------------------------------------------
// Normalization & seeds
// ---------------------------------------------------------------------------

/// Maps raw scheduler object ids (global counters, different every
/// process) to dense per-run ids keyed by first appearance, so seeds
/// and divergence checks are stable across processes. Thread indices
/// (the `obj` of Start/Join/Yield/Gate ops) are already stable and pass
/// through unchanged.
#[derive(Default)]
struct Normalizer {
    map: HashMap<(u8, u64), u64>,
    next: u64,
}

fn obj_namespace(kind: OpKind) -> Option<u8> {
    match kind {
        OpKind::MutexLock
        | OpKind::MutexTryLock
        | OpKind::RwRead
        | OpKind::RwWrite
        | OpKind::CondReacquire => Some(0),
        OpKind::CondNotify => Some(1),
        OpKind::AtomicLoad | OpKind::AtomicStore | OpKind::AtomicRmw => Some(2),
        OpKind::ChanSend | OpKind::ChanRecv => Some(3),
        OpKind::Start | OpKind::Join | OpKind::Yield | OpKind::Gate => None,
    }
}

impl Normalizer {
    fn norm(&mut self, op: &PendingOp) -> PendingOp {
        let Some(ns) = obj_namespace(op.kind) else {
            return *op;
        };
        let next = &mut self.next;
        let id = *self.map.entry((ns, op.obj)).or_insert_with(|| {
            *next += 1;
            *next
        });
        PendingOp { obj: id, ..*op }
    }
}

fn normalize(norm: &mut Normalizer, enabled: &[sched::EnabledOp]) -> Vec<(usize, PendingOp)> {
    // `execute` presents the enabled set sorted by thread index; keep
    // that order so positions are meaningful across runs.
    enabled
        .iter()
        .map(|o| (o.thread, norm.norm(&o.op)))
        .collect()
}

fn kind_code(kind: OpKind) -> u8 {
    match kind {
        OpKind::Start => 0,
        OpKind::MutexLock => 1,
        OpKind::MutexTryLock => 2,
        OpKind::RwRead => 3,
        OpKind::RwWrite => 4,
        OpKind::CondReacquire => 5,
        OpKind::CondNotify => 6,
        OpKind::AtomicLoad => 7,
        OpKind::AtomicStore => 8,
        OpKind::AtomicRmw => 9,
        OpKind::ChanSend => 10,
        OpKind::ChanRecv => 11,
        OpKind::Join => 12,
        OpKind::Gate => 13,
        OpKind::Yield => 14,
    }
}

fn fingerprint(bytes: &mut Vec<u8>, thread: usize, op: &PendingOp) {
    bytes.extend_from_slice(&(thread as u32).to_le_bytes());
    bytes.push(kind_code(op.kind));
    bytes.extend_from_slice(&op.obj.to_le_bytes());
    bytes.push(op.gated as u8);
}

fn seed_of(stack: &[Frame]) -> String {
    let mut bytes = Vec::new();
    let mut positions = String::new();
    for f in stack {
        let (t, op) = f.enabled[f.chosen];
        fingerprint(&mut bytes, t, &op);
        if !positions.is_empty() {
            positions.push('.');
        }
        positions.push_str(&f.chosen.to_string());
    }
    format!("v1:{positions}:{:08x}", crc32c(&bytes))
}

fn parse_seed(seed: &str) -> Result<(Vec<usize>, u32), String> {
    let mut parts = seed.splitn(3, ':');
    let (Some(version), Some(pos), Some(crc)) = (parts.next(), parts.next(), parts.next()) else {
        return Err(format!(
            "malformed seed {seed:?}: want v1:<positions>:<crc>"
        ));
    };
    if version != "v1" {
        return Err(format!("unsupported seed version {version:?}"));
    }
    let positions = if pos.is_empty() {
        Vec::new()
    } else {
        pos.split('.')
            .map(|p| {
                p.parse::<usize>()
                    .map_err(|e| format!("bad position {p:?} in seed: {e}"))
            })
            .collect::<Result<Vec<usize>, String>>()?
    };
    let crc = u32::from_str_radix(crc, 16).map_err(|e| format!("bad checksum in seed: {e}"))?;
    Ok((positions, crc))
}
