//! Linearizability checking of recorded operation histories (Wing &
//! Gong's algorithm).
//!
//! Model threads record every operation they perform against the real
//! engine as an [`Event`] — the operation, its actual return value, and
//! invoke/finish timestamps from a shared logical clock. After the run,
//! [`check_linearizable`] searches for a total order of the events that
//! (a) respects real time (an event that finished before another was
//! invoked must come first) and (b) replays correctly against a serial
//! oracle ([`Spec`]). If no such order exists, the schedule exposed a
//! non-linearizable behavior.
//!
//! The search is exponential in history length, which is fine here:
//! bounded models record well under a dozen events per run.
//!
//! Timestamps come from a plain `std` atomic on purpose: recording must
//! not create scheduling points, or the act of observing a schedule
//! would perturb the space being explored. Since the cooperative
//! scheduler runs exactly one model thread at a time, the recorder's
//! internal mutex is always uncontended and never blocks.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sequential specification: the serial oracle histories are checked
/// against.
pub trait Spec {
    /// Operation type.
    type Op: Clone + Debug;
    /// Return-value type; compared against what the engine returned.
    type Ret: PartialEq + Clone + Debug;
    /// Oracle state.
    type State: Clone;
    /// The state before any operation.
    fn init(&self) -> Self::State;
    /// Apply `op` serially, yielding the next state and the return
    /// value a serial execution would produce.
    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret);
}

/// One completed operation of a recorded history.
#[derive(Debug, Clone)]
pub struct Event<O, R> {
    /// The operation.
    pub op: O,
    /// What the engine actually returned.
    pub ret: R,
    /// Logical time at invocation.
    pub invoke: u64,
    /// Logical time at completion.
    pub finish: u64,
}

/// Shared history recorder for one model run.
pub struct Recorder<O, R> {
    clock: AtomicU64,
    events: Mutex<Vec<Event<O, R>>>,
}

impl<O, R> Recorder<O, R> {
    /// Fresh recorder with an empty history and the clock at zero.
    pub fn new() -> Arc<Recorder<O, R>> {
        Arc::new(Recorder {
            clock: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        })
    }

    /// Stamp an invocation; pass the returned timestamp to [`finish`].
    ///
    /// [`finish`]: Recorder::finish
    pub fn invoke(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Stamp the completion of the operation invoked at `invoke` and
    /// append the event to the history.
    pub fn finish(&self, invoke: u64, op: O, ret: R) {
        let finish = self.clock.fetch_add(1, Ordering::SeqCst);
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Event {
                op,
                ret,
                invoke,
                finish,
            });
    }

    /// Drain the recorded history.
    pub fn take(&self) -> Vec<Event<O, R>> {
        std::mem::take(
            &mut *self
                .events
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }
}

/// Check that `events` is linearizable with respect to `spec`.
///
/// Returns `Err` with a rendering of the history when no valid
/// linearization exists.
pub fn check_linearizable<S: Spec>(
    spec: &S,
    events: &[Event<S::Op, S::Ret>],
) -> Result<(), String> {
    assert!(
        events.len() <= 16,
        "WGL search is exponential; keep bounded models tiny ({} events)",
        events.len()
    );
    let mut done = vec![false; events.len()];
    if search(spec, events, &mut done, &spec.init(), events.len()) {
        Ok(())
    } else {
        Err(format!("history not linearizable:{}", render(events)))
    }
}

fn search<S: Spec>(
    spec: &S,
    events: &[Event<S::Op, S::Ret>],
    done: &mut [bool],
    state: &S::State,
    remaining: usize,
) -> bool {
    if remaining == 0 {
        return true;
    }
    // Only an event invoked before every pending event's finish can be
    // linearized next: anything else would reorder it after an
    // operation that completed before it began.
    let min_finish = events
        .iter()
        .zip(done.iter())
        .filter(|(_, d)| !**d)
        .map(|(e, _)| e.finish)
        .min()
        .expect("remaining > 0");
    for i in 0..events.len() {
        if done[i] || events[i].invoke > min_finish {
            continue;
        }
        let (next, ret) = spec.apply(state, &events[i].op);
        if ret != events[i].ret {
            continue;
        }
        done[i] = true;
        if search(spec, events, done, &next, remaining - 1) {
            return true;
        }
        done[i] = false;
    }
    false
}

fn render<O: Debug, R: Debug>(events: &[Event<O, R>]) -> String {
    let mut sorted: Vec<&Event<O, R>> = events.iter().collect();
    sorted.sort_by_key(|e| e.invoke);
    let mut out = String::new();
    for e in sorted {
        out.push_str(&format!(
            "\n  [{:>3}..{:>3}] {:?} -> {:?}",
            e.invoke, e.finish, e.op, e.ret
        ));
    }
    out
}
