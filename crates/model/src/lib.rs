//! `ldbpp-model`: a loom-style deterministic model checker for the
//! engine's concurrent protocols (DESIGN.md §17).
//!
//! Under `--features check` the vendored `parking_lot`/`crossbeam` shims
//! route every lock acquisition, condvar wait/notify, channel op, and
//! instrumented atomic access through a cooperative scheduler that runs
//! exactly one thread at a time and parks the rest. `explore` drives
//! that scheduler through a bounded depth-first enumeration of thread
//! interleavings (with preemption bounding and sleep-set pruning), and
//! `lin` checks the operation histories each schedule records against
//! a serial oracle (Wing & Gong's linearizability algorithm).
//!
//! `models` contains small bounded models (2–3 threads, a handful of
//! operations) of three real protocols:
//!
//! * group-commit leader handoff + sequence rebase (DESIGN.md §14),
//! * scatter-gather reads racing a group commit on the shared
//!   sequence clock (§15),
//! * `SHUTDOWN` drain vs. an in-flight `BATCH` (§16).
//!
//! Every violation prints a replayable schedule seed; feeding the seed
//! back to `explore::replay` re-executes that exact interleaving
//! deterministically.
//!
//! Without the `check` feature this crate is intentionally empty — the
//! default build compiles zero scheduler instrumentation.

#[cfg(feature = "check")]
pub mod explore;
#[cfg(feature = "check")]
pub mod lin;
#[cfg(feature = "check")]
pub mod models;

/// Serialize model-checking tests within the process.
///
/// The cooperative scheduler is a process-wide singleton (thread-local
/// batons plus global registries), and the seeded-bug flags and vclock
/// generation counter are process globals too, so two explorations must
/// never overlap. Every test takes this lock first.
#[cfg(feature = "check")]
pub fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
