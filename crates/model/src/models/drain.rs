//! Model (c): `SHUTDOWN` drain vs. in-flight `BATCH` (DESIGN.md §16).
//!
//! The model runs the real [`DrainGate`] with two connection threads
//! and one shutdown thread. A connection mirrors the server loop:
//! register the request, re-check the drain flag (refusing if set),
//! append its batch to a shared commit log, acknowledge it, and
//! unregister. The shutdown thread mirrors `handle_shutdown`: register
//! itself, raise the drain flag, wait for the gate to drain, snapshot
//! the log (the "final flush"), and release the gate.
//!
//! Invariant: **every acknowledged batch is in the flushed snapshot** —
//! a client that got an ACK must find its write after the shutdown
//! completes.
//!
//! The seeded fault (`late_register`) re-creates the classic TOCTOU:
//! the connection checks the drain flag *before* registering. In the
//! window between check and register the gate can drain with the
//! request invisible, so the shutdown flushes without it and the
//! connection acks afterwards.

use crate::explore::Instance;
use ldbpp_proto::drain::DrainGate;
use parking_lot::Mutex;
use std::sync::Arc;

/// Two connections (each serving two batches back-to-back, like the
/// server's per-connection loop) vs. one shutdown over the real drain
/// gate. `late_register` seeds the check-before-register fault in the
/// connection loop (a model-local fault: the server's real loop
/// registers first).
pub fn drain(late_register: bool) -> Instance {
    super::reset_faults();
    let gate = Arc::new(DrainGate::new());
    // The "WAL": what the engine has durably applied.
    let log = Arc::new(Mutex::new(Vec::<u32>::new()));
    // What each client saw acknowledged / what the final flush covered.
    // Plain std mutexes: recording must not add scheduling points.
    let acked = Arc::new(std::sync::Mutex::new(Vec::<u32>::new()));
    let flushed = Arc::new(std::sync::Mutex::new(Option::<Vec<u32>>::None));

    fn conn(
        gate: Arc<DrainGate>,
        log: Arc<Mutex<Vec<u32>>>,
        acked: Arc<std::sync::Mutex<Vec<u32>>>,
        late_register: bool,
        i: u32,
    ) -> impl FnOnce() + Send {
        move || {
            for batch in [i, i + 10] {
                if late_register {
                    // Seeded TOCTOU: decide on the flag, then register.
                    if gate.is_draining() {
                        return;
                    }
                    gate.register_request();
                } else {
                    // Real server order: the request is visible to the
                    // gate before the drain flag is consulted.
                    gate.register_request();
                    if gate.is_draining() {
                        gate.finish_request();
                        return;
                    }
                }
                log.lock().push(batch);
                acked.lock().unwrap().push(batch);
                gate.finish_request();
            }
        }
    }
    let shutdown = {
        let gate = Arc::clone(&gate);
        let log = Arc::clone(&log);
        let flushed = Arc::clone(&flushed);
        move || {
            gate.register_request();
            gate.begin_shutdown();
            DrainGate::await_drained(&gate);
            *flushed.lock().unwrap() = Some(log.lock().clone());
            gate.end_shutdown();
            gate.finish_request();
        }
    };

    let c1 = conn(
        Arc::clone(&gate),
        Arc::clone(&log),
        Arc::clone(&acked),
        late_register,
        1,
    );
    let c2 = conn(
        Arc::clone(&gate),
        Arc::clone(&log),
        Arc::clone(&acked),
        late_register,
        2,
    );
    Instance {
        threads: vec![
            ("conn-1".to_string(), Box::new(c1)),
            ("conn-2".to_string(), Box::new(c2)),
            ("shutdown".to_string(), Box::new(shutdown)),
        ],
        check: Box::new(move || {
            let acked = acked.lock().unwrap().clone();
            let flushed = flushed.lock().unwrap().clone().expect("shutdown ran");
            for i in &acked {
                if !flushed.contains(i) {
                    return Err(format!(
                        "batch {i} was acknowledged but missing from the shutdown \
                         flush (acked {acked:?}, flushed {flushed:?})"
                    ));
                }
            }
            Ok(())
        }),
    }
}
