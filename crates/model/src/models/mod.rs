//! Bounded models of the engine's three concurrent protocols.
//!
//! Each model builds a tiny real engine instance (in-memory env, WAL
//! off, no background work), runs 2–3 model threads against it under
//! the cooperative scheduler, and checks every completed schedule
//! against a serial oracle or an integrity invariant. The factories
//! also (re)set the seeded-bug flags (`ldbpp_lsm::model_bugs`,
//! `ldbpp_core::model_bugs`) so a sweep always starts from a known
//! fault configuration, and reset the vclock registry — the previous
//! instance is dropped by the explorer before a factory runs again.

pub mod drain;
pub mod group_commit;
pub mod scatter;

/// Reset every process-global seeded-bug flag to "off" and clear the
/// vclock registry. Every model factory calls this first, then flips
/// only the faults it wants.
pub(crate) fn reset_faults() {
    ldbpp_lsm::vclock::reset();
    ldbpp_lsm::model_bugs::set_publish_before_insert(false);
    ldbpp_lsm::model_bugs::set_skip_leader_notify(false);
    ldbpp_core::model_bugs::set_eager_k_prefix(false);
    ldbpp_core::model_bugs::set_tombstone_after_cleanup(false);
}

/// Engine options shared by the bounded models: tiny buffers, no WAL
/// (fewer scheduling points; durability is not what these models
/// check), and strictly foreground work so the only concurrency is the
/// model's own threads.
pub(crate) fn model_opts() -> ldbpp_lsm::db::DbOptions {
    ldbpp_lsm::db::DbOptions {
        wal_enabled: false,
        wal_sync: false,
        background_work: false,
        auto_compact: false,
        ..ldbpp_lsm::db::DbOptions::small()
    }
}
