//! Model (a): group-commit leader handoff + sequence rebase
//! (DESIGN.md §14).
//!
//! Two writers race `Db::put` on one engine — the schedule space covers
//! both one-batch-each and leader-collects-both groupings, plus every
//! placement of the leader handoff — while a reader polls
//! `last_sequence()` and point-reads both keys. The oracle is a serial
//! KV map with a monotone sequence counter: puts must return the
//! globally next sequence number and reads must see a prefix-consistent
//! state.
//!
//! Seeded faults ([`Config`]):
//!
//! * `early_publish` — `last_seq` is Release-stored *before* the
//!   memtable insert; the vclock `consume` detector fires on the
//!   reader's Acquire load.
//! * `skip_leader_notify` — the retiring leader promotes its successor
//!   without `notify_one`; the lost wakeup surfaces as a deadlock.

use crate::explore::Instance;
use crate::lin::{check_linearizable, Recorder, Spec};
use ldbpp_lsm::db::Db;
use ldbpp_lsm::env::MemEnv;
use std::sync::Arc;

/// Seeded-fault switches for this model (all off = correct engine).
#[derive(Debug, Clone, Copy, Default)]
pub struct Config {
    /// Publish `last_seq` before the memtable insert (bug A).
    pub early_publish: bool,
    /// Drop the condvar notify on leader handoff (bug B).
    pub skip_leader_notify: bool,
}

/// History operations: key puts, point reads, and sequence polls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `Db::put(key, key.to_uppercase())`.
    Put(&'static str),
    /// `Db::get(key)`.
    Read(&'static str),
    /// `Db::last_sequence()`.
    LastSeq,
}

/// Observed return values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ret {
    /// Sequence number a put or `LastSeq` returned.
    Seq(u64),
    /// Value a read returned (mapped back to the static key set).
    Doc(Option<&'static str>),
}

/// Serial oracle: (last sequence, value of "a", value of "b").
struct KvSpec;

impl Spec for KvSpec {
    type Op = Op;
    type Ret = Ret;
    type State = (u64, Option<&'static str>, Option<&'static str>);

    fn init(&self) -> Self::State {
        (0, None, None)
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        let mut next = *state;
        match op {
            Op::Put("a") => {
                next.0 += 1;
                next.1 = Some("A");
                (next, Ret::Seq(next.0))
            }
            Op::Put(_) => {
                next.0 += 1;
                next.2 = Some("B");
                (next, Ret::Seq(next.0))
            }
            Op::Read("a") => (next, Ret::Doc(state.1)),
            Op::Read(_) => (next, Ret::Doc(state.2)),
            Op::LastSeq => (next, Ret::Seq(state.0)),
        }
    }
}

/// Build one disposable run of the model.
pub fn instance(cfg: Config) -> Instance {
    super::reset_faults();
    ldbpp_lsm::model_bugs::set_publish_before_insert(cfg.early_publish);
    ldbpp_lsm::model_bugs::set_skip_leader_notify(cfg.skip_leader_notify);
    let db = Arc::new(Db::open(MemEnv::new(), "gc", super::model_opts()).expect("open"));
    let rec = Recorder::<Op, Ret>::new();

    fn writer(
        db: Arc<Db>,
        rec: Arc<Recorder<Op, Ret>>,
        key: &'static str,
        val: &'static [u8],
    ) -> impl FnOnce() + Send {
        move || {
            let inv = rec.invoke();
            let seq = db.put(key.as_bytes(), val).expect("put");
            rec.finish(inv, Op::Put(key), Ret::Seq(seq));
        }
    }
    let reader = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        move || {
            let inv = rec.invoke();
            let seq = db.last_sequence();
            rec.finish(inv, Op::LastSeq, Ret::Seq(seq));
            for key in ["a", "b"] {
                let inv = rec.invoke();
                let got = db.get(key.as_bytes()).expect("get");
                let doc = match got.as_deref() {
                    None => None,
                    Some(b"A") => Some("A"),
                    Some(b"B") => Some("B"),
                    Some(other) => panic!("unexpected value {other:?}"),
                };
                rec.finish(inv, Op::Read(key), Ret::Doc(doc));
            }
        }
    };

    let wa = writer(Arc::clone(&db), Arc::clone(&rec), "a", b"A");
    let wb = writer(Arc::clone(&db), Arc::clone(&rec), "b", b"B");
    Instance {
        threads: vec![
            ("writer-a".to_string(), Box::new(wa)),
            ("writer-b".to_string(), Box::new(wb)),
            ("reader".to_string(), Box::new(reader)),
        ],
        check: Box::new(move || {
            let events = rec.take();
            check_linearizable(&KvSpec, &events)?;
            drop(db);
            Ok(())
        }),
    }
}
