//! Model (b): scatter-gather reads racing writes on the shared
//! sequence clock (DESIGN.md §15).
//!
//! Three bounded scenarios over a real [`SecondaryDb`]:
//!
//! * [`scan_vs_put`] — a two-shard store; one writer puts two keys on
//!   *different* shards back-to-back while a reader runs a
//!   scatter-gather `scan_primary`. The oracle demands linearizability:
//!   the scan must not return the second put's key without the first —
//!   exactly the cross-shard read-skew the per-shard snapshot pinning
//!   (pinned `SharedSequence::current()` fanned out to every shard's
//!   cursor) exists to prevent.
//! * [`eager_range`] — a single shard with an Eager index whose
//!   prepopulated posting lists contain a stale high-sequence entry; a
//!   reader's `range_lookup(K=2)` races an unrelated writer. With the
//!   seeded PR 7 K-prefix truncation re-enabled, the stale entry crowds
//!   a valid candidate out of the heap and the lookup under-fills K.
//! * [`delete_vs_lookup`] — a delete races an index reader on an
//!   Eager-indexed shard. The correct tombstone-first ordering keeps
//!   every window linearizable (a stale posting over a dead record is
//!   absorbed by read validation). With the seeded PR 8 reordering
//!   (index cleanup before the primary tombstone), a window exists
//!   where the lookup misses a record a later point-get still finds —
//!   no serial order explains that history, and the WGL checker rejects
//!   it.

use crate::explore::Instance;
use crate::lin::{check_linearizable, Recorder, Spec};
use ldbpp_common::json::Value;
use ldbpp_core::{CheckCode, Document, IndexKind, SecondaryDb, SecondaryDbOptions};
use ldbpp_lsm::env::MemEnv;
use std::collections::BTreeSet;
use std::sync::Arc;

/// History operations for the linearizability-checked scenarios.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `SecondaryDb::put(pk, {})` (scan scenario) or
    /// `put(pk, {A: 999})` (range scenario).
    Put(String),
    /// `SecondaryDb::scan_primary` over the whole key range.
    Scan,
    /// `SecondaryDb::range_lookup("A", 1, 3, K=2)`.
    Range,
    /// `SecondaryDb::delete(pk)`.
    Delete(String),
    /// `SecondaryDb::lookup("A", 7, None)`.
    Lookup,
    /// `SecondaryDb::get(pk)`.
    Get(String),
}

/// Observed return values.
#[derive(Debug, Clone, PartialEq)]
pub enum Ret {
    /// Sequence number a put returned.
    Seq(u64),
    /// Primary keys a scan or range lookup returned, in result order.
    Keys(Vec<String>),
    /// Whether a point-get found a record.
    Found(bool),
    /// A delete completed.
    Unit,
}

fn open(shards: usize, specs: &[(&str, IndexKind)]) -> Arc<SecondaryDb> {
    let opts = SecondaryDbOptions {
        base: super::model_opts(),
        shards,
        ..Default::default()
    };
    Arc::new(SecondaryDb::open(MemEnv::new(), "sc", opts, specs).expect("open"))
}

fn doc(attr: i64) -> Document {
    let mut d = Document::new();
    d.set("A", Value::Int(attr));
    d
}

// ---------------------------------------------------------------------------
// scan_vs_put
// ---------------------------------------------------------------------------

/// Serial oracle for [`scan_vs_put`]: a sequence counter plus the set
/// of inserted keys; a scan returns the set in key order.
struct ScanSpec;

impl Spec for ScanSpec {
    type Op = Op;
    type Ret = Ret;
    type State = (u64, BTreeSet<String>);

    fn init(&self) -> Self::State {
        (0, BTreeSet::new())
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        let mut next = state.clone();
        match op {
            Op::Put(pk) => {
                next.0 += 1;
                next.1.insert(pk.clone());
                let seq = next.0;
                (next, Ret::Seq(seq))
            }
            Op::Scan => {
                let keys = state.1.iter().cloned().collect();
                (next, Ret::Keys(keys))
            }
            _ => unreachable!("no other ops in this scenario"),
        }
    }
}

/// Two shards, one writer putting a key on each shard in order, one
/// scatter-gather scanner. Clean iff cross-shard scans are snapshot
/// consistent.
pub fn scan_vs_put() -> Instance {
    super::reset_faults();
    let db = open(2, &[]);
    // Two keys that hash-route to different shards, named so the
    // shard-0 key sorts first (the read-skew witness needs the scan to
    // visit the first-written key's shard before the second's).
    let mut on0 = None;
    let mut on1 = None;
    for i in 0..64 {
        let k = format!("k{i:02}");
        match db.shard_of(&k) {
            0 if on0.is_none() => on0 = Some(k),
            1 if on1.is_none() => on1 = Some(k),
            _ => {}
        }
    }
    let (first, second) = (on0.expect("shard-0 key"), on1.expect("shard-1 key"));
    let rec = Recorder::<Op, Ret>::new();

    let writer = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        let (first, second) = (first.clone(), second.clone());
        move || {
            for pk in [first, second] {
                let inv = rec.invoke();
                let seq = db.put(&pk, &Document::new()).expect("put");
                rec.finish(inv, Op::Put(pk), Ret::Seq(seq));
            }
        }
    };
    let scanner = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        move || {
            let inv = rec.invoke();
            let rows = db.scan_primary("k", "kzz", None).expect("scan");
            let keys = rows
                .into_iter()
                .map(|(pk, _)| String::from_utf8(pk).expect("utf8 pk"))
                .collect();
            rec.finish(inv, Op::Scan, Ret::Keys(keys));
        }
    };

    Instance {
        threads: vec![
            ("writer".to_string(), Box::new(writer)),
            ("scanner".to_string(), Box::new(scanner)),
        ],
        check: Box::new(move || check_linearizable(&ScanSpec, &rec.take())),
    }
}

// ---------------------------------------------------------------------------
// eager_range
// ---------------------------------------------------------------------------

/// Serial oracle for [`eager_range`]: the prepopulated index state is
/// fixed and the concurrent writer stays outside the queried range, so
/// the range lookup has exactly one correct answer.
struct RangeSpec;

impl Spec for RangeSpec {
    type Op = Op;
    type Ret = Ret;
    type State = u64;

    fn init(&self) -> Self::State {
        5 // five prepopulation puts
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            Op::Put(_) => (state + 1, Ret::Seq(state + 1)),
            Op::Range => (
                *state,
                Ret::Keys(vec!["pk3".to_string(), "pk2".to_string()]),
            ),
            _ => unreachable!("no other ops in this scenario"),
        }
    }
}

/// Single Eager-indexed shard with a stale high-sequence posting; a
/// K=2 range lookup races an out-of-range writer. `k_prefix_bug`
/// re-enables the PR 7 candidate-heap truncation.
pub fn eager_range(k_prefix_bug: bool) -> Instance {
    super::reset_faults();
    ldbpp_core::model_bugs::set_eager_k_prefix(k_prefix_bug);
    let db = open(1, &[("A", IndexKind::EagerStandalone)]);
    // Prepopulate (sequences 1..=5). The two updates of pk1 leave a
    // stale `(pk1, seq 4)` posting at the top of value 2's list while
    // pk1's live value (100) is outside the queried range [1, 3].
    db.put("pk1", &doc(1)).expect("prep");
    db.put("pk2", &doc(2)).expect("prep");
    db.put("pk3", &doc(3)).expect("prep");
    db.put("pk1", &doc(2)).expect("prep");
    db.put("pk1", &doc(100)).expect("prep");
    let rec = Recorder::<Op, Ret>::new();

    let writer = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        move || {
            let inv = rec.invoke();
            let seq = db.put("pk4", &doc(999)).expect("put");
            rec.finish(inv, Op::Put("pk4".to_string()), Ret::Seq(seq));
        }
    };
    let reader = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        move || {
            let inv = rec.invoke();
            let hits = db
                .range_lookup("A", &Value::Int(1), &Value::Int(3), Some(2))
                .expect("range_lookup");
            let keys = hits
                .into_iter()
                .map(|h| String::from_utf8(h.key).expect("utf8 pk"))
                .collect();
            rec.finish(inv, Op::Range, Ret::Keys(keys));
        }
    };

    Instance {
        threads: vec![
            ("writer".to_string(), Box::new(writer)),
            ("reader".to_string(), Box::new(reader)),
        ],
        check: Box::new(move || check_linearizable(&RangeSpec, &rec.take())),
    }
}

// ---------------------------------------------------------------------------
// delete_vs_lookup
// ---------------------------------------------------------------------------

/// Serial oracle for [`delete_vs_lookup`]: one live record, one delete.
/// A lookup sees the record iff it linearizes before the delete, and a
/// point-get must agree — once a lookup has observed the deletion, no
/// later operation may resurrect the record.
struct DeleteSpec;

impl Spec for DeleteSpec {
    type Op = Op;
    type Ret = Ret;
    type State = bool; // is "px" still live?

    fn init(&self) -> Self::State {
        true
    }

    fn apply(&self, state: &Self::State, op: &Self::Op) -> (Self::State, Self::Ret) {
        match op {
            Op::Delete(_) => (false, Ret::Unit),
            Op::Lookup => {
                let keys = if *state {
                    vec!["px".to_string()]
                } else {
                    Vec::new()
                };
                (*state, Ret::Keys(keys))
            }
            Op::Get(_) => (*state, Ret::Found(*state)),
            _ => unreachable!("no other ops in this scenario"),
        }
    }
}

/// A delete racing a reader (index lookup, then point-get) on an
/// Eager-indexed shard. With the correct tombstone-before-cleanup
/// ordering every window is linearizable: the reader can at worst see a
/// stale posting, which validation against the primary filters out.
/// `reorder_bug` re-enables the PR 8 cleanup-before-tombstone ordering,
/// opening a window where the lookup misses a record that is still live
/// — the reader's following point-get finds it, and no serial order
/// explains `Lookup -> []` followed by `Get -> found`.
///
/// The final state must additionally pass the posting-table integrity
/// scan with no dangling posting.
pub fn delete_vs_lookup(reorder_bug: bool) -> Instance {
    super::reset_faults();
    ldbpp_core::model_bugs::set_tombstone_after_cleanup(reorder_bug);
    let db = open(1, &[("A", IndexKind::EagerStandalone)]);
    db.put("px", &doc(7)).expect("prep");
    let rec = Recorder::<Op, Ret>::new();

    let deleter = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        move || {
            let inv = rec.invoke();
            db.delete("px").expect("delete");
            rec.finish(inv, Op::Delete("px".to_string()), Ret::Unit);
        }
    };
    let reader = {
        let db = Arc::clone(&db);
        let rec = Arc::clone(&rec);
        move || {
            let inv = rec.invoke();
            let hits = db.lookup("A", &Value::Int(7), None).expect("lookup");
            let keys = hits
                .into_iter()
                .map(|h| String::from_utf8(h.key).expect("utf8 pk"))
                .collect();
            rec.finish(inv, Op::Lookup, Ret::Keys(keys));
            let inv = rec.invoke();
            let found = db.get("px").expect("get").is_some();
            rec.finish(inv, Op::Get("px".to_string()), Ret::Found(found));
        }
    };

    Instance {
        threads: vec![
            ("deleter".to_string(), Box::new(deleter)),
            ("reader".to_string(), Box::new(reader)),
        ],
        check: Box::new(move || {
            check_linearizable(&DeleteSpec, &rec.take())?;
            let report = db.check_integrity();
            let dangling: Vec<String> = report
                .violations
                .iter()
                .filter(|v| v.code == CheckCode::DanglingIndexEntry)
                .map(|v| v.detail.clone())
                .collect();
            if dangling.is_empty() {
                Ok(())
            } else {
                Err(format!("dangling index entries: {}", dangling.join("; ")))
            }
        }),
    }
}
