//! Minimized-schedule regression corpus: the witness seed for every
//! seeded protocol bug, replayed deterministically — no exploration, one
//! schedule per test. A corpus failure means either the detector rotted
//! (violation no longer reproduced) or the model's instruction stream
//! changed (replay divergence); in the latter case re-mint the seed from
//! the corresponding `model_checks` catch test and update it here.
#![cfg(feature = "check")]

use ldbpp_model::explore::{replay, Instance};
use ldbpp_model::models::{drain, group_commit, scatter};

/// Replay `seed` against a fresh instance and require the violation to
/// reproduce on the first (and only) run, mentioning `expect`.
fn assert_replays(seed: &str, instance: Instance, what: &str, expect: &str) {
    let v = replay(seed, instance)
        .unwrap_or_else(|e| panic!("{what}: corpus seed {seed} diverged: {e}"))
        .unwrap_or_else(|| panic!("{what}: corpus seed {seed} no longer reproduces"));
    assert!(
        v.description.contains(expect),
        "{what}: corpus seed {seed} reproduced a different violation: {}",
        v.description
    );
}

#[test]
fn corpus_group_commit_early_publish() {
    let _g = ldbpp_model::exclusive();
    let cfg = group_commit::Config {
        early_publish: true,
        ..Default::default()
    };
    assert_replays(
        "v1:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1:78d761e8",
        group_commit::instance(cfg),
        "early-publish",
        "vclock",
    );
}

#[test]
fn corpus_group_commit_lost_leader_wakeup() {
    let _g = ldbpp_model::exclusive();
    let cfg = group_commit::Config {
        skip_leader_notify: true,
        ..Default::default()
    };
    assert_replays(
        "v1:0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.0.0.0.0.0.0.0.0.0.0:8811dd54",
        group_commit::instance(cfg),
        "skip-notify",
        "deadlock",
    );
}

#[test]
fn corpus_eager_k_prefix_truncation() {
    let _g = ldbpp_model::exclusive();
    assert_replays(
        "v1:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0:7200be59",
        scatter::eager_range(true),
        "eager-k-prefix",
        "not linearizable",
    );
}

#[test]
fn corpus_cleanup_before_tombstone() {
    let _g = ldbpp_model::exclusive();
    assert_replays(
        "v1:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1.0.0:7e598a3d",
        scatter::delete_vs_lookup(true),
        "tombstone-reorder",
        "not linearizable",
    );
}

#[test]
fn corpus_drain_late_registration() {
    let _g = ldbpp_model::exclusive();
    assert_replays(
        "v1:0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.0.1.1.1.1.1.1.1.1.1.1.0.0.0.0:b6cd7643",
        drain::drain(true),
        "late-register",
        "acknowledged",
    );
}
