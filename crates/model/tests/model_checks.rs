//! Schedule exploration of the three protocol models: clean sweeps of
//! the correct engine, seeded-fault detection with replayable seeds,
//! and replay determinism. The regression corpus of minimized seeds
//! lives in `tests/corpus.rs`.
#![cfg(feature = "check")]

use ldbpp_model::explore::{replay, ExploreOutcome, Explorer, Instance};
use ldbpp_model::models::{drain, group_commit, scatter};

/// A clean sweep must actually cover the space the issue budgets for.
const MIN_SCHEDULES: u64 = 1000;

fn assert_clean(outcome: &ExploreOutcome, what: &str) {
    if let Some(v) = &outcome.violation {
        panic!(
            "{what}: unexpected violation on seed {}\n  {}",
            v.seed, v.description
        );
    }
    assert!(
        outcome.stats.schedules >= MIN_SCHEDULES || outcome.stats.exhausted,
        "{what}: only {} schedules explored without exhausting the space",
        outcome.stats.schedules
    );
}

/// Explore until a violation is found, assert one was, print its seed,
/// and prove the seed replays the violation deterministically on the
/// first try.
fn assert_caught(mut factory: impl FnMut() -> Instance, what: &str, expect: &str) {
    let outcome = Explorer::bounded().explore(&mut factory);
    let v = outcome.violation.unwrap_or_else(|| {
        panic!(
            "{what}: seeded bug not caught in {} schedules",
            outcome.stats.schedules
        )
    });
    println!(
        "{what}: caught after {} schedules, seed {} — {}",
        outcome.stats.schedules, v.seed, v.description
    );
    assert!(
        v.description.contains(expect),
        "{what}: violation does not mention {expect:?}: {}",
        v.description
    );
    let replayed = replay(&v.seed, factory())
        .unwrap_or_else(|e| panic!("{what}: replay of {} diverged: {e}", v.seed))
        .unwrap_or_else(|| panic!("{what}: replay of {} did not reproduce", v.seed));
    // Compare by the expected marker, not byte equality: descriptions
    // embed raw global ids (lock numbers, vclock domain ids) that
    // differ between explorations within one process.
    assert!(
        replayed.description.contains(expect),
        "{what}: replay produced a different violation: {}",
        replayed.description
    );
}

// ---------------------------------------------------------------------------
// (a) group commit: leader handoff + sequence rebase
// ---------------------------------------------------------------------------

#[test]
fn group_commit_sweep_is_clean() {
    let _g = ldbpp_model::exclusive();
    // Sleep sets collapse the WAL-less write path's schedule space
    // below the coverage floor at the default bound; allow extra
    // preemptions to sweep deeper interleavings of the handoff.
    let explorer = Explorer {
        preemption_bound: 4,
        ..Explorer::bounded()
    };
    let outcome = explorer.explore(&mut || group_commit::instance(group_commit::Config::default()));
    assert_clean(&outcome, "group-commit");
    println!(
        "group-commit: {} schedules, exhausted: {}",
        outcome.stats.schedules, outcome.stats.exhausted
    );
}

#[test]
fn group_commit_catches_early_publish() {
    let _g = ldbpp_model::exclusive();
    let cfg = group_commit::Config {
        early_publish: true,
        ..Default::default()
    };
    // The reader's Acquire load observes a sequence with no publication
    // record: the vclock consume detector panics.
    assert_caught(|| group_commit::instance(cfg), "early-publish", "vclock");
}

#[test]
fn group_commit_catches_lost_leader_wakeup() {
    let _g = ldbpp_model::exclusive();
    let cfg = group_commit::Config {
        skip_leader_notify: true,
        ..Default::default()
    };
    // A follower promoted without notify_one sleeps forever: deadlock.
    assert_caught(|| group_commit::instance(cfg), "skip-notify", "deadlock");
}

// ---------------------------------------------------------------------------
// (b) scatter-gather reads vs. the shared sequence clock
// ---------------------------------------------------------------------------

#[test]
fn scan_vs_put_sweep_is_clean() {
    let _g = ldbpp_model::exclusive();
    let outcome = Explorer::bounded().explore(&mut scatter::scan_vs_put);
    assert_clean(&outcome, "scan-vs-put");
    println!(
        "scan-vs-put: {} schedules, exhausted: {}",
        outcome.stats.schedules, outcome.stats.exhausted
    );
}

#[test]
fn eager_range_sweep_is_clean() {
    let _g = ldbpp_model::exclusive();
    let outcome = Explorer::bounded().explore(&mut || scatter::eager_range(false));
    assert_clean(&outcome, "eager-range");
}

#[test]
fn eager_range_catches_k_prefix_truncation() {
    let _g = ldbpp_model::exclusive();
    // PR 7's bug re-enabled: the candidate heap truncated at K before
    // validation under-fills the result; the serial oracle rejects it.
    assert_caught(
        || scatter::eager_range(true),
        "eager-k-prefix",
        "not linearizable",
    );
}

#[test]
fn delete_vs_lookup_sweep_is_clean() {
    let _g = ldbpp_model::exclusive();
    let outcome = Explorer::bounded().explore(&mut || scatter::delete_vs_lookup(false));
    assert_clean(&outcome, "delete-vs-lookup");
}

#[test]
fn delete_vs_lookup_catches_cleanup_before_tombstone() {
    let _g = ldbpp_model::exclusive();
    // PR 8's ordering re-enabled: in the window between the index
    // cleanup and the primary tombstone, a lookup misses a record the
    // reader's next point-get still finds — no serial order fits.
    assert_caught(
        || scatter::delete_vs_lookup(true),
        "tombstone-reorder",
        "not linearizable",
    );
}

// ---------------------------------------------------------------------------
// (c) SHUTDOWN drain vs. in-flight BATCH
// ---------------------------------------------------------------------------

#[test]
fn drain_sweep_is_clean() {
    let _g = ldbpp_model::exclusive();
    // The drain model is tiny, so a deeper preemption bound is
    // affordable and needed to clear the 1000-schedule coverage floor.
    let explorer = Explorer {
        preemption_bound: 3,
        ..Explorer::bounded()
    };
    let outcome = explorer.explore(&mut || drain::drain(false));
    assert_clean(&outcome, "drain");
    println!(
        "drain: {} schedules, exhausted: {}",
        outcome.stats.schedules, outcome.stats.exhausted
    );
}

#[test]
fn drain_catches_late_registration() {
    let _g = ldbpp_model::exclusive();
    // Check-then-register TOCTOU: the gate drains inside the window and
    // the shutdown flush misses an acknowledged batch.
    assert_caught(|| drain::drain(true), "late-register", "acknowledged");
}
