//! `repair_db`: rebuild a database from whatever is readable on disk.
//!
//! Modelled on LevelDB's `RepairDB`. The repairer deliberately ignores
//! CURRENT and the MANIFEST — the files most likely to be damaged or lying
//! after a crash or bit rot — and instead treats the directory listing as
//! the source of truth:
//!
//! 1. Every `NNNNNN.ldb` file is **fully scanned**. Its metadata
//!    (smallest/largest keys, entry and block counts, sequence bounds,
//!    file-level zone maps) is re-derived from the scan rather than trusted
//!    from any manifest. Files with corrupt blocks are rewritten from the
//!    surviving entries; files whose footer or index cannot be read are
//!    quarantined.
//! 2. Every `NNNNNN.log` WAL is replayed in salvage mode (resynchronizing
//!    at the next 32 KiB block boundary after a bad record, see
//!    [`crate::wal::LogReader::new_salvaging`]) and its records are
//!    converted into fresh L0 tables.
//! 3. Nothing is deleted on suspicion: unreadable or partly-readable
//!    originals move into a `lost/` quarantine subdirectory so an operator
//!    (or a better tool) can do forensics later.
//! 4. Survivors are renumbered in ascending max-sequence order and a new
//!    MANIFEST is synthesized placing **all of them in level 0**. L0 is the
//!    only level that tolerates arbitrary overlap, and its files are probed
//!    newest-number-first — so the renumbering restores recency order and
//!    normal compaction re-sorts the tree from there.
//!
//! The database must not be open while `repair_db` runs.

use crate::block::Block;
use crate::env::{Env, IoStats};
use crate::ikey::{self, compare_internal};
use crate::memtable::MemTable;
use crate::options::DbOptions;
use crate::table::{read_block_contents, BlockHandle, Footer, Table, TableBuilder, FOOTER_SIZE};
use crate::version::{
    current_tmp_file_name, install_current, log_file_name, manifest_file_name, table_file_name,
    FileMetaData, VersionEdit,
};
use crate::wal::{LogReader, LogWriter};
use crate::write_batch::WriteBatch;
use ldbpp_common::{Error, Result};
use std::sync::Arc;

/// What [`repair_db`] did, file by file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[must_use = "inspect the report: quarantined files mean acked writes were lost"]
pub struct RepairReport {
    /// Tables that scanned clean and were kept in place (metadata
    /// re-derived from the scan).
    pub tables_kept: usize,
    /// Tables with corrupt blocks whose surviving entries were rewritten
    /// into a fresh file (the damaged original is quarantined).
    pub tables_rewritten: usize,
    /// New L0 tables built from salvaged WAL records.
    pub tables_from_wal: usize,
    /// File names (relative to the database directory) moved into `lost/`.
    pub quarantined: Vec<String>,
    /// Data blocks skipped because their checksum or framing was bad.
    pub corrupt_blocks_skipped: u64,
    /// WAL records recovered into L0 tables.
    pub wal_records_recovered: u64,
    /// WAL corruption events resynchronized past (see
    /// [`crate::wal::LogReader::records_salvaged`]).
    pub wal_records_salvaged: u64,
    /// WAL bytes dropped while resynchronizing.
    pub wal_bytes_dropped: u64,
    /// Entries preserved across all surviving tables.
    pub entries_recovered: u64,
    /// Highest sequence number observed anywhere (recorded in the new
    /// MANIFEST so future writes cannot collide with salvaged history).
    pub last_sequence: u64,
}

impl RepairReport {
    /// True when nothing was quarantined, rewritten, or dropped — the
    /// directory contained only clean files.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
            && self.tables_rewritten == 0
            && self.corrupt_blocks_skipped == 0
            && self.wal_records_salvaged == 0
            && self.wal_bytes_dropped == 0
    }
}

/// Outcome of scanning one `.ldb` file.
enum TableScan {
    /// Footer, index, every data block and the in-memory metadata all
    /// check out: keep the file, trust only the re-derived metadata.
    Intact {
        meta: FileMetaData,
        max_seq: u64,
        entries: u64,
    },
    /// Some blocks (or the reader metadata) are damaged but entries
    /// survive: rewrite them into a fresh table.
    Partial {
        survivors: Vec<(Vec<u8>, Vec<u8>)>,
        corrupt_blocks: u64,
    },
    /// Nothing usable (bad footer/index, or every block corrupt).
    Unreadable { corrupt_blocks: u64 },
}

/// One survivor table awaiting renumbering: `(max_seq, current number,
/// metadata)`.
struct Survivor {
    max_seq: u64,
    number: u64,
    meta: FileMetaData,
}

/// Rebuild the database in `dbname` from whatever is readable, ignoring
/// CURRENT and any MANIFEST. See the module docs for the full salvage
/// policy. `opts` must describe the table format of the files being
/// repaired (same `indexed_attrs`/`extractor` the database was built with,
/// so rewritten tables regain their embedded secondary metadata).
///
/// On success the directory holds a fresh MANIFEST + CURRENT naming every
/// survivor in L0, and `lost/` holds everything that could not be saved.
/// The next [`crate::db::Db::open`] proceeds normally.
pub fn repair_db(env: &Arc<dyn Env>, dbname: &str, opts: &DbOptions) -> Result<RepairReport> {
    let names = env.list(dbname)?;
    let mut report = RepairReport::default();

    // Classify the directory. Numbers from *any* file (including garbage
    // manifests) raise the floor for fresh allocations.
    let mut table_numbers: Vec<u64> = Vec::new();
    let mut log_numbers: Vec<u64> = Vec::new();
    let mut manifest_names: Vec<String> = Vec::new();
    let mut max_number = 0u64;
    for fname in &names {
        if let Some(numtext) = fname.strip_suffix(".ldb") {
            if let Ok(n) = numtext.parse::<u64>() {
                table_numbers.push(n);
                max_number = max_number.max(n);
            }
        } else if let Some(numtext) = fname.strip_suffix(".log") {
            if let Ok(n) = numtext.parse::<u64>() {
                log_numbers.push(n);
                max_number = max_number.max(n);
            }
        } else if let Some(numtext) = fname.strip_prefix("MANIFEST-") {
            manifest_names.push(fname.clone());
            if let Ok(n) = numtext.parse::<u64>() {
                max_number = max_number.max(n);
            }
        }
    }
    if table_numbers.is_empty() && log_numbers.is_empty() && manifest_names.is_empty() {
        return Err(Error::invalid(format!(
            "{dbname}: not a database directory (no tables, logs, or manifests)"
        )));
    }
    table_numbers.sort_unstable();
    log_numbers.sort_unstable();
    let mut next_number = max_number + 1;

    // Best-effort scan of the old manifests (salvaging reader — they may be
    // the very thing that is corrupt) for counter floors: last_sequence and
    // the erased-keys tally that gates strict integrity checking.
    let mut last_sequence = 0u64;
    let mut erased_keys = 0u64;
    for fname in &manifest_names {
        let Ok(data) = env.read_all(&format!("{dbname}/{fname}")) else {
            continue;
        };
        let mut reader = LogReader::new_salvaging(&data);
        while let Ok(Some(record)) = reader.read_record() {
            let Ok(edit) = VersionEdit::decode(&record) else {
                continue;
            };
            if let Some(v) = edit.last_sequence {
                last_sequence = last_sequence.max(v);
            }
            if let Some(v) = edit.erased_keys {
                erased_keys = erased_keys.max(v);
            }
        }
    }

    // Salvage every table file.
    let mut survivors: Vec<Survivor> = Vec::new();
    for number in table_numbers {
        let fname = format!("{number:06}.ldb");
        match scan_table(env, dbname, number) {
            TableScan::Intact {
                meta,
                max_seq,
                entries,
            } => {
                report.tables_kept += 1;
                report.entries_recovered += entries;
                last_sequence = last_sequence.max(max_seq);
                survivors.push(Survivor {
                    max_seq,
                    number,
                    meta,
                });
            }
            TableScan::Partial {
                survivors: entries,
                corrupt_blocks,
            } => {
                report.corrupt_blocks_skipped += corrupt_blocks;
                let new_number = next_number;
                next_number += 1;
                let (meta, max_seq) = build_table(env, opts, dbname, new_number, &entries)?;
                report.tables_rewritten += 1;
                report.entries_recovered += meta.num_entries;
                last_sequence = last_sequence.max(max_seq);
                survivors.push(Survivor {
                    max_seq,
                    number: new_number,
                    meta,
                });
                quarantine(env, dbname, &fname, &mut report)?;
            }
            TableScan::Unreadable { corrupt_blocks } => {
                report.corrupt_blocks_skipped += corrupt_blocks;
                quarantine(env, dbname, &fname, &mut report)?;
            }
        }
    }

    // Convert every WAL into fresh L0 tables. WAL records are the newest
    // data in the directory, so these tables naturally sort last in the
    // max-sequence renumbering below.
    for number in log_numbers {
        let fname = format!("{number:06}.log");
        let Ok(data) = env.read_all(&log_file_name(dbname, number)) else {
            quarantine(env, dbname, &fname, &mut report)?;
            continue;
        };
        let mut reader = LogReader::new_salvaging(&data);
        let mut mem = MemTable::new();
        let mut decode_failures = 0u64;
        let mut wal_max_seq = 0u64;
        while let Some(record) = reader.read_record()? {
            let Ok((seq, ops)) = WriteBatch::decode(&record) else {
                decode_failures += 1;
                report.wal_bytes_dropped += record.len() as u64;
                continue;
            };
            for (i, op) in ops.iter().enumerate() {
                mem.add(seq + i as u64, op.vtype, &op.key, &op.value);
            }
            report.wal_records_recovered += 1;
            wal_max_seq = wal_max_seq.max(seq + ops.len().max(1) as u64 - 1);
            if mem.approximate_bytes() >= opts.write_buffer_size {
                let new_number = next_number;
                next_number += 1;
                let (meta, max_seq) = build_table_from_mem(env, opts, dbname, new_number, &mem)?;
                report.tables_from_wal += 1;
                report.entries_recovered += meta.num_entries;
                survivors.push(Survivor {
                    max_seq,
                    number: new_number,
                    meta,
                });
                mem = MemTable::new();
            }
        }
        if !mem.is_empty() {
            let new_number = next_number;
            next_number += 1;
            let (meta, max_seq) = build_table_from_mem(env, opts, dbname, new_number, &mem)?;
            report.tables_from_wal += 1;
            report.entries_recovered += meta.num_entries;
            survivors.push(Survivor {
                max_seq,
                number: new_number,
                meta,
            });
        }
        last_sequence = last_sequence.max(wal_max_seq);
        report.wal_records_salvaged += reader.records_salvaged() + decode_failures;
        report.wal_bytes_dropped += reader.bytes_dropped();
        if reader.records_salvaged() > 0 || reader.bytes_dropped() > 0 || decode_failures > 0 {
            // The log lost data: keep the original for forensics.
            quarantine(env, dbname, &fname, &mut report)?;
        } else {
            let _ = env.remove(&log_file_name(dbname, number));
        }
    }

    // Renumber survivors so L0's newest-number-first probe order matches
    // recency: ascending max sequence gets ascending file numbers. (A
    // compaction output keeps old entries under a high file number, so the
    // original numbers are *not* a recency order.)
    survivors.sort_by_key(|s| (s.max_seq, s.number));
    for s in &mut survivors {
        let new_number = next_number;
        next_number += 1;
        env.rename(
            &table_file_name(dbname, s.number),
            &table_file_name(dbname, new_number),
        )?;
        s.number = new_number;
        s.meta.number = new_number;
    }

    // Synthesize the new MANIFEST: one snapshot edit, every survivor in L0.
    let manifest_number = next_number;
    next_number += 1;
    let log_number = next_number; // reserved; Db::open creates the next WAL above it
    next_number += 1;
    let mut edit = VersionEdit {
        log_number: Some(log_number),
        next_file_number: Some(next_number),
        last_sequence: Some(last_sequence),
        erased_keys: Some(erased_keys),
        ..Default::default()
    };
    for s in &survivors {
        edit.add_file(0, s.meta.clone());
    }
    let mut manifest =
        LogWriter::new(env.new_writable(&manifest_file_name(dbname, manifest_number))?);
    manifest.add_record(&edit.encode())?;
    manifest.sync()?;
    install_current(env.as_ref(), dbname, manifest_number)?;

    // Only now that CURRENT points at the new MANIFEST are the old ones
    // garbage. (A crash before this point leaves them for the next repair.)
    for fname in &manifest_names {
        let _ = env.remove(&format!("{dbname}/{fname}"));
    }
    if env.exists(&current_tmp_file_name(dbname)) {
        let _ = env.remove(&current_tmp_file_name(dbname));
    }

    report.last_sequence = last_sequence;
    Ok(report)
}

/// Move `{dbname}/{fname}` into the `lost/` quarantine subdirectory and
/// record it in the report. Nothing is ever deleted on suspicion.
fn quarantine(
    env: &Arc<dyn Env>,
    dbname: &str,
    fname: &str,
    report: &mut RepairReport,
) -> Result<()> {
    env.mkdir_all(&format!("{dbname}/lost"))?;
    env.rename(
        &format!("{dbname}/{fname}"),
        &format!("{dbname}/lost/{fname}"),
    )?;
    report.quarantined.push(fname.to_string());
    Ok(())
}

/// Full scan of one table file. Trusts nothing: the footer and index are
/// needed to find the blocks at all, but every data block is read and
/// CRC-verified, every key parsed, and the overall ordering checked.
fn scan_table(env: &Arc<dyn Env>, dbname: &str, number: u64) -> TableScan {
    let path = table_file_name(dbname, number);
    let Ok(file) = env.open_random(&path) else {
        return TableScan::Unreadable { corrupt_blocks: 0 };
    };
    let size = file.size();
    if size < FOOTER_SIZE as u64 {
        return TableScan::Unreadable { corrupt_blocks: 0 };
    }
    let footer = match file
        .read(size - FOOTER_SIZE as u64, FOOTER_SIZE)
        .and_then(|bytes| Footer::decode(&bytes))
    {
        Ok(f) => f,
        Err(_) => return TableScan::Unreadable { corrupt_blocks: 0 },
    };
    let index =
        match read_block_contents(file.as_ref(), footer.index_handle, None).and_then(Block::new) {
            Ok(b) => b,
            Err(_) => return TableScan::Unreadable { corrupt_blocks: 0 },
        };
    let mut handles: Vec<BlockHandle> = Vec::new();
    let mut it = index.iter(compare_internal);
    it.seek_to_first();
    while it.valid() {
        match BlockHandle::decode_from(it.value()) {
            Ok((h, _)) => handles.push(h),
            Err(_) => return TableScan::Unreadable { corrupt_blocks: 0 },
        }
        it.next();
    }

    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut corrupt_blocks = 0u64;
    let mut max_seq = 0u64;
    for h in &handles {
        let block = match read_block_contents(file.as_ref(), *h, None).and_then(Block::new) {
            Ok(b) => b,
            Err(_) => {
                corrupt_blocks += 1;
                continue;
            }
        };
        // Validate the whole block before committing any of its entries.
        let mut block_entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut block_max_seq = 0u64;
        let mut ok = true;
        let mut bit = block.iter(compare_internal);
        bit.seek_to_first();
        while bit.valid() {
            match ikey::parse_internal_key(bit.key()) {
                Ok((_, seq, _)) => block_max_seq = block_max_seq.max(seq),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            block_entries.push((bit.key().to_vec(), bit.value().to_vec()));
            bit.next();
        }
        if !ok {
            corrupt_blocks += 1;
            continue;
        }
        entries.extend(block_entries);
        max_seq = max_seq.max(block_max_seq);
    }
    if entries.is_empty() {
        return TableScan::Unreadable { corrupt_blocks };
    }
    let ordered = entries
        .windows(2)
        .all(|w| compare_internal(&w[0].0, &w[1].0).is_lt());

    if corrupt_blocks == 0 && ordered {
        // The reader metadata (filters, secondary meta) must also load, or
        // the kept file would fail at query time; a metadata failure
        // demotes the file to the rewrite path, which regenerates it.
        let stats = IoStats::new();
        if let Ok(table) = Table::open(file, number, stats, None) {
            let sec_file_zones = table
                .secondary_attrs()
                .filter_map(|attr| {
                    table
                        .sec_file_zone(attr)
                        .map(|z| (attr.to_string(), z.clone()))
                })
                .collect();
            let num_entries = entries.len() as u64;
            let meta = FileMetaData {
                number,
                file_size: size,
                num_entries,
                num_blocks: handles.len() as u64,
                smallest: entries[0].0.clone(),
                largest: entries[entries.len() - 1].0.clone(),
                sec_file_zones,
            };
            return TableScan::Intact {
                meta,
                max_seq,
                entries: num_entries,
            };
        }
    }

    // Survivors must be strictly increasing for the builder; sort and drop
    // duplicate internal keys (possible only if the index lied).
    entries.sort_by(|a, b| compare_internal(&a.0, &b.0));
    entries.dedup_by(|a, b| compare_internal(&a.0, &b.0).is_eq());
    TableScan::Partial {
        survivors: entries,
        corrupt_blocks,
    }
}

/// Build table `number` from sorted `(internal key, value)` entries,
/// returning the re-derived metadata and the highest sequence inside.
fn build_table(
    env: &Arc<dyn Env>,
    opts: &DbOptions,
    dbname: &str,
    number: u64,
    entries: &[(Vec<u8>, Vec<u8>)],
) -> Result<(FileMetaData, u64)> {
    let file = env.new_writable(&table_file_name(dbname, number))?;
    let mut builder = TableBuilder::new(opts, file);
    let mut max_seq = 0u64;
    for (key, value) in entries {
        let (_, seq, _) = ikey::parse_internal_key(key)?;
        max_seq = max_seq.max(seq);
        builder.add(key, value)?;
    }
    let meta = builder.finish()?;
    Ok((
        FileMetaData {
            number,
            file_size: meta.file_size,
            num_entries: meta.num_entries,
            num_blocks: meta.num_blocks,
            smallest: meta.smallest,
            largest: meta.largest,
            sec_file_zones: meta.sec_file_zones,
        },
        max_seq,
    ))
}

/// Build table `number` from a salvaged-WAL memtable.
fn build_table_from_mem(
    env: &Arc<dyn Env>,
    opts: &DbOptions,
    dbname: &str,
    number: u64,
    mem: &MemTable,
) -> Result<(FileMetaData, u64)> {
    let mut entries: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut it = mem.iter();
    it.seek_to_first();
    while it.valid() {
        entries.push((it.key().to_vec(), it.value().to_vec()));
        it.next();
    }
    build_table(env, opts, dbname, number, &entries)
}
