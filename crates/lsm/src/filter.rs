//! Bloom filters and the per-block filter block format.
//!
//! LevelDB++ attaches one bloom filter **per data block** — for the primary
//! key and for each indexed secondary attribute (the Embedded Index of the
//! paper, §3). The filter for a block is computed when the SSTable is
//! built, and all filters are held in memory at read time, converting disk
//! scans into in-memory filter probes.
//!
//! The bloom filter uses the standard double-hashing construction
//! (Kirsch–Mitzenmacher) with `k = bits_per_key · ln 2` probes, matching
//! the analysis in the paper's Appendix A.3 (minimal false-positive rate
//! `2^(−m/S·ln 2)`).

use ldbpp_common::coding::{decode_fixed32, put_fixed32};
use ldbpp_common::{Error, Result};

/// Builds and probes bloom filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomPolicy {
    bits_per_key: usize,
    k: usize,
}

impl BloomPolicy {
    /// A policy with the given bits-per-key budget.
    ///
    /// The probe count is clamped to `[1, 30]` as in LevelDB.
    pub fn new(bits_per_key: usize) -> BloomPolicy {
        let k = ((bits_per_key as f64) * 0.69) as usize; // ln 2 ≈ 0.69
        BloomPolicy {
            bits_per_key,
            k: k.clamp(1, 30),
        }
    }

    /// Bits-per-key budget this policy was built with.
    pub fn bits_per_key(&self) -> usize {
        self.bits_per_key
    }

    /// Expected false-positive rate at this configuration (`(1/2)^k` at the
    /// optimal fill; the paper's `2^(−m/S ln 2)`).
    pub fn expected_fp_rate(&self) -> f64 {
        0.5f64.powi(self.k as i32)
    }

    /// Build a filter over `keys`; appends nothing if `keys` is empty
    /// (an empty filter matches nothing).
    pub fn create_filter(&self, keys: &[&[u8]]) -> Vec<u8> {
        if keys.is_empty() {
            return Vec::new();
        }
        let bits = (keys.len() * self.bits_per_key).max(64);
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;
        let mut filter = vec![0u8; bytes + 1];
        filter[bytes] = self.k as u8;
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_right(17);
            for _ in 0..self.k {
                let bit = (h as usize) % bits;
                filter[bit / 8] |= 1 << (bit % 8);
                h = h.wrapping_add(delta);
            }
        }
        filter
    }

    /// Probe a filter created by [`BloomPolicy::create_filter`].
    pub fn may_contain(filter: &[u8], key: &[u8]) -> bool {
        if filter.len() < 2 {
            return false; // empty filter: definitely absent
        }
        let bytes = filter.len() - 1;
        let bits = bytes * 8;
        let k = filter[bytes] as usize;
        if k > 30 {
            // Reserved for future encodings: err on the safe side.
            return true;
        }
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bit = (h as usize) % bits;
            if filter[bit / 8] & (1 << (bit % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

/// LevelDB's bloom hash (a Murmur-like 32-bit hash).
fn bloom_hash(data: &[u8]) -> u32 {
    const SEED: u32 = 0xbc9f_1d34;
    const M: u32 = 0xc6a4_a793;
    let n = data.len();
    let mut h = SEED ^ (n as u32).wrapping_mul(M);
    let mut chunks = data.chunks_exact(4);
    for w in &mut chunks {
        h = h.wrapping_add(u32::from_le_bytes(w.try_into().unwrap()));
        h = h.wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = 0u32;
        for (i, &b) in rest.iter().enumerate() {
            tail |= (b as u32) << (8 * i);
        }
        h = h.wrapping_add(tail);
        h = h.wrapping_mul(M);
        h ^= h >> 24;
    }
    h
}

// ---------------------------------------------------------------------------
// Filter block: one bloom filter per data block
// ---------------------------------------------------------------------------

/// Builds the per-block filter section of an SSTable.
///
/// Layout: `[filter 0][filter 1]…[offset array: fixed32 × (n+1)][n: fixed32]`.
/// `offset[i]..offset[i+1]` is the filter for data block `i`.
#[derive(Debug, Default)]
pub struct FilterBlockBuilder {
    filters: Vec<u8>,
    offsets: Vec<u32>,
}

impl FilterBlockBuilder {
    /// New empty builder.
    pub fn new() -> FilterBlockBuilder {
        FilterBlockBuilder::default()
    }

    /// Append the filter for the next data block (may be empty).
    pub fn add_filter(&mut self, filter: &[u8]) {
        self.offsets.push(self.filters.len() as u32);
        self.filters.extend_from_slice(filter);
    }

    /// Number of filters added.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if no filters were added.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Serialize the filter block.
    pub fn finish(mut self) -> Vec<u8> {
        self.offsets.push(self.filters.len() as u32);
        let mut out = self.filters;
        for off in &self.offsets {
            put_fixed32(&mut out, *off);
        }
        put_fixed32(&mut out, (self.offsets.len() - 1) as u32);
        out
    }
}

/// Reads a serialized filter block.
#[derive(Debug, Clone)]
pub struct FilterBlockReader {
    data: Vec<u8>,
    offsets_start: usize,
    count: usize,
}

impl FilterBlockReader {
    /// Parse a filter block produced by [`FilterBlockBuilder::finish`].
    pub fn new(data: Vec<u8>) -> Result<FilterBlockReader> {
        if data.len() < 4 {
            return Err(Error::corruption("filter block too small"));
        }
        let count = decode_fixed32(&data[data.len() - 4..]) as usize;
        let offsets_len = (count + 1) * 4;
        if data.len() < 4 + offsets_len {
            return Err(Error::corruption("filter block offsets truncated"));
        }
        let offsets_start = data.len() - 4 - offsets_len;
        Ok(FilterBlockReader {
            data,
            offsets_start,
            count,
        })
    }

    /// Number of per-block filters.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if the block holds no filters.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw filter for data block `i`.
    pub fn filter(&self, i: usize) -> Result<&[u8]> {
        if i >= self.count {
            return Err(Error::invalid(format!(
                "filter index {i} of {}",
                self.count
            )));
        }
        let at = self.offsets_start + i * 4;
        let start = decode_fixed32(&self.data[at..]) as usize;
        let end = decode_fixed32(&self.data[at + 4..]) as usize;
        if start > end || end > self.offsets_start {
            return Err(Error::corruption("filter block bad offsets"));
        }
        Ok(&self.data[start..end])
    }

    /// Probe block `i`'s filter for `key`.
    pub fn may_contain(&self, i: usize, key: &[u8]) -> bool {
        match self.filter(i) {
            Ok(f) => BloomPolicy::may_contain(f, key),
            Err(_) => true, // corrupt filter: fail open
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_false_negatives() {
        let policy = BloomPolicy::new(10);
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let filter = policy.create_filter(&refs);
        for k in &keys {
            assert!(BloomPolicy::may_contain(&filter, k));
        }
    }

    #[test]
    fn false_positive_rate_near_theory() {
        let policy = BloomPolicy::new(10);
        let keys: Vec<Vec<u8>> = (0..10_000)
            .map(|i| format!("key{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let filter = policy.create_filter(&refs);
        let mut fp = 0;
        let probes = 10_000;
        for i in 0..probes {
            if BloomPolicy::may_contain(&filter, format!("absent{i}").as_bytes()) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        // 10 bits/key ⇒ ~1% theoretical; allow generous headroom.
        assert!(rate < 0.03, "false positive rate {rate}");
    }

    #[test]
    fn fp_rate_improves_with_more_bits() {
        let keys: Vec<Vec<u8>> = (0..5000).map(|i| format!("key{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let mut rates = Vec::new();
        for bits in [4usize, 8, 16] {
            let filter = BloomPolicy::new(bits).create_filter(&refs);
            let fp = (0..5000)
                .filter(|i| BloomPolicy::may_contain(&filter, format!("no{i}").as_bytes()))
                .count();
            rates.push(fp as f64 / 5000.0);
        }
        assert!(rates[0] > rates[1] && rates[1] > rates[2], "{rates:?}");
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let policy = BloomPolicy::new(10);
        let filter = policy.create_filter(&[]);
        assert!(filter.is_empty());
        assert!(!BloomPolicy::may_contain(&filter, b"anything"));
    }

    #[test]
    fn expected_fp_rate_monotone() {
        assert!(BloomPolicy::new(20).expected_fp_rate() < BloomPolicy::new(10).expected_fp_rate());
        assert!(BloomPolicy::new(10).bits_per_key() == 10);
    }

    #[test]
    fn filter_block_roundtrip() {
        let policy = BloomPolicy::new(10);
        let mut builder = FilterBlockBuilder::new();
        let block_keys: Vec<Vec<Vec<u8>>> = (0..5)
            .map(|b| (0..20).map(|i| format!("b{b}k{i}").into_bytes()).collect())
            .collect();
        for keys in &block_keys {
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            builder.add_filter(&policy.create_filter(&refs));
        }
        // Block with no keys.
        builder.add_filter(&[]);
        let data = builder.finish();
        let reader = FilterBlockReader::new(data).unwrap();
        assert_eq!(reader.len(), 6);
        for (b, keys) in block_keys.iter().enumerate() {
            for k in keys {
                assert!(reader.may_contain(b, k), "block {b}");
            }
        }
        assert!(!reader.may_contain(5, b"b0k0"));
        assert!(reader.filter(6).is_err());
    }

    #[test]
    fn filter_block_corruption() {
        assert!(FilterBlockReader::new(vec![]).is_err());
        assert!(FilterBlockReader::new(vec![9, 0, 0, 0]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prop_no_false_negatives(
            keys in proptest::collection::hash_set(
                proptest::collection::vec(any::<u8>(), 1..24), 1..200),
            bits in 2usize..20)
        {
            let keys: Vec<Vec<u8>> = keys.into_iter().collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let filter = BloomPolicy::new(bits).create_filter(&refs);
            for k in &keys {
                prop_assert!(BloomPolicy::may_contain(&filter, k));
            }
        }
    }
}
