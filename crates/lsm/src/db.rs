//! The database: write path, read path, flushes and compactions.
//!
//! Two execution modes share one engine:
//!
//! * **Foreground** (`background_work: false`, the default): a write that
//!   fills the memtable flushes it to L0 inline, and a flush that tips a
//!   level over its target runs the compaction inline. This mirrors the
//!   paper's single-threaded LevelDB — per-operation costs are directly
//!   attributable, which is what its experiments measure, and every run is
//!   byte-for-byte deterministic.
//! * **Background** (`background_work: true`): a full memtable is frozen
//!   (`mem` → `imm`) and handed to a dedicated worker thread that flushes
//!   it to L0 and runs any due compactions, so writes return after the WAL
//!   append and memtable insert. L0 backpressure (slowdown / stall
//!   triggers) keeps the worker from falling behind unboundedly.
//!
//! In both modes reads are lock-free with respect to the write path: a
//! reader grabs an `Arc` snapshot of `(mem, imm, version)` and proceeds
//! without ever taking the big mutex, while flushes and compactions
//! install new snapshots atomically.

use crate::cache::LruCache;
use crate::compaction::{pick_compaction, resolve_key_run_with_snapshot, CompactionJob, RunEntry};
use crate::env::{Env, IoStats};
use crate::ikey::{self, InternalKey, ValueType};
use crate::iterator::{DbIterator, MergingIterator};
use crate::memtable::{MemTable, SnapshotMemIter};
use crate::merge::MergeOperatorRef;
pub use crate::options::DbOptions;
use crate::sync::{AtomicU64, Ordering};
use crate::table::{BlockCache, ConcatIter, ReadPurpose, Table, TableBuilder, TableProvider};
use crate::version::{
    current_file_name, current_tmp_file_name, log_file_name, table_file_name, FileMetaData,
    Version, VersionEdit, VersionSet,
};
use crate::wal::{LogReader, LogWriter};
use crate::write_batch::{self, WriteBatch};
use crossbeam::channel::{unbounded, Receiver, Sender};
use ldbpp_common::{Error, Result};
use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::ops::ControlFlow;
use std::sync::{Arc, Weak};
use std::thread;
use std::time::Duration;

/// A monotone sequence-number allocator shared by several `Db` instances,
/// so that writes routed across hash-partitioned engine shards still carry
/// one global recency clock (the ordering key of every top-K lookup).
///
/// Install the same clock in each shard's [`DbOptions::sequence_clock`]
/// before opening it. During recovery every shard calls
/// [`SharedSequence::observe`] with its recovered last sequence, so the
/// clock starts past everything already durable in any shard; afterwards
/// each group commit draws its contiguous sequence range from the clock
/// (`SharedSequence::allocate`) instead of `last_sequence + 1`. Per-shard
/// sequence spaces therefore become sparse (a shard only owns the ranges
/// its own commits drew), which the engine tolerates everywhere — WAL
/// records carry their own start sequence and the MANIFEST only tracks the
/// per-shard maximum.
///
/// Without a clock installed (the default, and the only configuration the
/// single-shard paper reproduction uses) sequence allocation is unchanged
/// and byte-for-byte deterministic.
pub struct SharedSequence {
    v: AtomicU64,
    /// Checker-only domain tracking allocate/observe/load happens-before
    /// edges and range disjointness on this clock (DESIGN.md §17).
    #[cfg(feature = "check")]
    vc: crate::vclock::SeqDomain,
}

impl SharedSequence {
    /// A fresh clock starting at sequence 0 (first allocation returns 1).
    pub fn new() -> Arc<SharedSequence> {
        Arc::new(SharedSequence {
            v: AtomicU64::new(0),
            #[cfg(feature = "check")]
            vc: crate::vclock::SeqDomain::new(0),
        })
    }

    /// Raise the clock to at least `seq` (used while recovering a shard:
    /// nothing allocated later may collide with what is already durable).
    pub fn observe(&self, seq: u64) {
        self.v.fetch_max(seq, Ordering::SeqCst);
        #[cfg(feature = "check")]
        self.vc.observe(seq);
    }

    /// The last sequence number handed out (or observed) so far.
    pub fn current(&self) -> u64 {
        let seq = self.v.load(Ordering::SeqCst);
        #[cfg(feature = "check")]
        self.vc.load();
        seq
    }

    /// Reserve `n` consecutive sequence numbers; returns the first.
    pub(crate) fn allocate(&self, n: u64) -> u64 {
        let start = self.v.fetch_add(n, Ordering::SeqCst) + 1;
        #[cfg(feature = "check")]
        self.vc.allocate(start, n);
        start
    }
}

impl Default for SharedSequence {
    fn default() -> SharedSequence {
        SharedSequence {
            v: AtomicU64::new(0),
            #[cfg(feature = "check")]
            vc: crate::vclock::SeqDomain::new(0),
        }
    }
}

impl std::fmt::Debug for SharedSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("SharedSequence").field(&self.v).finish()
    }
}

/// Identifies where a key's entries came from, in newest-to-oldest order:
/// the memtable, the frozen (flushing) memtable, then each L0 file (newest
/// file first), then each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySource {
    /// The active memtable.
    Mem,
    /// The frozen memtable awaiting its background flush (only ever
    /// observed with `background_work` enabled).
    Imm,
    /// An L0 file (by file number).
    L0File(u64),
    /// A level ≥ 1.
    Level(usize),
}

/// The read-path snapshot: everything a GET or scan needs, published as one
/// immutable `Arc` so readers never take the big mutex.
///
/// Invariant: at a freeze the *same* `Arc<RwLock<MemTable>>` moves from the
/// `mem` slot to the `imm` slot, so a reader still holding an older
/// `ReadState` keeps seeing those entries; and a flush installs the new
/// version (containing the L0 file) in the same swap that clears `imm`, so
/// every acknowledged write is visible in exactly one place at all times.
struct ReadState {
    mem: Arc<RwLock<MemTable>>,
    imm: Option<Arc<RwLock<MemTable>>>,
    version: Arc<Version>,
}

/// WAL bookkeeping carried from a memtable freeze to its flush install.
#[derive(Clone)]
struct PendingFlush {
    /// Log file to delete once the frozen memtable is durable in L0.
    old_log: Option<u64>,
    /// Log number to record in the manifest at install (recovery then
    /// replays only logs at or after it).
    new_log: Option<u64>,
    /// Largest sequence number contained in the frozen memtable.
    boundary_seq: u64,
}

/// State that only writers and the maintenance path touch.
struct DbInner {
    wal: Option<LogWriter>,
    versions: VersionSet,
    mem_generation: u64,
    pending_flush: Option<PendingFlush>,
}

enum WorkerMsg {
    Kick,
    Shutdown,
}

/// One queued logical write: the encoded operation bodies of a single
/// [`WriteBatch`] plus the slot its group's leader fills with the outcome.
///
/// The request is the unit of the group-commit protocol (DESIGN.md §14):
/// the queue-front request's thread is the *leader*; it commits a prefix
/// of the queue as one WAL record, then either hands each follower its
/// start sequence (or the group's shared error) through `state`, or —
/// for the next request still in the queue — hands over leadership.
struct WriteRequest {
    /// Operation count of this batch.
    count: u32,
    /// Encoded operation bodies ([`WriteBatch::op_bytes`]).
    body: Vec<u8>,
    /// Outcome slot; a leaf lock (acquired while holding nothing else by
    /// waiting followers, and nothing below it by the leader).
    state: Mutex<WriteOutcome>,
    /// Signalled when `state` gains a result or leadership.
    cond: Condvar,
}

impl WriteRequest {
    fn new(batch: &WriteBatch) -> Arc<WriteRequest> {
        Arc::new(WriteRequest {
            count: batch.count(),
            body: batch.op_bytes().to_vec(),
            state: Mutex::new(WriteOutcome::default()),
            cond: Condvar::new(),
        })
    }
}

/// What a follower wakes up to: a result, or a promotion to leader.
#[derive(Default)]
struct WriteOutcome {
    /// The batch's start sequence number, or the group's shared error.
    result: Option<Result<u64>>,
    /// Set when the previous leader hands this (queue-front) request the
    /// leader role instead of a result.
    leader: bool,
}

/// Shared core of a [`Db`]: everything the public handle and the background
/// worker both need.
///
/// Lock order (outermost first): `maintenance` → `inner` → {`writers`,
/// `read` → memtable latch} → leaves (`tables`, `pinned`, `bg_error`,
/// `pending_gc`, `live_versions`, `work_tx`, per-request
/// [`WriteRequest::state`]). Never acquire leftwards while holding a
/// lock to the right. The write path adds two disciplines on top
/// (DESIGN.md §14): `writers` is only ever held briefly (enqueue, group
/// collection, group pop — never across I/O or a condvar wait), and a
/// request's `state` is never held while acquiring any other lock.
struct DbCore {
    name: String,
    opts: DbOptions,
    env: Arc<dyn Env>,
    stats: Arc<IoStats>,
    block_cache: Option<BlockCache>,
    inner: Mutex<DbInner>,
    /// The published read snapshot; swapped atomically on freeze, flush
    /// install and compaction install (always while holding `inner`).
    read: RwLock<Arc<ReadState>>,
    /// Mirror of `versions.last_sequence` for lock-free readers. Stored
    /// with `Release` *after* the memtable insert, so a reader that loads
    /// it with `Acquire` before cloning the `ReadState` is guaranteed to
    /// see every acknowledged write at or below the loaded value.
    last_seq: AtomicU64,
    /// Vector-clock domain checking the `last_seq` publish/consume edges
    /// at runtime (`check` builds only; see [`crate::vclock`]).
    #[cfg(feature = "check")]
    vc: crate::vclock::Domain,
    /// Largest sequence number already flushed to L0 (memtable-side
    /// secondary indexes prune their maps against this watermark).
    flushed_seq: AtomicU64,
    /// Serializes flushes and compactions — held by the worker during a
    /// background round and by foreground `flush`/`compact` calls.
    maintenance: Mutex<()>,
    /// Signalled (with `inner` state already updated) after every flush or
    /// compaction install and on background errors; writers stalled in
    /// `make_room_bg` and `wait_for_background_idle` wait on it via `inner`.
    work_cond: Condvar,
    /// Table reader cache, keyed by file number.
    tables: Mutex<LruCache<u64, Arc<Table>>>,
    /// Pinned snapshot sequences → pin count. Compactions preserve every
    /// version at or below the largest pinned sequence.
    pinned: Arc<Mutex<BTreeMap<u64, usize>>>,
    /// First error hit by the background worker; surfaced to writers.
    bg_error: Mutex<Option<Error>>,
    /// Sticky fatal error: set when an append to the WAL or the MANIFEST
    /// fails. Both are framed logs whose writer tracks its block offset in
    /// memory — after a failed append the file tail and the writer's idea
    /// of it disagree, so any further record could be mis-framed and turn a
    /// crash-safe truncated tail into mid-file corruption that loses
    /// *acknowledged* writes on recovery. Every mutating entry point
    /// (`write`, `flush`, `compact`, `major_compact`) refuses with this
    /// error once set: the database is read-only until reopened, and reopen
    /// recovers everything acknowledged before the fault.
    fatal: Mutex<Option<Error>>,
    /// Weak refs to every installed version; used by [`DbCore::gc`] to
    /// decide which compaction inputs are still reachable by readers.
    live_versions: Mutex<Vec<Weak<Version>>>,
    /// Compaction input files awaiting deletion (deferred while a live
    /// reader snapshot still references them).
    pending_gc: Mutex<Vec<u64>>,
    /// Channel to the background worker (None in foreground mode and
    /// after shutdown).
    work_tx: Mutex<Option<Sender<WorkerMsg>>>,
    /// Group-commit writer queue (DESIGN.md §14). Invariants: a request
    /// is in the queue from enqueue until its group's leader pops the
    /// whole group after distributing leadership; the front request's
    /// thread is the only leader; only the leader pops.
    writers: Mutex<VecDeque<Arc<WriteRequest>>>,
}

/// A LevelDB-style LSM key-value store.
///
/// ```
/// use ldbpp_lsm::db::{Db, DbOptions};
///
/// let db = Db::open_in_memory(DbOptions::small()).unwrap();
/// db.put(b"k", b"v").unwrap();
/// assert_eq!(db.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
/// db.delete(b"k").unwrap();
/// assert_eq!(db.get(b"k").unwrap(), None);
/// ```
pub struct Db {
    core: Arc<DbCore>,
    worker: Option<thread::JoinHandle<()>>,
}

impl Db {
    /// Open (creating or recovering) a database at `name` within `env`.
    pub fn open(env: Arc<dyn Env>, name: &str, opts: DbOptions) -> Result<Db> {
        env.mkdir_all(name)?;
        let stats = IoStats::new();
        let block_cache: Option<BlockCache> = if opts.block_cache_bytes > 0 {
            Some(Arc::new(Mutex::new(LruCache::new(opts.block_cache_bytes))))
        } else {
            None
        };

        let preexisting = env.exists(&current_file_name(name));
        let mut versions = if preexisting {
            VersionSet::recover(Arc::clone(&env), name, opts.num_levels)?
        } else {
            VersionSet::create(Arc::clone(&env), name, opts.num_levels)?
        };

        let mut mem = MemTable::new();
        let mut mem_generation = 0;

        IoStats::add(&stats.manifest_replays, versions.recovered_edits);

        // Replay WAL files at or after the recorded log number. Flushes
        // forced by replay accumulate into `recovery_edit`, which is logged
        // once — together with the fresh WAL's number — below, so that a
        // crash at any point during recovery leaves the MANIFEST unchanged
        // and the replay idempotent (see `flush_memtable_impl`).
        let mut recovery_edit = VersionEdit::default();
        if preexisting {
            let mut log_numbers: Vec<u64> = env
                .list(name)?
                .iter()
                .filter_map(|f| f.strip_suffix(".log").and_then(|n| n.parse::<u64>().ok()))
                .filter(|n| *n >= versions.log_number)
                .collect();
            log_numbers.sort_unstable();
            for number in log_numbers {
                let data = env.read_all(&log_file_name(name, number))?;
                // Paranoid mode aborts recovery at the first corrupt record;
                // permissive mode resynchronizes at the next block boundary
                // and keeps replaying whatever is still readable.
                let mut reader = if opts.paranoid_checks {
                    LogReader::new(&data)
                } else {
                    LogReader::new_salvaging(&data)
                };
                while let Some(record) = reader.read_record()? {
                    let decoded = match WriteBatch::decode(&record) {
                        Ok(d) => d,
                        // A record can pass its CRC yet fail to decode (e.g.
                        // a partially-synced sector rewritten with stale
                        // data). Same policy as a CRC mismatch.
                        Err(e) if !opts.paranoid_checks => {
                            IoStats::add(&stats.wal_records_salvaged, 1);
                            IoStats::add(&stats.wal_bytes_dropped, record.len() as u64);
                            let _ = e;
                            continue;
                        }
                        Err(e) => return Err(e),
                    };
                    IoStats::add(&stats.wal_replays, 1);
                    let (seq, ops) = decoded;
                    for (i, op) in ops.iter().enumerate() {
                        mem.add(seq + i as u64, op.vtype, &op.key, &op.value);
                    }
                    let end_seq = seq + ops.len().max(1) as u64 - 1;
                    if end_seq > versions.last_sequence {
                        versions.last_sequence = end_seq;
                    }
                    if mem.approximate_bytes() >= opts.write_buffer_size {
                        flush_memtable_impl(
                            &opts,
                            &env,
                            &stats,
                            name,
                            &mut versions,
                            &mut mem,
                            &mut recovery_edit,
                        )?;
                        mem_generation += 1;
                    }
                }
                IoStats::add(&stats.wal_records_salvaged, reader.records_salvaged());
                IoStats::add(&stats.wal_bytes_dropped, reader.bytes_dropped());
            }
            if !mem.is_empty() {
                flush_memtable_impl(
                    &opts,
                    &env,
                    &stats,
                    name,
                    &mut versions,
                    &mut mem,
                    &mut recovery_edit,
                )?;
                mem_generation += 1;
            }
        }

        // Fresh WAL, installed atomically with the recovery flushes: one
        // MANIFEST record moves the database from "replay the old WALs"
        // to "recovered files + new WAL" with no intermediate state.
        let wal = if opts.wal_enabled {
            let log_number = versions.new_file_number();
            let wal = LogWriter::new(env.new_writable(&log_file_name(name, log_number))?);
            recovery_edit.log_number = Some(log_number);
            Some(wal)
        } else {
            None
        };
        if recovery_edit.log_number.is_some() || !recovery_edit.new_files.is_empty() {
            versions.log_and_apply(recovery_edit)?;
        }

        let version = versions.current();
        let last_sequence = versions.last_sequence;
        // A shared clock must start past everything this shard already
        // holds, or a later allocation could collide with recovered data.
        if let Some(clock) = &opts.sequence_clock {
            clock.observe(last_sequence);
        }
        let table_cache_entries = opts.table_cache_entries.max(16);
        let background = opts.background_work;
        #[cfg(feature = "check")]
        let vc = crate::vclock::Domain::new(last_sequence);
        #[cfg(feature = "check")]
        mem.set_vc_domain(vc.id());
        let core = Arc::new(DbCore {
            name: name.to_string(),
            opts,
            env,
            stats,
            block_cache,
            inner: Mutex::new(DbInner {
                wal,
                versions,
                mem_generation,
                pending_flush: None,
            }),
            read: RwLock::new(Arc::new(ReadState {
                mem: Arc::new(RwLock::new(mem)),
                imm: None,
                version: Arc::clone(&version),
            })),
            last_seq: AtomicU64::new(last_sequence),
            #[cfg(feature = "check")]
            vc,
            // Recovery leaves the memtable empty, so everything recovered
            // is already in L0 or deeper.
            flushed_seq: AtomicU64::new(last_sequence),
            maintenance: Mutex::new(()),
            work_cond: Condvar::new(),
            tables: Mutex::new(LruCache::new(table_cache_entries)),
            pinned: Arc::new(Mutex::new(BTreeMap::new())),
            bg_error: Mutex::new(None),
            fatal: Mutex::new(None),
            live_versions: Mutex::new(vec![Arc::downgrade(&version)]),
            pending_gc: Mutex::new(Vec::new()),
            work_tx: Mutex::new(None),
            writers: Mutex::new(VecDeque::new()),
        });
        core.remove_obsolete_files();

        let worker = if background {
            let (tx, rx) = unbounded();
            *core.work_tx.lock() = Some(tx);
            let worker_core = Arc::clone(&core);
            let handle = thread::Builder::new()
                .name("ldbpp-bg".to_string())
                .spawn(move || worker_loop(&worker_core, rx))
                .map_err(Error::from)?;
            Some(handle)
        } else {
            None
        };
        Ok(Db { core, worker })
    }

    /// Convenience: open in a fresh in-memory environment.
    pub fn open_in_memory(opts: DbOptions) -> Result<Db> {
        Db::open(crate::env::MemEnv::new(), "db", opts)
    }

    /// The configuration this database was opened with.
    pub fn options(&self) -> &DbOptions {
        &self.core.opts
    }

    /// I/O counters for this database instance.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.core.stats)
    }

    /// The environment this database lives in.
    pub fn env(&self) -> Arc<dyn Env> {
        Arc::clone(&self.core.env)
    }

    /// The database's directory name within its environment.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The most recently assigned sequence number.
    pub fn last_sequence(&self) -> u64 {
        self.core.last_seq.load(Ordering::Acquire)
    }

    /// Cumulative count of user keys whose entire history was discarded by
    /// base-level compaction (newest surviving record was a tombstone).
    /// Persisted in the MANIFEST, so it survives reopen. While zero, every
    /// key ever written still has at least one record (possibly a
    /// tombstone) somewhere in the tree — the property the integrity
    /// checker's dangling-index-entry rule relies on.
    pub fn erased_keys(&self) -> u64 {
        self.core.inner.lock().versions.erased_keys
    }

    /// Bumped every time a memtable's contents reach L0 (callers
    /// maintaining memtable-side indexes use this to know when entries
    /// have left memory).
    pub fn mem_generation(&self) -> u64 {
        self.core.inner.lock().mem_generation
    }

    /// Largest sequence number whose entries have been flushed out of the
    /// in-memory tables (active + frozen) into L0. Memtable-side secondary
    /// indexes prune their maps against this watermark.
    pub fn flushed_through(&self) -> u64 {
        self.core.flushed_seq.load(Ordering::Acquire)
    }

    /// Total bytes of live SSTables.
    pub fn table_bytes(&self) -> u64 {
        self.core.read_state().version.total_bytes()
    }

    /// The current version (file layout snapshot).
    pub fn current_version(&self) -> Arc<Version> {
        Arc::clone(&self.core.read_state().version)
    }

    /// Per-level file counts, for diagnostics.
    pub fn level_file_counts(&self) -> Vec<usize> {
        let v = self.current_version();
        v.files.iter().map(|f| f.len()).collect()
    }

    // -- write path ---------------------------------------------------------

    /// Insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(&mut batch)
    }

    /// Delete `key` (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<u64> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(&mut batch)
    }

    /// Append a merge operand for `key` (requires a configured
    /// [`crate::merge::MergeOperator`]).
    pub fn merge(&self, key: &[u8], operand: &[u8]) -> Result<u64> {
        let mut batch = WriteBatch::new();
        batch.merge(key, operand);
        self.write(&mut batch)
    }

    /// Apply a batch atomically. Returns the sequence number of its first
    /// operation.
    ///
    /// Concurrent callers go through the group-commit writer queue
    /// (DESIGN.md §14): each enqueues its batch, the queue-front *leader*
    /// commits a prefix of the queue as one WAL record (one append, at
    /// most one fsync, one memtable publish), and followers are woken
    /// with their rebased start sequences. A single uncontended writer is
    /// always its own leader of a group of one, producing byte-for-byte
    /// the WAL record the pre-queue engine produced.
    ///
    /// In foreground mode a leader that finds the memtable full pays for
    /// the flush (and any due compactions) inline; in background mode it
    /// freezes the memtable, hands it to the worker and returns — stalling
    /// only under L0 backpressure (see
    /// [`DbOptions::l0_slowdown_trigger`] / [`DbOptions::l0_stall_trigger`]).
    pub fn write(&self, batch: &mut WriteBatch) -> Result<u64> {
        if batch.is_empty() {
            return Err(Error::invalid("empty write batch"));
        }
        let core = &self.core;
        core.check_fatal()?;
        let req = WriteRequest::new(batch);
        let is_leader = {
            let mut writers = core.writers.lock();
            let was_empty = writers.is_empty();
            writers.push_back(Arc::clone(&req));
            was_empty
        };
        if !is_leader {
            // Follower: wait on our own slot for a result or a promotion.
            // The guard is dropped before leading, so `state` stays a
            // leaf in the lock graph.
            let mut state = req.state.lock();
            loop {
                if let Some(result) = state.result.take() {
                    return result;
                }
                if state.leader {
                    break;
                }
                req.cond.wait(&mut state);
            }
        }
        core.lead_group(&req)
    }

    /// Flush all in-memory entries to L0 (then run any due compactions,
    /// unless `auto_compact` is off).
    pub fn flush(&self) -> Result<()> {
        self.core.check_fatal()?;
        let _maintenance = self.core.maintenance.lock();
        self.core.flush_all_locked()?;
        if self.core.opts.auto_compact {
            self.core.run_compactions()?;
        }
        Ok(())
    }

    /// Run compactions until no level is over threshold (normally invoked
    /// automatically by writes, or by the background worker).
    pub fn compact(&self) -> Result<()> {
        self.core.check_fatal()?;
        let _maintenance = self.core.maintenance.lock();
        self.core.run_compactions()
    }

    /// The sticky fatal error, if a WAL or MANIFEST append has failed. The
    /// database is read-only while this is `Some`; reopening recovers every
    /// write acknowledged before the fault.
    pub fn fatal_error(&self) -> Option<Error> {
        self.core.fatal.lock().clone()
    }

    /// Major compaction: flush the memtable and push every level's data
    /// down until it all rests in the deepest populated level, rewriting
    /// every SSTable along the way.
    ///
    /// Useful for (a) reclaiming all shadowed versions and tombstones at
    /// once, and (b) re-materializing tables under the *current* options —
    /// e.g. after declaring a new Embedded-Index attribute on an existing
    /// database, a major compaction rebuilds every file with the new
    /// per-block filters and zone maps.
    pub fn major_compact(&self) -> Result<()> {
        self.core.check_fatal()?;
        let _maintenance = self.core.maintenance.lock();
        self.core.flush_all_locked()?;
        for level in 0..self.core.opts.num_levels - 1 {
            let (job, version) = {
                let inner = self.core.inner.lock();
                let version = inner.versions.current();
                let inputs_lo = version.files[level].clone();
                if inputs_lo.is_empty() {
                    continue;
                }
                let Some(lo) = inputs_lo
                    .iter()
                    .map(|f| ikey::user_key(&f.smallest).to_vec())
                    .min()
                else {
                    continue;
                };
                let Some(hi) = inputs_lo
                    .iter()
                    .map(|f| ikey::user_key(&f.largest).to_vec())
                    .max()
                else {
                    continue;
                };
                let inputs_hi = version.overlapping_files(level + 1, &lo, &hi);
                (
                    CompactionJob {
                        level,
                        inputs_lo,
                        inputs_hi,
                    },
                    version,
                )
            };
            self.core.do_compaction(job, version)?;
        }
        Ok(())
    }

    /// Block until the background worker has no pending flush and no due
    /// compaction (no-op in foreground mode). Returns any error the worker
    /// hit. Useful in tests and benchmarks that want a settled tree.
    pub fn wait_for_background_idle(&self) -> Result<()> {
        if !self.core.opts.background_work {
            return Ok(());
        }
        let core = &self.core;
        let mut inner = core.inner.lock();
        loop {
            core.check_bg_error()?;
            let rs = core.read_state();
            let flush_pending = rs.imm.is_some();
            let compaction_due = core.opts.auto_compact
                && pick_compaction(&core.opts, &rs.version, &inner.versions.compact_pointer)
                    .is_some();
            if !flush_pending && !compaction_due {
                return Ok(());
            }
            core.kick_worker();
            core.work_cond.wait(&mut inner);
        }
    }
    // -- read path ----------------------------------------------------------

    /// Open (via the table cache) the reader for a live file.
    pub fn open_table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
        self.core.open_table(meta)
    }

    /// Point lookup on the primary key.
    ///
    /// Walks sources newest-to-oldest and stops at the first `Value` or
    /// `Deletion`; merge operands encountered on the way are folded onto
    /// whatever base is found (or onto nothing).
    pub fn get(&self, user_key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_resolved(user_key, None)
    }

    /// The sequence number a read started now would observe — usable later
    /// with [`Db::get_at`] for repeatable (snapshot) reads.
    pub fn snapshot_seq(&self) -> u64 {
        self.last_sequence()
    }

    /// Pin the current state: while the returned handle is alive,
    /// compactions preserve every version at or below its sequence, so
    /// [`Db::get_at`] against it is exact no matter how much churn and
    /// compaction happens afterwards. Dropping the handle releases the
    /// guarantee (space is reclaimed by later compactions).
    pub fn pin_snapshot(&self) -> SnapshotHandle {
        let seq = self.last_sequence();
        *self.core.pinned.lock().entry(seq).or_insert(0) += 1;
        SnapshotHandle {
            seq,
            registry: Arc::clone(&self.core.pinned),
        }
    }

    /// Point lookup as of an earlier snapshot sequence: returns the value
    /// `user_key` had when [`Db::snapshot_seq`] returned `snapshot`.
    ///
    /// Note: snapshots are best-effort across compactions — the engine
    /// keeps no snapshot list, so versions older than `snapshot` may have
    /// been compacted away; in that case the newest surviving version at or
    /// below `snapshot` is returned. Within the memtables and unrelated
    /// levels the read is exact, which covers the read-your-writes and
    /// repeatable-read patterns tests rely on. [`Db::pin_snapshot`] makes
    /// the guarantee exact.
    pub fn get_at(&self, user_key: &[u8], snapshot: u64) -> Result<Option<Vec<u8>>> {
        self.get_resolved(user_key, Some(snapshot))
    }

    fn get_resolved(&self, user_key: &[u8], snapshot: Option<u64>) -> Result<Option<Vec<u8>>> {
        enum Outcome {
            Found(Vec<u8>),
            Deleted,
        }
        let mut operands: Vec<Vec<u8>> = Vec::new(); // newest first
        let mut outcome: Option<Outcome> = None;
        self.fold_key_sources_at(user_key, snapshot, |_, entries| {
            for (vtype, value, _seq) in entries {
                match vtype {
                    ValueType::Value => {
                        outcome = Some(Outcome::Found(value.clone()));
                        return ControlFlow::Break(());
                    }
                    ValueType::Deletion => {
                        outcome = Some(Outcome::Deleted);
                        return ControlFlow::Break(());
                    }
                    ValueType::Merge => operands.push(value.clone()),
                }
            }
            ControlFlow::Continue(())
        })?;
        if operands.is_empty() {
            return Ok(match outcome {
                Some(Outcome::Found(v)) => Some(v),
                _ => None,
            });
        }
        let Some(op) = &self.core.opts.merge_operator else {
            return Err(Error::not_supported(
                "merge entries present but no merge operator configured",
            ));
        };
        operands.reverse(); // oldest first
        let refs: Vec<&[u8]> = operands.iter().map(|o| o.as_slice()).collect();
        let base = match &outcome {
            Some(Outcome::Found(v)) => Some(v.as_slice()),
            _ => None,
        };
        Ok(Some(op.full_merge(user_key, base, &refs)))
    }

    /// A human-readable summary of the tree shape and I/O counters —
    /// LevelDB's `GetProperty("leveldb.stats")` equivalent.
    pub fn debug_summary(&self) -> String {
        use std::fmt::Write as _;
        let rs = self.core.read_state();
        let generation = self.core.inner.lock().mem_generation;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "seq={} mem={}B imm={} gen={}",
            self.last_sequence(),
            rs.mem.read().approximate_bytes(),
            rs.imm.as_ref().map_or(0, |m| m.read().approximate_bytes()),
            generation
        );
        for (level, files) in rs.version.files.iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            let bytes: u64 = files.iter().map(|f| f.file_size).sum();
            let entries: u64 = files.iter().map(|f| f.num_entries).sum();
            let _ = writeln!(
                out,
                "L{level}: {} files, {} B, {} entries",
                files.len(),
                bytes,
                entries
            );
        }
        let s = self.core.stats.snapshot();
        let _ = writeln!(
            out,
            "io: reads={} cache_hits={} flushes={} compactions={} compaction_io={}B wal={}B",
            s.block_reads,
            s.cache_hits,
            s.flushes,
            s.compactions,
            s.compaction_bytes_read + s.compaction_bytes_written,
            s.wal_bytes_written
        );
        out
    }

    /// Visit each source that may hold `user_key`, newest first, with the
    /// entries found there (each newest-first). The closure may break to
    /// stop early — this is how GET avoids touching deeper levels and how
    /// the Lazy index stops once top-K is satisfied.
    pub fn fold_key_sources<F>(&self, user_key: &[u8], visit: F) -> Result<()>
    where
        F: FnMut(KeySource, &[(ValueType, Vec<u8>, u64)]) -> ControlFlow<()>,
    {
        self.fold_key_sources_at(user_key, None, visit)
    }

    /// [`Db::fold_key_sources`] against an explicit snapshot sequence
    /// (`None` = latest). Entries newer than the snapshot are invisible.
    pub fn fold_key_sources_at<F>(
        &self,
        user_key: &[u8],
        snapshot: Option<u64>,
        mut visit: F,
    ) -> Result<()>
    where
        F: FnMut(KeySource, &[(ValueType, Vec<u8>, u64)]) -> ControlFlow<()>,
    {
        // Load the sequence *before* cloning the read state: every write
        // acknowledged at or below it is then guaranteed visible in the
        // snapshot (memtables or version).
        let latest = self.last_sequence();
        self.core.vc_consume(latest);
        let rs = self.core.read_state();
        let snapshot = snapshot.unwrap_or(latest);

        let mem_entries: Vec<(ValueType, Vec<u8>, u64)> = rs
            .mem
            .read()
            .entries_for(user_key, snapshot)
            .map(|(t, v, s)| (t, v.to_vec(), s))
            .collect();
        if !mem_entries.is_empty() {
            if let ControlFlow::Break(()) = visit(KeySource::Mem, &mem_entries) {
                return Ok(());
            }
        }
        if let Some(imm) = &rs.imm {
            let imm_entries: Vec<(ValueType, Vec<u8>, u64)> = imm
                .read()
                .entries_for(user_key, snapshot)
                .map(|(t, v, s)| (t, v.to_vec(), s))
                .collect();
            if !imm_entries.is_empty() {
                if let ControlFlow::Break(()) = visit(KeySource::Imm, &imm_entries) {
                    return Ok(());
                }
            }
        }

        let version = &rs.version;
        let paranoid = self.core.opts.paranoid_checks;
        let _ = probe_files_for_key(version, user_key, usize::MAX, |source, f| {
            let read = (|| {
                let table = self.core.open_table(f)?;
                table.entries_for(user_key, snapshot, ReadPurpose::Query)
            })();
            let entries = match read {
                Ok(entries) => entries,
                Err(e) if e.is_corruption() => {
                    // Evict the cached reader either way: the file may be
                    // replaced on disk (e.g. by `crate::repair::repair_db`)
                    // and the stale handle's cached footer and index would
                    // keep poisoning reads after the fix.
                    self.core.evict_table(f.number);
                    if paranoid {
                        return Err(e);
                    }
                    // Permissive degradation: treat the corrupt data as
                    // absent-with-diagnostic and keep probing older sources.
                    IoStats::add(&self.core.stats.corrupt_blocks_skipped, 1);
                    return Ok(ControlFlow::Continue(()));
                }
                Err(e) => return Err(e),
            };
            if entries.is_empty() {
                return Ok(ControlFlow::Continue(()));
            }
            Ok(visit(source, &entries))
        })?;
        Ok(())
    }
    /// The paper's `GetLite(k, currentLevel)`: does a (possibly newer)
    /// version of `user_key` exist *above* `below_level`, judged purely
    /// from in-memory metadata (memtables + index blocks + primary bloom
    /// filters)? No data-block I/O. Bloom false positives make this
    /// conservatively over-report presence.
    pub fn get_lite(&self, user_key: &[u8], below_level: usize) -> bool {
        let latest = self.last_sequence();
        self.core.vc_consume(latest);
        let rs = self.core.read_state();
        if rs.mem.read().entries_for(user_key, latest).next().is_some() {
            return true;
        }
        if let Some(imm) = &rs.imm {
            if imm.read().entries_for(user_key, latest).next().is_some() {
                return true;
            }
        }
        let version = &rs.version;
        let outcome = probe_files_for_key(version, user_key, below_level, |_, f| {
            let may = match self.core.open_table(f) {
                Ok(table) => table.primary_may_contain(user_key),
                Err(_) => true, // unreadable: fail safe
            };
            Ok(if may {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            })
        });
        matches!(outcome, Ok(ControlFlow::Break(())))
    }

    /// `GetLite` variant for candidates found in an L0 file: is there a
    /// (possibly newer) version in the memtables or in an L0 file *newer
    /// than* `file_number`? Metadata-only, like [`Db::get_lite`].
    pub fn get_lite_l0(&self, user_key: &[u8], file_number: u64) -> bool {
        let latest = self.last_sequence();
        self.core.vc_consume(latest);
        let rs = self.core.read_state();
        if rs.mem.read().entries_for(user_key, latest).next().is_some() {
            return true;
        }
        if let Some(imm) = &rs.imm {
            if imm.read().entries_for(user_key, latest).next().is_some() {
                return true;
            }
        }
        let version = &rs.version;
        let outcome = probe_files_for_key(version, user_key, 1, |_, f| {
            if f.number <= file_number {
                return Ok(ControlFlow::Continue(()));
            }
            let may = match self.core.open_table(f) {
                Ok(table) => table.primary_may_contain(user_key),
                Err(_) => true, // unreadable: fail safe
            };
            Ok(if may {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            })
        });
        matches!(outcome, Ok(ControlFlow::Break(())))
    }

    /// Type and sequence of the newest entry for `user_key` anywhere in
    /// the store (reads data blocks like a GET, but stops at the first
    /// entry found). Used to confirm `GetLite` positives exactly.
    pub fn newest_meta(&self, user_key: &[u8]) -> Result<Option<(ValueType, u64)>> {
        let mut newest = None;
        self.fold_key_sources(user_key, |_, entries| {
            if let Some((vtype, _, seq)) = entries.first() {
                newest = Some((*vtype, *seq));
            }
            ControlFlow::Break(())
        })?;
        Ok(newest)
    }

    /// Newest in-memory entry for `user_key` (type and sequence), if any —
    /// covers both the active and the frozen memtable. Used to validate
    /// candidates found by memtable-side secondary indexes.
    pub fn mem_newest(&self, user_key: &[u8]) -> Option<(ValueType, u64)> {
        let latest = self.last_sequence();
        self.core.vc_consume(latest);
        let rs = self.core.read_state();
        if let Some(found) = rs
            .mem
            .read()
            .entries_for(user_key, latest)
            .next()
            .map(|(t, _, s)| (t, s))
        {
            return Some(found);
        }
        rs.imm.as_ref().and_then(|imm| {
            imm.read()
                .entries_for(user_key, latest)
                .next()
                .map(|(t, _, s)| (t, s))
        })
    }

    /// The newest record for `user_key` across the whole tree — **including
    /// tombstones**, which [`Db::get`] resolves away. `None` means no source
    /// holds any trace of the key (a tombstone compacted to nothing at the
    /// base level also reports `None`). Used by the integrity checker to
    /// distinguish "deleted" from "never written".
    pub fn newest_record(&self, user_key: &[u8]) -> Result<Option<(ValueType, u64)>> {
        let mut found = None;
        self.fold_key_sources_at(user_key, None, |_, entries| {
            if let Some((t, _, s)) = entries.first() {
                found = Some((*t, *s));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        })?;
        Ok(found)
    }

    /// One iterator per source (memtables, each L0 file newest-first, each
    /// deeper level), in newest-to-oldest order — the paper's stand-alone
    /// indexes scan "level by level".
    ///
    /// Every source is **lazy**: the memtables are walked in place through
    /// the snapshot's latch (no `copy_out` clone) and SSTables are opened
    /// through the table cache only when a seek lands in them — building
    /// the stack performs zero `open_table` calls.
    pub fn source_iterators(&self) -> Result<Vec<(KeySource, Box<dyn DbIterator>)>> {
        self.source_iterators_range(None)
    }

    /// [`Db::source_iterators`] restricted to the inclusive user-key range
    /// `[lo, hi]`: files whose key range misses it contribute no iterator,
    /// so a range scan touches only overlapping files (and, through the
    /// lazy [`ConcatIter`], opens them only when the scan reaches them).
    pub fn source_iterators_range(
        &self,
        range: Option<(&[u8], &[u8])>,
    ) -> Result<Vec<(KeySource, Box<dyn DbIterator>)>> {
        // Load the sequence *before* cloning the read state (see
        // `fold_key_sources_at`): the memtable iterators pin this snapshot
        // so concurrent background-mode writers stay invisible.
        let latest = self.last_sequence();
        self.core.vc_consume(latest);
        let rs = self.core.read_state();
        let provider: Arc<dyn TableProvider> = Arc::clone(&self.core) as Arc<dyn TableProvider>;
        let mut out: Vec<(KeySource, Box<dyn DbIterator>)> = Vec::new();
        out.push((
            KeySource::Mem,
            Box::new(SnapshotMemIter::new(Arc::clone(&rs.mem), latest)),
        ));
        if let Some(imm) = &rs.imm {
            out.push((
                KeySource::Imm,
                Box::new(SnapshotMemIter::new(Arc::clone(imm), latest)),
            ));
        }
        let version = &rs.version;
        let overlaps =
            |f: &FileMetaData| range.is_none_or(|(lo, hi)| f.overlaps_user_range(lo, hi));
        // L0 files overlap each other, so each is its own source (newest
        // first); a singleton ConcatIter defers the open until first seek.
        for f in &version.files[0] {
            if !overlaps(f) {
                continue;
            }
            out.push((
                KeySource::L0File(f.number),
                Box::new(ConcatIter::new(
                    Arc::clone(&provider),
                    vec![Arc::clone(f)],
                    ReadPurpose::Query,
                )),
            ));
        }
        for level in 1..version.num_levels() {
            // Levels ≥ 1 are sorted and disjoint: a concatenating iterator
            // binary-searches the file list on seek, touching one file per
            // level (the paper's per-level cost model).
            let files: Vec<Arc<FileMetaData>> = version.files[level]
                .iter()
                .filter(|f| overlaps(f))
                .cloned()
                .collect();
            if files.is_empty() {
                continue;
            }
            out.push((
                KeySource::Level(level),
                Box::new(ConcatIter::new(
                    Arc::clone(&provider),
                    files,
                    ReadPurpose::Query,
                )),
            ));
        }
        Ok(out)
    }

    /// A resolved iterator over the whole database: yields each live user
    /// key's newest value (tombstones skipped, merge operands folded).
    /// Unpositioned — callers must seek first.
    pub fn resolved_iter(&self) -> Result<ResolvedIter> {
        let sources = self.source_iterators()?;
        Ok(self.resolve_sources(sources, None))
    }

    /// A resolved iterator over the inclusive user-key range `[lo, hi]`,
    /// already positioned at `lo`: only sources overlapping the range are
    /// merged and the stream ends after the last key ≤ `hi`, so the scan
    /// touches only overlapping blocks.
    pub fn range_iter(&self, lo: &[u8], hi: &[u8]) -> Result<ResolvedIter> {
        let sources = self.source_iterators_range(Some((lo, hi)))?;
        let mut it = self.resolve_sources(sources, Some(hi.to_vec()));
        it.seek(lo);
        Ok(it)
    }

    /// [`Db::range_iter`] pinned at `snapshot`: entries with a sequence
    /// greater than `snapshot` are invisible, so the scan observes the
    /// database as of that point in sequence time even while concurrent
    /// writers keep appending. Tombstones above the snapshot are ignored
    /// too — a key deleted after the pin still yields its pinned value.
    ///
    /// The cursor holds its sources (memtables, version) from creation,
    /// so compactions starting mid-scan cannot perturb it; as with
    /// [`Db::get_at`], versions compacted away *before* creation are
    /// best-effort, and [`Db::pin_snapshot`] makes them exact.
    pub fn range_iter_at(&self, lo: &[u8], hi: &[u8], snapshot: u64) -> Result<ResolvedIter> {
        let sources = self.source_iterators_range(Some((lo, hi)))?;
        let mut it = self.resolve_sources(sources, Some(hi.to_vec()));
        it.snapshot = Some(snapshot);
        it.seek(lo);
        Ok(it)
    }

    fn resolve_sources(
        &self,
        sources: Vec<(KeySource, Box<dyn DbIterator>)>,
        end: Option<Vec<u8>>,
    ) -> ResolvedIter {
        let children: Vec<Box<dyn DbIterator>> = sources.into_iter().map(|(_, it)| it).collect();
        ResolvedIter {
            it: MergingIterator::new(children),
            merge_op: self.core.opts.merge_operator.clone(),
            positioned: false,
            end,
            snapshot: None,
        }
    }
}

/// Visit every file that may contain `user_key` in levels `0..below_level`,
/// newest first (each qualifying L0 file in the version's newest-first
/// order, then the one candidate per deeper level). The single probe loop
/// behind [`Db::fold_key_sources_at`], [`Db::get_lite`] and
/// [`Db::get_lite_l0`].
fn probe_files_for_key<F>(
    version: &Version,
    user_key: &[u8],
    below_level: usize,
    mut visit: F,
) -> Result<ControlFlow<()>>
where
    F: FnMut(KeySource, &FileMetaData) -> Result<ControlFlow<()>>,
{
    for level in 0..below_level.min(version.num_levels()) {
        for f in version.files_for_key(level, user_key) {
            let source = if level == 0 {
                KeySource::L0File(f.number)
            } else {
                KeySource::Level(level)
            };
            if let ControlFlow::Break(()) = visit(source, &f)? {
                return Ok(ControlFlow::Break(()));
            }
        }
    }
    Ok(ControlFlow::Continue(()))
}

impl Drop for Db {
    fn drop(&mut self) {
        if let Some(handle) = self.worker.take() {
            // Unflushed memtable contents survive in the WAL (the log file
            // backing a frozen memtable is only deleted after its flush
            // installs), so recovery replays everything still in memory.
            if let Some(tx) = self.core.work_tx.lock().take() {
                let _ = tx.send(WorkerMsg::Shutdown);
            }
            let _ = handle.join();
            self.core.gc();
        }
    }
}

impl DbCore {
    /// Clone the current read snapshot. Holds the `read` lock only for the
    /// duration of the `Arc` clone.
    fn read_state(&self) -> Arc<ReadState> {
        Arc::clone(&self.read.read())
    }

    /// Check-mode hook for the reader side of the `last_seq` edge: the
    /// caller just Acquire-loaded `_seq` and is about to clone the read
    /// state. No-op (and fully compiled out) without the `check` feature.
    #[inline]
    fn vc_consume(&self, _seq: u64) {
        #[cfg(feature = "check")]
        self.vc.consume(_seq);
    }

    /// A fresh active memtable (stamped with this DB's vector-clock
    /// domain in check builds).
    fn fresh_memtable(&self) -> MemTable {
        #[cfg_attr(not(feature = "check"), allow(unused_mut))]
        let mut mem = MemTable::new();
        #[cfg(feature = "check")]
        mem.set_vc_domain(self.vc.id());
        mem
    }

    /// Publish a new read snapshot derived from the current one. Callers
    /// must hold `inner` — that is what makes the freeze/install state
    /// machine race-free against stalled writers re-checking it.
    fn install_read_state<F: FnOnce(&ReadState) -> ReadState>(&self, f: F) {
        let mut slot = self.read.write();
        let next = f(&slot);
        *slot = Arc::new(next);
    }

    fn kick_worker(&self) {
        if let Some(tx) = self.work_tx.lock().as_ref() {
            let _ = tx.send(WorkerMsg::Kick);
        }
    }

    fn check_bg_error(&self) -> Result<()> {
        match &*self.bg_error.lock() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Refuse mutating work once a log append has failed (see the `fatal`
    /// field for why the database must go read-only).
    fn check_fatal(&self) -> Result<()> {
        match &*self.fatal.lock() {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Record a failed WAL/MANIFEST append as the sticky fatal error (first
    /// one wins) and hand the error back for propagation.
    fn set_fatal(&self, e: Error) -> Error {
        let mut slot = self.fatal.lock();
        if slot.is_none() {
            *slot = Some(e.clone());
        }
        e
    }

    // -- write path ---------------------------------------------------------

    /// Lead one group commit on behalf of `own` (the queue-front request)
    /// and return `own`'s result.
    ///
    /// Every exit path pops the committed group (at minimum `own` itself)
    /// from the writer queue and promotes the next queued request to
    /// leader — otherwise the queue would deadlock behind a request
    /// nobody is driving.
    fn lead_group(&self, own: &Arc<WriteRequest>) -> Result<u64> {
        let (group, outcome) = self.commit_group(own);
        self.finish_group(own, &group, outcome)
    }

    /// Make room, collect the group and commit it. Returns the committed
    /// (or failed) group — always containing at least `own` — plus the
    /// group's shared outcome: the group start sequence, or the error
    /// every member gets.
    fn commit_group(&self, own: &Arc<WriteRequest>) -> (Vec<Arc<WriteRequest>>, Result<u64>) {
        // A promoted leader may be running after a previous group
        // poisoned the database; re-check before touching anything.
        if let Err(e) = self.check_fatal() {
            return (vec![Arc::clone(own)], Err(e));
        }
        if self.opts.background_work {
            self.maybe_slowdown();
            let mut inner = self.inner.lock();
            if let Err(e) = self.make_room_bg(&mut inner) {
                // Make-room failure fails only the leader (LevelDB's
                // contract): queued followers may well succeed once the
                // backlog clears, so they get a fresh leader, not our
                // error.
                return (vec![Arc::clone(own)], Err(e));
            }
            self.append_group(&mut inner, own)
        } else {
            let _maintenance = self.maintenance.lock();
            if let Err(e) = self.make_room_sync() {
                return (vec![Arc::clone(own)], Err(e));
            }
            let mut inner = self.inner.lock();
            self.append_group(&mut inner, own)
        }
    }

    /// Collect the leader's group: the queue-front prefix whose payload
    /// bytes fit the group cap ([`DbOptions::max_group_commit_bytes`]).
    /// The leader's own batch always fits; when it is small the cap is
    /// tightened (LevelDB's refinement) so a tiny write's latency is
    /// never held hostage by a large group forming behind it.
    fn collect_group(&self, own: &Arc<WriteRequest>) -> Vec<Arc<WriteRequest>> {
        let writers = self.writers.lock();
        debug_assert!(writers.front().is_some_and(|f| Arc::ptr_eq(f, own)));
        let small = self.opts.max_group_commit_bytes / 8;
        let cap = if own.body.len() <= small {
            own.body.len() + small
        } else {
            self.opts.max_group_commit_bytes
        };
        let mut total = 0usize;
        let mut group = Vec::new();
        for req in writers.iter() {
            if !group.is_empty() && total + req.body.len() > cap {
                break;
            }
            total += req.body.len();
            group.push(Arc::clone(req));
        }
        group
    }

    /// One WAL append (+ at most one fsync) + one memtable publish for a
    /// whole group, under one sequence allocation. Caller holds `inner`
    /// and has already made room.
    fn append_group(
        &self,
        inner: &mut DbInner,
        own: &Arc<WriteRequest>,
    ) -> (Vec<Arc<WriteRequest>>, Result<u64>) {
        let group = self.collect_group(own);
        let total_count: u64 = group.iter().map(|r| u64::from(r.count)).sum();
        // A shared clock (multi-shard routing) hands out globally unique,
        // monotone ranges; without one, allocation is the classic
        // `last_sequence + 1` and stays byte-for-byte deterministic.
        let start_seq = match &self.opts.sequence_clock {
            Some(clock) => clock.allocate(total_count),
            None => inner.versions.last_sequence + 1,
        };
        if ikey::MAX_SEQUENCE - start_seq < total_count {
            return (group, Err(Error::invalid("sequence space exhausted")));
        }
        // Decode every body before touching the WAL or memtable, so a
        // malformed batch fails the group with no state mutated at all.
        let mut decoded = Vec::with_capacity(group.len());
        for req in &group {
            match write_batch::decode_ops(&req.body, req.count) {
                Ok(ops) => decoded.push(ops),
                Err(e) => return (group, Err(e)),
            }
        }
        if inner.wal.is_some() {
            let parts: Vec<(&[u8], u32)> =
                group.iter().map(|r| (r.body.as_slice(), r.count)).collect();
            let payload = write_batch::encode_group(start_seq, &parts);
            if let Some(wal) = inner.wal.as_mut() {
                // A failed append leaves a partial record at the WAL tail;
                // recovery reads it as a clean truncated-tail EOF, but only
                // if nothing is appended after it — poison the write path.
                // Every batch in the group shared the failed record, so
                // every member gets the error (the failure contract of
                // DESIGN.md §14).
                if let Err(e) = wal.add_record(&payload) {
                    return (group, Err(self.set_fatal(e)));
                }
                if self.opts.wal_sync {
                    // A failed fsync means unknown durability for a record
                    // the policy promises durable — poison, like a failed
                    // append.
                    if let Err(e) = wal.sync() {
                        return (group, Err(self.set_fatal(e)));
                    }
                    IoStats::add(&self.stats.wal_syncs, 1);
                }
            }
            IoStats::add(&self.stats.wal_bytes_written, payload.len() as u64);
        }
        // Seeded bug (model-checker fault injection, off by default): store
        // `last_seq` *before* the memtable insert. A concurrent reader can
        // then Acquire-load a sequence whose entries it cannot find — the
        // exact publish-ordering bug the vclock consume check exists to
        // catch. The correct path below is untouched when the flag is off.
        #[cfg(feature = "check")]
        let early_publish = crate::model_bugs::publish_before_insert();
        #[cfg(feature = "check")]
        if early_publish {
            self.last_seq
                .store(start_seq + total_count - 1, Ordering::Release);
        }
        {
            let rs = self.read_state();
            let mut mem = rs.mem.write();
            let mut seq = start_seq;
            for ops in &decoded {
                for op in ops {
                    mem.add(seq, op.vtype, &op.key, &op.value);
                    seq += 1;
                }
            }
        }
        inner.versions.last_sequence = start_seq + total_count - 1;
        // Release-publish only after the memtable insert: a reader that
        // Acquire-loads this value is guaranteed to find the entries.
        #[cfg(feature = "check")]
        self.vc.publish(inner.versions.last_sequence);
        #[cfg(feature = "check")]
        if !early_publish {
            self.last_seq
                .store(inner.versions.last_sequence, Ordering::Release);
        }
        #[cfg(not(feature = "check"))]
        self.last_seq
            .store(inner.versions.last_sequence, Ordering::Release);
        IoStats::add(&self.stats.group_commits, 1);
        IoStats::add(&self.stats.grouped_writes, group.len() as u64);
        IoStats::add(
            &self.stats.group_size_hist[IoStats::group_size_bucket(group.len())],
            1,
        );
        (group, Ok(start_seq))
    }

    /// Pop the group from the queue, hand leadership to the next queued
    /// writer, and distribute per-batch results (rebased start sequences,
    /// or the shared error) to every follower in the group. Returns
    /// `own`'s result. Caller holds no locks.
    fn finish_group(
        &self,
        own: &Arc<WriteRequest>,
        group: &[Arc<WriteRequest>],
        outcome: Result<u64>,
    ) -> Result<u64> {
        let next = {
            let mut writers = self.writers.lock();
            for _ in 0..group.len() {
                writers.pop_front();
            }
            writers.front().cloned()
        };
        if let Some(next) = next {
            let mut state = next.state.lock();
            state.leader = true;
            // Seeded bug (model-checker fault injection, off by default):
            // promote the next leader but drop the wakeup. A follower that
            // already entered `cond.wait` sleeps forever — the classic lost
            // notify, caught by the scheduler's deadlock detector.
            #[cfg(feature = "check")]
            if !crate::model_bugs::skip_leader_notify() {
                next.cond.notify_one();
            }
            #[cfg(not(feature = "check"))]
            next.cond.notify_one();
        }
        // Sequence rebasing: batch i's start sequence is the group start
        // plus the operation counts of batches 0..i.
        let mut own_result = outcome.clone();
        let mut next_seq = outcome;
        for req in group {
            let result = next_seq.clone();
            if let Ok(seq) = &mut next_seq {
                *seq += u64::from(req.count);
            }
            if Arc::ptr_eq(req, own) {
                own_result = result;
            } else {
                let mut state = req.state.lock();
                state.result = Some(result);
                req.cond.notify_one();
            }
        }
        own_result
    }

    /// Foreground room-making: flush + compact inline, exactly the seed
    /// engine's synchronous behaviour. Caller holds `maintenance`.
    fn make_room_sync(&self) -> Result<()> {
        let full = {
            let rs = self.read_state();
            let bytes = rs.mem.read().approximate_bytes();
            bytes >= self.opts.write_buffer_size
        };
        if full {
            {
                let mut inner = self.inner.lock();
                self.flush_memtable_sync(&mut inner)?;
            }
            if self.opts.auto_compact {
                self.run_compactions()?;
            }
        }
        Ok(())
    }

    /// One-millisecond write delay once L0 reaches the slowdown trigger
    /// (LevelDB's gradual backpressure). Runs before any lock is taken.
    fn maybe_slowdown(&self) {
        if !self.opts.auto_compact {
            return;
        }
        let l0 = self.read_state().version.files[0].len();
        if l0 >= self.opts.l0_slowdown_trigger {
            self.kick_worker();
            thread::sleep(Duration::from_millis(1));
        }
    }

    /// Background room-making: freeze a full memtable and hand it to the
    /// worker, stalling only while a previous freeze is still unflushed or
    /// L0 is at the hard trigger. Caller holds `inner` (released while
    /// waiting).
    fn make_room_bg(&self, inner: &mut MutexGuard<'_, DbInner>) -> Result<()> {
        loop {
            self.check_bg_error()?;
            let rs = self.read_state();
            if rs.mem.read().approximate_bytes() < self.opts.write_buffer_size {
                return Ok(());
            }
            if rs.imm.is_some() {
                // Previous freeze not flushed yet: wait for the worker.
                self.kick_worker();
                self.work_cond.wait(inner);
                continue;
            }
            if self.opts.auto_compact && rs.version.files[0].len() >= self.opts.l0_stall_trigger {
                // Hard stall: flushing another memtable would only grow L0.
                self.kick_worker();
                self.work_cond.wait(inner);
                continue;
            }
            self.swap_memtable(inner)?;
            return Ok(());
        }
    }

    /// Freeze the active memtable as `imm`, install a fresh one and rotate
    /// the WAL. Caller holds `inner`; `imm` must be empty.
    fn swap_memtable(&self, inner: &mut DbInner) -> Result<()> {
        let pending = if self.opts.wal_enabled {
            let old_log = inner.versions.log_number;
            let number = inner.versions.new_file_number();
            let wal = LogWriter::new(self.env.new_writable(&log_file_name(&self.name, number))?);
            inner.wal = Some(wal);
            PendingFlush {
                old_log: Some(old_log),
                new_log: Some(number),
                boundary_seq: inner.versions.last_sequence,
            }
        } else {
            PendingFlush {
                old_log: None,
                new_log: None,
                boundary_seq: inner.versions.last_sequence,
            }
        };
        inner.pending_flush = Some(pending);
        self.install_read_state(|cur| ReadState {
            mem: Arc::new(RwLock::new(self.fresh_memtable())),
            imm: Some(Arc::clone(&cur.mem)),
            version: Arc::clone(&cur.version),
        });
        self.kick_worker();
        Ok(())
    }

    /// Foreground flush: build the L0 table and install it in one step
    /// (the seed engine's `flush_memtable`, minus the big-lock read path).
    /// Caller holds `maintenance` and `inner`.
    fn flush_memtable_sync(&self, inner: &mut DbInner) -> Result<()> {
        let rs = self.read_state();
        if rs.mem.read().is_empty() {
            return Ok(());
        }
        let old_log = inner.versions.log_number;
        let new_wal = if self.opts.wal_enabled {
            let number = inner.versions.new_file_number();
            let wal = LogWriter::new(self.env.new_writable(&log_file_name(&self.name, number))?);
            Some((number, wal))
        } else {
            None
        };
        let number = inner.versions.new_file_number();
        let meta = self.build_l0_table(number, &rs.mem.read())?;
        let mut edit = VersionEdit {
            log_number: new_wal.as_ref().map(|(n, _)| *n),
            ..Default::default()
        };
        edit.add_file(0, meta);
        // A failed MANIFEST append poisons like a failed WAL append: the
        // writer's block offset no longer matches the file (see `fatal`).
        inner
            .versions
            .log_and_apply(edit)
            .map_err(|e| self.set_fatal(e))?;
        let new_version = inner.versions.current();
        self.install_read_state(|cur| ReadState {
            mem: Arc::new(RwLock::new(self.fresh_memtable())),
            imm: cur.imm.clone(),
            version: Arc::clone(&new_version),
        });
        self.live_versions.lock().push(Arc::downgrade(&new_version));
        inner.wal = new_wal.map(|(_, w)| w);
        inner.mem_generation += 1;
        self.flushed_seq
            .store(inner.versions.last_sequence, Ordering::Release);
        if self.opts.wal_enabled {
            let _ = self.env.remove(&log_file_name(&self.name, old_log));
        }
        Ok(())
    }

    /// Background flush of the frozen memtable, if any. The table is built
    /// without holding `inner` — readers and writers proceed — and the
    /// result is installed under `inner` in one read-state swap. Caller
    /// holds `maintenance`. Returns whether a flush happened.
    fn flush_imm(&self) -> Result<bool> {
        let (imm, pending) = {
            let inner = self.inner.lock();
            let rs = self.read_state();
            match &rs.imm {
                None => return Ok(false),
                Some(m) => (Arc::clone(m), inner.pending_flush.clone()),
            }
        };
        let number = self.inner.lock().versions.new_file_number();
        let meta = self.build_l0_table(number, &imm.read())?;

        let mut inner = self.inner.lock();
        let mut edit = VersionEdit {
            log_number: pending.as_ref().and_then(|p| p.new_log),
            ..Default::default()
        };
        edit.add_file(0, meta);
        inner
            .versions
            .log_and_apply(edit)
            .map_err(|e| self.set_fatal(e))?;
        let new_version = inner.versions.current();
        self.install_read_state(|cur| ReadState {
            mem: Arc::clone(&cur.mem),
            imm: None,
            version: Arc::clone(&new_version),
        });
        self.live_versions.lock().push(Arc::downgrade(&new_version));
        inner.mem_generation += 1;
        if let Some(p) = &pending {
            self.flushed_seq.store(p.boundary_seq, Ordering::Release);
        }
        inner.pending_flush = None;
        let old_log = pending.as_ref().and_then(|p| p.old_log);
        drop(inner);
        if let Some(old) = old_log {
            let _ = self.env.remove(&log_file_name(&self.name, old));
        }
        self.work_cond.notify_all();
        Ok(true)
    }

    /// Build SSTable `number` from a memtable and return its metadata
    /// (counted against the flush I/O stats).
    fn build_l0_table(&self, number: u64, mem: &MemTable) -> Result<FileMetaData> {
        let path = table_file_name(&self.name, number);
        let built = (|| -> Result<crate::table::TableMeta> {
            let file = self.env.new_writable(&path)?;
            let mut builder = TableBuilder::new(&self.opts, file);
            let mut it = mem.iter();
            it.seek_to_first();
            while it.valid() {
                builder.add(it.key(), it.value())?;
                it.next();
            }
            builder.finish()
        })();
        let meta = match built {
            Ok(meta) => meta,
            Err(e) => {
                // The partial table was never installed; drop it so a
                // transient fault leaves no orphan behind. The memtable and
                // WAL are untouched, so the flush is retryable.
                let _ = self.env.remove(&path);
                return Err(e);
            }
        };
        IoStats::add(&self.stats.flush_bytes_written, meta.file_size);
        IoStats::add(&self.stats.flush_blocks_written, meta.num_blocks);
        IoStats::add(&self.stats.flushes, 1);
        Ok(FileMetaData {
            number,
            file_size: meta.file_size,
            num_entries: meta.num_entries,
            num_blocks: meta.num_blocks,
            smallest: meta.smallest,
            largest: meta.largest,
            sec_file_zones: meta.sec_file_zones,
        })
    }

    /// Flush everything in memory (frozen, then active) to L0. Caller
    /// holds `maintenance`.
    fn flush_all_locked(&self) -> Result<()> {
        if !self.opts.background_work {
            let mut inner = self.inner.lock();
            return self.flush_memtable_sync(&mut inner);
        }
        self.check_bg_error()?;
        loop {
            self.flush_imm()?;
            let mut inner = self.inner.lock();
            let rs = self.read_state();
            if rs.imm.is_some() {
                // A racing writer froze the new memtable while we flushed;
                // go around again.
                drop(inner);
                continue;
            }
            if rs.mem.read().is_empty() {
                return Ok(());
            }
            self.swap_memtable(&mut inner)?;
        }
    }
    /// Run compactions until no level is over threshold. Caller holds
    /// `maintenance`.
    fn run_compactions(&self) -> Result<()> {
        while self.run_one_compaction()? {}
        Ok(())
    }

    /// Pick and run at most one due compaction. Caller holds
    /// `maintenance`. Returns whether one ran.
    fn run_one_compaction(&self) -> Result<bool> {
        let (job, version) = {
            let inner = self.inner.lock();
            let version = inner.versions.current();
            match pick_compaction(&self.opts, &version, &inner.versions.compact_pointer) {
                Some(job) => (job, version),
                None => return Ok(false),
            }
        };
        self.do_compaction(job, version)?;
        Ok(true)
    }

    /// Merge the job's inputs into `output_level` and install the result.
    /// Caller holds `maintenance` (which is what keeps `version` — the
    /// version the job was picked from — current throughout). The big
    /// mutex is only taken briefly, for file-number allocation and the
    /// final install, so reads and background-mode writes proceed.
    fn do_compaction(&self, job: CompactionJob, version: Arc<Version>) -> Result<()> {
        let output_level = job.output_level();

        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        for f in job.all_inputs() {
            let table = self.open_table(f)?;
            children.push(Box::new(table.iter(ReadPurpose::Compaction)));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek_to_first();

        let merge_op = self.opts.merge_operator.clone();
        let snapshot_boundary = self.snapshot_boundary();
        let mut outputs: Vec<(u64, crate::table::TableMeta)> = Vec::new();
        let mut builder: Option<(u64, TableBuilder)> = None;
        let mut run_key: Vec<u8> = Vec::new();
        let mut run: Vec<RunEntry> = Vec::new();
        // User keys whose full history this compaction discards (newest
        // record a tombstone, merging into the base level). Folded into the
        // manifest-persisted counter at install time; the integrity checker
        // uses it to bound what dangling index entries can prove.
        let erased = std::cell::Cell::new(0u64);

        let merge_result = (|| -> Result<()> {
            let emit_run = |builder: &mut Option<(u64, TableBuilder)>,
                            outputs: &mut Vec<(u64, crate::table::TableMeta)>,
                            key: &[u8],
                            run: &[RunEntry]|
             -> Result<()> {
                if run.is_empty() {
                    return Ok(());
                }
                let is_base = version.is_base_level_for_key(output_level, key);
                let resolved = resolve_key_run_with_snapshot(
                    key,
                    run,
                    is_base,
                    merge_op.as_deref(),
                    snapshot_boundary,
                );
                if resolved.is_empty() {
                    erased.set(erased.get() + 1);
                    return Ok(());
                }
                // Rotate output files only between user keys so a key's entries
                // never straddle files within a level.
                let full = builder
                    .as_ref()
                    .is_some_and(|(_, b)| b.estimated_size() >= self.opts.max_file_size as u64);
                if full {
                    if let Some((number, b)) = builder.take() {
                        outputs.push((number, b.finish()?));
                    }
                }
                if builder.is_none() {
                    let number = self.inner.lock().versions.new_file_number();
                    let file = self
                        .env
                        .new_writable(&table_file_name(&self.name, number))?;
                    *builder = Some((number, TableBuilder::new(&self.opts, file)));
                }
                if let Some((_, b)) = builder.as_mut() {
                    for (vtype, seq, value) in &resolved {
                        b.add(&InternalKey::new(key, *seq, *vtype).0, value)?;
                    }
                }
                Ok(())
            };

            let mut entries_since_imm_check = 0usize;
            while merged.valid() {
                // Like LevelDB's `DoCompactionWork`, give a frozen memtable
                // priority over the compaction in flight: without this, a
                // writer that fills the active memtable mid-compaction stalls
                // for the whole compaction instead of one short flush. Checked
                // every few entries to keep the common-path cost negligible.
                // In synchronous mode `imm` is always `None` here, and the
                // `background_work` gate skips even the read-state probe.
                if self.opts.background_work {
                    entries_since_imm_check += 1;
                    if entries_since_imm_check >= 64 {
                        entries_since_imm_check = 0;
                        if self.read_state().imm.is_some() {
                            self.flush_imm()?;
                        }
                    }
                }
                let (user_key, seq, vtype) = ikey::parse_internal_key(merged.key())?;
                if user_key != run_key.as_slice() {
                    let prev_key = std::mem::replace(&mut run_key, user_key.to_vec());
                    let prev_run = std::mem::take(&mut run);
                    emit_run(&mut builder, &mut outputs, &prev_key, &prev_run)?;
                }
                run.push((vtype, seq, merged.value().to_vec()));
                merged.next();
            }
            let prev_key = std::mem::take(&mut run_key);
            let prev_run = std::mem::take(&mut run);
            emit_run(&mut builder, &mut outputs, &prev_key, &prev_run)?;
            if let Some((number, b)) = builder.take() {
                if b.num_entries() > 0 {
                    outputs.push((number, b.finish()?));
                } else {
                    let _ = self.env.remove(&table_file_name(&self.name, number));
                }
            }
            Ok(())
        })();
        if let Err(e) = merge_result {
            // None of the outputs were installed; drop the partial and the
            // finished-but-orphaned files so a failed compaction leaves the
            // directory clean (it is retryable — inputs are untouched).
            if let Some((number, _)) = builder.take() {
                let _ = self.env.remove(&table_file_name(&self.name, number));
            }
            for (number, _) in &outputs {
                let _ = self.env.remove(&table_file_name(&self.name, *number));
            }
            return Err(e);
        }

        // Install the result.
        let mut edit = VersionEdit::default();
        for f in job.all_inputs() {
            let level = if job.inputs_lo.iter().any(|x| x.number == f.number) {
                job.level
            } else {
                output_level
            };
            edit.delete_file(level, f.number);
        }
        let mut written_bytes = 0u64;
        let mut written_blocks = 0u64;
        for (number, meta) in &outputs {
            written_bytes += meta.file_size;
            written_blocks += meta.num_blocks;
            edit.add_file(
                output_level,
                FileMetaData {
                    number: *number,
                    file_size: meta.file_size,
                    num_entries: meta.num_entries,
                    num_blocks: meta.num_blocks,
                    smallest: meta.smallest.clone(),
                    largest: meta.largest.clone(),
                    sec_file_zones: meta.sec_file_zones.clone(),
                },
            );
        }
        if let Some(largest) = job
            .inputs_lo
            .iter()
            .map(|f| f.largest.clone())
            .max_by(|a, b| ikey::compare_internal(a, b))
        {
            edit.compact_pointers.push((job.level, largest));
        }
        IoStats::add(&self.stats.compaction_bytes_written, written_bytes);
        IoStats::add(&self.stats.compaction_blocks_written, written_blocks);
        IoStats::add(&self.stats.compactions, 1);

        {
            let mut inner = self.inner.lock();
            inner.versions.erased_keys += erased.get();
            if let Err(e) = inner.versions.log_and_apply(edit) {
                // The outputs were never installed; drop the orphan files
                // before surfacing the (poisoning) error.
                drop(inner);
                for (number, _) in &outputs {
                    let _ = self.env.remove(&table_file_name(&self.name, *number));
                }
                return Err(self.set_fatal(e));
            }
            let new_version = inner.versions.current();
            self.install_read_state(|cur| ReadState {
                mem: Arc::clone(&cur.mem),
                imm: cur.imm.clone(),
                version: Arc::clone(&new_version),
            });
            self.live_versions.lock().push(Arc::downgrade(&new_version));
        }
        self.work_cond.notify_all();

        // Queue the inputs for deletion; `gc` drops whatever no live
        // reader snapshot still references. (Drop our own references
        // first — `merged` holds the input tables, `version` the old
        // layout — so the single-threaded path reclaims them immediately,
        // in the same order the seed engine did.)
        self.pending_gc
            .lock()
            .extend(job.all_inputs().map(|f| f.number));
        drop(merged);
        drop(version);
        self.gc();
        Ok(())
    }

    fn snapshot_boundary(&self) -> Option<u64> {
        self.pinned.lock().keys().next_back().copied()
    }

    /// Delete queued compaction inputs that no installed-or-still-
    /// referenced version contains. Files kept alive by a reader's
    /// `ReadState` stay on disk until a later `gc` call.
    fn gc(&self) {
        let mut pending = self.pending_gc.lock();
        if pending.is_empty() {
            return;
        }
        let live: HashSet<u64> = {
            let mut versions = self.live_versions.lock();
            versions.retain(|w| w.strong_count() > 0);
            let mut live = HashSet::new();
            for weak in versions.iter() {
                if let Some(v) = weak.upgrade() {
                    for files in &v.files {
                        for f in files {
                            live.insert(f.number);
                        }
                    }
                }
            }
            live
        };
        let mut deferred = Vec::new();
        for number in pending.drain(..) {
            if live.contains(&number) {
                deferred.push(number);
                continue;
            }
            self.tables.lock().remove(&number);
            let _ = self.env.remove(&table_file_name(&self.name, number));
        }
        *pending = deferred;
    }

    fn remove_obsolete_files(&self) {
        let (live, log_number, manifest_number) = {
            let inner = self.inner.lock();
            let live: HashSet<u64> = inner.versions.live_files().into_iter().collect();
            (
                live,
                inner.versions.log_number,
                inner.versions.manifest_number(),
            )
        };
        let Ok(names) = self.env.list(&self.name) else {
            return;
        };
        for fname in names {
            if let Some(numtext) = fname.strip_suffix(".ldb") {
                if let Ok(number) = numtext.parse::<u64>() {
                    if !live.contains(&number) {
                        self.tables.lock().remove(&number);
                        let _ = self.env.remove(&format!("{}/{}", self.name, fname));
                    }
                }
            } else if let Some(numtext) = fname.strip_suffix(".log") {
                if let Ok(number) = numtext.parse::<u64>() {
                    if number < log_number {
                        let _ = self.env.remove(&format!("{}/{}", self.name, fname));
                    }
                }
            } else if let Some(numtext) = fname.strip_prefix("MANIFEST-") {
                // Superseded manifests (a crash between writing a fresh
                // manifest and repointing CURRENT leaves one behind).
                if let Ok(number) = numtext.parse::<u64>() {
                    if number != manifest_number {
                        let _ = self.env.remove(&format!("{}/{}", self.name, fname));
                    }
                }
            } else if format!("{}/{}", self.name, fname) == current_tmp_file_name(&self.name) {
                // Staging file orphaned by a crash before the CURRENT rename.
                let _ = self.env.remove(&current_tmp_file_name(&self.name));
            }
        }
    }

    /// Drop the cached reader for table `number` so the next access
    /// re-opens the file. Called whenever a read through the cache reports
    /// corruption: the on-disk file may since have been replaced (by
    /// [`crate::repair::repair_db`] or an operator restoring a backup) and
    /// a stale handle would keep serving the corrupt footer and index.
    pub(crate) fn evict_table(&self, number: u64) {
        self.tables.lock().remove(&number);
    }

    /// Open (via the table cache) the reader for a live file. Cache misses
    /// count as `table_opens` (footer + index + filter block I/O).
    fn open_table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
        let mut tables = self.tables.lock();
        if let Some(t) = tables.get(&meta.number) {
            return Ok(t);
        }
        IoStats::add(&self.stats.table_opens, 1);
        let file = self
            .env
            .open_random(&table_file_name(&self.name, meta.number))?;
        let table = Table::open(
            file,
            meta.number,
            Arc::clone(&self.stats),
            self.block_cache.clone(),
        )?;
        tables.insert(meta.number, Arc::clone(&table), 1);
        Ok(table)
    }
}

impl TableProvider for DbCore {
    fn open_table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
        DbCore::open_table(self, meta)
    }
}

/// Background worker: waits for kicks, then flushes the frozen memtable
/// and runs due compactions until there is nothing left to do.
fn worker_loop(core: &DbCore, rx: Receiver<WorkerMsg>) {
    loop {
        match rx.recv() {
            Ok(WorkerMsg::Shutdown) | Err(_) => return,
            Ok(WorkerMsg::Kick) => {}
        }
        // Drain queued kicks so one round covers them all.
        loop {
            match rx.try_recv() {
                Ok(WorkerMsg::Shutdown) => return,
                Ok(WorkerMsg::Kick) => continue,
                Err(_) => break,
            }
        }
        let _maintenance = core.maintenance.lock();
        loop {
            let step = (|| -> Result<bool> {
                if core.flush_imm()? {
                    return Ok(true);
                }
                if core.opts.auto_compact && core.run_one_compaction()? {
                    return Ok(true);
                }
                Ok(false)
            })();
            match step {
                Ok(true) => continue,
                Ok(false) => break,
                Err(e) => {
                    // Park the error for the next writer and wake any
                    // stalled ones so they can surface it.
                    *core.bg_error.lock() = Some(e);
                    core.work_cond.notify_all();
                    break;
                }
            }
        }
    }
}

/// A pinned snapshot (see [`Db::pin_snapshot`]). Dropping it unpins.
pub struct SnapshotHandle {
    seq: u64,
    registry: Arc<Mutex<BTreeMap<u64, usize>>>,
}

impl SnapshotHandle {
    /// The pinned sequence number; pass to [`Db::get_at`] or
    /// [`Db::fold_key_sources_at`].
    pub fn sequence(&self) -> u64 {
        self.seq
    }
}

impl Drop for SnapshotHandle {
    fn drop(&mut self) {
        let mut reg = self.registry.lock();
        if let Some(count) = reg.get_mut(&self.seq) {
            *count -= 1;
            if *count == 0 {
                reg.remove(&self.seq);
            }
        }
    }
}

/// Recovery-time flush: used while replaying WALs, before the `DbCore`
/// exists.
///
/// The new L0 file is recorded into `edit` but **not** logged to the
/// MANIFEST here. Recovery applies one combined edit — all replay flushes
/// plus the fresh WAL's log number — atomically at the end of `Db::open`.
/// If we crash before that point the MANIFEST is unchanged, the old WALs
/// are still current, and the next recovery replays them from scratch
/// (the half-built tables are unreferenced orphans, removed by
/// `remove_obsolete_files`). Logging each flush eagerly instead would
/// persist the flushed records in L0 while the WAL that produced them
/// stays replayable — a second recovery would then apply non-idempotent
/// MERGE records twice.
fn flush_memtable_impl(
    opts: &DbOptions,
    env: &Arc<dyn Env>,
    stats: &Arc<IoStats>,
    name: &str,
    versions: &mut VersionSet,
    mem: &mut MemTable,
    edit: &mut VersionEdit,
) -> Result<()> {
    if mem.is_empty() {
        return Ok(());
    }
    let number = versions.new_file_number();
    let file = env.new_writable(&table_file_name(name, number))?;
    let mut builder = TableBuilder::new(opts, file);
    let mut it = mem.iter();
    it.seek_to_first();
    while it.valid() {
        builder.add(it.key(), it.value())?;
        it.next();
    }
    let meta = builder.finish()?;
    IoStats::add(&stats.flush_bytes_written, meta.file_size);
    IoStats::add(&stats.flush_blocks_written, meta.num_blocks);
    IoStats::add(&stats.flushes, 1);
    edit.add_file(
        0,
        FileMetaData {
            number,
            file_size: meta.file_size,
            num_entries: meta.num_entries,
            num_blocks: meta.num_blocks,
            smallest: meta.smallest,
            largest: meta.largest,
            sec_file_zones: meta.sec_file_zones,
        },
    );
    *mem = MemTable::new();
    Ok(())
}

/// One live entry from a [`ResolvedIter`]: `(user_key, seq, value)`.
pub type ResolvedEntry = (Vec<u8>, u64, Vec<u8>);

/// Iterator yielding `(user_key, seq, value)` for each live key.
pub struct ResolvedIter {
    it: MergingIterator,
    merge_op: Option<MergeOperatorRef>,
    positioned: bool,
    /// Inclusive user-key upper bound ([`Db::range_iter`]); the stream
    /// ends at the first key beyond it without touching further blocks.
    end: Option<Vec<u8>>,
    /// Sequence-time pin ([`Db::range_iter_at`]): entries newer than
    /// this are skipped, exposing the pre-pin version of each key.
    snapshot: Option<u64>,
}

impl ResolvedIter {
    /// Position at the first live entry ≥ `user_key`.
    pub fn seek(&mut self, user_key: &[u8]) {
        self.it
            .seek(&InternalKey::for_seek(user_key, ikey::MAX_SEQUENCE).0);
        self.positioned = true;
    }

    /// Position at the first live entry.
    pub fn seek_to_first(&mut self) {
        self.it.seek_to_first();
        self.positioned = true;
    }

    /// The next live `(user_key, newest_seq, value)`.
    pub fn next_entry(&mut self) -> Result<Option<ResolvedEntry>> {
        assert!(self.positioned, "seek before iterating");
        while self.it.valid() {
            let (user_key, newest_seq, newest_type) = ikey::parse_internal_key(self.it.key())?;
            if let Some(end) = &self.end {
                if user_key > end.as_slice() {
                    return Ok(None);
                }
            }
            // Versions of one key sort newest-first, so stepping past the
            // too-new ones lands on the newest entry at or below the pin;
            // from there resolution proceeds as usual.
            if self.snapshot.is_some_and(|snap| newest_seq > snap) {
                self.it.next();
                continue;
            }
            let user_key = user_key.to_vec();

            match newest_type {
                ValueType::Value => {
                    let value = self.it.value().to_vec();
                    self.skip_rest_of_key(&user_key)?;
                    return Ok(Some((user_key, newest_seq, value)));
                }
                ValueType::Deletion => {
                    self.skip_rest_of_key(&user_key)?;
                    continue;
                }
                ValueType::Merge => {
                    // Collect operands down to a base or the end of the run.
                    let mut operands: Vec<Vec<u8>> = vec![self.it.value().to_vec()];
                    let mut base: Option<Vec<u8>> = None;
                    self.it.next();
                    while self.it.valid() {
                        let (uk, _seq, vt) = ikey::parse_internal_key(self.it.key())?;
                        if uk != user_key.as_slice() {
                            break;
                        }
                        match vt {
                            ValueType::Merge => operands.push(self.it.value().to_vec()),
                            ValueType::Value => {
                                base = Some(self.it.value().to_vec());
                                self.it.next();
                                break;
                            }
                            ValueType::Deletion => {
                                self.it.next();
                                break;
                            }
                        }
                        self.it.next();
                    }
                    self.skip_rest_of_key(&user_key)?;
                    let Some(op) = &self.merge_op else {
                        return Err(Error::not_supported(
                            "merge entries present but no merge operator configured",
                        ));
                    };
                    operands.reverse();
                    let refs: Vec<&[u8]> = operands.iter().map(|o| o.as_slice()).collect();
                    let folded = op.full_merge(&user_key, base.as_deref(), &refs);
                    return Ok(Some((user_key, newest_seq, folded)));
                }
            }
        }
        Ok(None)
    }

    fn skip_rest_of_key(&mut self, user_key: &[u8]) -> Result<()> {
        // After handling the newest entry, discard older versions. For
        // Value/Deletion the iterator still sits on the handled entry.
        if self.it.valid() {
            let (uk, _, _) = ikey::parse_internal_key(self.it.key())?;
            if uk != user_key {
                return Ok(());
            }
        }
        while self.it.valid() {
            let (uk, _, _) = ikey::parse_internal_key(self.it.key())?;
            if uk != user_key {
                break;
            }
            self.it.next();
        }
        Ok(())
    }
}
