//! The database: write path, read path, flushes and compactions.
//!
//! Single-writer, synchronous engine: a write that fills the memtable
//! flushes it to L0 inline, and a flush that tips a level over its target
//! runs the compaction inline. This mirrors the paper's choice of
//! single-threaded LevelDB — per-operation costs are directly attributable,
//! which is what its experiments measure.

use crate::cache::LruCache;
use crate::compaction::{pick_compaction, resolve_key_run_with_snapshot, CompactionJob, RunEntry};
use crate::env::{Env, IoStats};
use crate::ikey::{self, InternalKey, ValueType};
use crate::iterator::{DbIterator, MergingIterator, VecIterator};
use crate::memtable::MemTable;
use crate::merge::MergeOperatorRef;
pub use crate::options::DbOptions;
use crate::table::{BlockCache, ReadPurpose, Table, TableBuilder};
use crate::version::{
    current_file_name, log_file_name, table_file_name, FileMetaData, Version, VersionEdit,
    VersionSet,
};
use crate::wal::{LogReader, LogWriter};
use crate::write_batch::WriteBatch;
use ldbpp_common::{Error, Result};
use parking_lot::Mutex;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Identifies where a key's entries came from, in newest-to-oldest order:
/// the memtable, then each L0 file (newest file first), then each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySource {
    /// The active memtable.
    Mem,
    /// An L0 file (by file number).
    L0File(u64),
    /// A level ≥ 1.
    Level(usize),
}

struct DbInner {
    mem: MemTable,
    wal: Option<LogWriter>,
    versions: VersionSet,
    tables: LruCache<u64, Arc<Table>>,
    mem_generation: u64,
}

/// A LevelDB-style LSM key-value store.
///
/// ```
/// use ldbpp_lsm::db::{Db, DbOptions};
///
/// let db = Db::open_in_memory(DbOptions::small()).unwrap();
/// db.put(b"k", b"v").unwrap();
/// assert_eq!(db.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
/// db.delete(b"k").unwrap();
/// assert_eq!(db.get(b"k").unwrap(), None);
/// ```
pub struct Db {
    name: String,
    opts: DbOptions,
    env: Arc<dyn Env>,
    stats: Arc<IoStats>,
    block_cache: Option<BlockCache>,
    inner: Mutex<DbInner>,
    /// Pinned snapshot sequences → pin count. Compactions preserve every
    /// version at or below the largest pinned sequence.
    pinned: Arc<Mutex<std::collections::BTreeMap<u64, usize>>>,
}

impl Db {
    /// Open (creating or recovering) a database at `name` within `env`.
    pub fn open(env: Arc<dyn Env>, name: &str, opts: DbOptions) -> Result<Db> {
        env.mkdir_all(name)?;
        let stats = IoStats::new();
        let block_cache: Option<BlockCache> = if opts.block_cache_bytes > 0 {
            Some(Arc::new(Mutex::new(LruCache::new(opts.block_cache_bytes))))
        } else {
            None
        };

        let preexisting = env.exists(&current_file_name(name));
        let mut versions = if preexisting {
            VersionSet::recover(Arc::clone(&env), name, opts.num_levels)?
        } else {
            VersionSet::create(Arc::clone(&env), name, opts.num_levels)?
        };

        let mut mem = MemTable::new();
        let mut mem_generation = 0;
        let tables = LruCache::new(opts.table_cache_entries.max(16));

        // Replay WAL files at or after the recorded log number.
        if preexisting {
            let mut log_numbers: Vec<u64> = env
                .list(name)?
                .iter()
                .filter_map(|f| f.strip_suffix(".log").and_then(|n| n.parse::<u64>().ok()))
                .filter(|n| *n >= versions.log_number)
                .collect();
            log_numbers.sort_unstable();
            for number in log_numbers {
                let data = env.read_all(&log_file_name(name, number))?;
                let mut reader = LogReader::new(&data);
                while let Some(record) = reader.read_record()? {
                    let (seq, ops) = WriteBatch::decode(&record)?;
                    for (i, op) in ops.iter().enumerate() {
                        mem.add(seq + i as u64, op.vtype, &op.key, &op.value);
                    }
                    let end_seq = seq + ops.len().max(1) as u64 - 1;
                    if end_seq > versions.last_sequence {
                        versions.last_sequence = end_seq;
                    }
                    if mem.approximate_bytes() >= opts.write_buffer_size {
                        flush_memtable_impl(
                            &opts, &env, &stats, name, &mut versions, &mut mem, None,
                        )?;
                        mem_generation += 1;
                    }
                }
            }
            if !mem.is_empty() {
                flush_memtable_impl(&opts, &env, &stats, name, &mut versions, &mut mem, None)?;
                mem_generation += 1;
            }
        }

        // Fresh WAL.
        let wal = if opts.wal_enabled {
            let log_number = versions.new_file_number();
            let wal = LogWriter::new(env.new_writable(&log_file_name(name, log_number))?);
            versions.log_and_apply(VersionEdit {
                log_number: Some(log_number),
                ..Default::default()
            })?;
            Some(wal)
        } else {
            None
        };

        let db = Db {
            name: name.to_string(),
            opts,
            env,
            stats,
            block_cache,
            inner: Mutex::new(DbInner {
                mem,
                wal,
                versions,
                tables,
                mem_generation,
            }),
            pinned: Arc::new(Mutex::new(std::collections::BTreeMap::new())),
        };
        db.remove_obsolete_files(&mut db.inner.lock());
        Ok(db)
    }

    /// Convenience: open in a fresh in-memory environment.
    pub fn open_in_memory(opts: DbOptions) -> Result<Db> {
        Db::open(crate::env::MemEnv::new(), "db", opts)
    }

    /// The configuration this database was opened with.
    pub fn options(&self) -> &DbOptions {
        &self.opts
    }

    /// I/O counters for this database instance.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The most recently assigned sequence number.
    pub fn last_sequence(&self) -> u64 {
        self.inner.lock().versions.last_sequence
    }

    /// Bumped every time the memtable is flushed (callers maintaining
    /// memtable-side indexes use this to know when to reset them).
    pub fn mem_generation(&self) -> u64 {
        self.inner.lock().mem_generation
    }

    /// Total bytes of live SSTables.
    pub fn table_bytes(&self) -> u64 {
        self.inner.lock().versions.current().total_bytes()
    }

    /// The current version (file layout snapshot).
    pub fn current_version(&self) -> Arc<Version> {
        self.inner.lock().versions.current()
    }

    /// Per-level file counts, for diagnostics.
    pub fn level_file_counts(&self) -> Vec<usize> {
        let v = self.current_version();
        v.files.iter().map(|f| f.len()).collect()
    }

    // -- write path ---------------------------------------------------------

    /// Insert or overwrite `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<u64> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(&mut batch)
    }

    /// Delete `key` (writes a tombstone).
    pub fn delete(&self, key: &[u8]) -> Result<u64> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(&mut batch)
    }

    /// Append a merge operand for `key` (requires a configured
    /// [`crate::merge::MergeOperator`]).
    pub fn merge(&self, key: &[u8], operand: &[u8]) -> Result<u64> {
        let mut batch = WriteBatch::new();
        batch.merge(key, operand);
        self.write(&mut batch)
    }

    /// Apply a batch atomically. Returns the sequence number of its first
    /// operation.
    pub fn write(&self, batch: &mut WriteBatch) -> Result<u64> {
        if batch.is_empty() {
            return Err(Error::invalid("empty write batch"));
        }
        let mut inner = self.inner.lock();
        self.make_room(&mut inner)?;
        let start_seq = inner.versions.last_sequence + 1;
        if ikey::MAX_SEQUENCE - start_seq < batch.count() as u64 {
            return Err(Error::invalid("sequence space exhausted"));
        }
        let payload_len = {
            let payload = batch.encode(start_seq);
            if let Some(wal) = inner.wal.as_mut() {
                wal.add_record(payload)?;
            }
            payload.len()
        };
        if inner.wal.is_some() {
            IoStats::add(&self.stats.wal_bytes_written, payload_len as u64);
        }
        let ops = batch.ops()?;
        for (i, op) in ops.iter().enumerate() {
            inner
                .mem
                .add(start_seq + i as u64, op.vtype, &op.key, &op.value);
        }
        inner.versions.last_sequence = start_seq + ops.len() as u64 - 1;
        Ok(start_seq)
    }

    /// Flush the memtable to L0 (then run any due compactions, unless
    /// `auto_compact` is off).
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_memtable(&mut inner)?;
        if self.opts.auto_compact {
            self.run_compactions(&mut inner)?;
        }
        Ok(())
    }

    /// Run compactions until no level is over threshold (normally invoked
    /// automatically by writes).
    pub fn compact(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.run_compactions(&mut inner)
    }

    /// Major compaction: flush the memtable and push every level's data
    /// down until it all rests in the deepest populated level, rewriting
    /// every SSTable along the way.
    ///
    /// Useful for (a) reclaiming all shadowed versions and tombstones at
    /// once, and (b) re-materializing tables under the *current* options —
    /// e.g. after declaring a new Embedded-Index attribute on an existing
    /// database, a major compaction rebuilds every file with the new
    /// per-block filters and zone maps.
    pub fn major_compact(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.flush_memtable(&mut inner)?;
        for level in 0..self.opts.num_levels - 1 {
            let version = inner.versions.current();
            let inputs_lo = version.files[level].clone();
            if inputs_lo.is_empty() {
                continue;
            }
            let lo = inputs_lo
                .iter()
                .map(|f| ikey::user_key(&f.smallest).to_vec())
                .min()
                .unwrap();
            let hi = inputs_lo
                .iter()
                .map(|f| ikey::user_key(&f.largest).to_vec())
                .max()
                .unwrap();
            let inputs_hi = version.overlapping_files(level + 1, &lo, &hi);
            let job = CompactionJob {
                level,
                inputs_lo,
                inputs_hi,
            };
            self.do_compaction(&mut inner, job)?;
        }
        Ok(())
    }

    fn make_room(&self, inner: &mut DbInner) -> Result<()> {
        if inner.mem.approximate_bytes() >= self.opts.write_buffer_size {
            self.flush_memtable(inner)?;
            if self.opts.auto_compact {
                self.run_compactions(inner)?;
            }
        }
        Ok(())
    }

    fn flush_memtable(&self, inner: &mut DbInner) -> Result<()> {
        if inner.mem.is_empty() {
            return Ok(());
        }
        let old_log = inner.versions.log_number;
        let new_wal = if self.opts.wal_enabled {
            let number = inner.versions.new_file_number();
            let wal = LogWriter::new(
                self.env
                    .new_writable(&log_file_name(&self.name, number))?,
            );
            Some((number, wal))
        } else {
            None
        };
        let mut mem = std::mem::take(&mut inner.mem);
        flush_memtable_impl(
            &self.opts,
            &self.env,
            &self.stats,
            &self.name,
            &mut inner.versions,
            &mut mem,
            new_wal.as_ref().map(|(n, _)| *n),
        )?;
        inner.wal = new_wal.map(|(_, w)| w);
        inner.mem_generation += 1;
        if self.opts.wal_enabled {
            let _ = self.env.remove(&log_file_name(&self.name, old_log));
        }
        Ok(())
    }

    fn run_compactions(&self, inner: &mut DbInner) -> Result<()> {
        loop {
            let version = inner.versions.current();
            let Some(job) =
                pick_compaction(&self.opts, &version, &inner.versions.compact_pointer)
            else {
                return Ok(());
            };
            self.do_compaction(inner, job)?;
        }
    }

    fn do_compaction(&self, inner: &mut DbInner, job: CompactionJob) -> Result<()> {
        let output_level = job.output_level();
        let version = inner.versions.current();

        let mut children: Vec<Box<dyn DbIterator>> = Vec::new();
        for f in job.all_inputs() {
            let table = self.open_table_locked(inner, f)?;
            children.push(Box::new(table.iter(ReadPurpose::Compaction)));
        }
        let mut merged = MergingIterator::new(children);
        merged.seek_to_first();

        let merge_op = self.opts.merge_operator.clone();
        let snapshot_boundary = self.snapshot_boundary();
        let mut outputs: Vec<(u64, crate::table::TableMeta)> = Vec::new();
        let mut builder: Option<(u64, TableBuilder)> = None;
        let mut run_key: Vec<u8> = Vec::new();
        let mut run: Vec<RunEntry> = Vec::new();

        let emit_run = |inner: &mut DbInner,
                            builder: &mut Option<(u64, TableBuilder)>,
                            outputs: &mut Vec<(u64, crate::table::TableMeta)>,
                            key: &[u8],
                            run: &[RunEntry]|
         -> Result<()> {
            if run.is_empty() {
                return Ok(());
            }
            let is_base = version.is_base_level_for_key(output_level, key);
            let resolved = resolve_key_run_with_snapshot(
                key,
                run,
                is_base,
                merge_op.as_deref(),
                snapshot_boundary,
            );
            if resolved.is_empty() {
                return Ok(());
            }
            // Rotate output files only between user keys so a key's entries
            // never straddle files within a level.
            if let Some((_, b)) = builder.as_ref() {
                if b.estimated_size() >= self.opts.max_file_size as u64 {
                    let (number, b) = builder.take().unwrap();
                    outputs.push((number, b.finish()?));
                }
            }
            if builder.is_none() {
                let number = inner.versions.new_file_number();
                let file = self
                    .env
                    .new_writable(&table_file_name(&self.name, number))?;
                *builder = Some((number, TableBuilder::new(&self.opts, file)));
            }
            let (_, b) = builder.as_mut().unwrap();
            for (vtype, seq, value) in &resolved {
                b.add(&InternalKey::new(key, *seq, *vtype).0, value)?;
            }
            Ok(())
        };

        while merged.valid() {
            let (user_key, seq, vtype) = ikey::parse_internal_key(merged.key())?;
            if user_key != run_key.as_slice() {
                let prev_key = std::mem::replace(&mut run_key, user_key.to_vec());
                let prev_run = std::mem::take(&mut run);
                emit_run(inner, &mut builder, &mut outputs, &prev_key, &prev_run)?;
            }
            run.push((vtype, seq, merged.value().to_vec()));
            merged.next();
        }
        let prev_key = std::mem::take(&mut run_key);
        let prev_run = std::mem::take(&mut run);
        emit_run(inner, &mut builder, &mut outputs, &prev_key, &prev_run)?;
        if let Some((number, b)) = builder.take() {
            if b.num_entries() > 0 {
                outputs.push((number, b.finish()?));
            } else {
                let _ = self.env.remove(&table_file_name(&self.name, number));
            }
        }

        // Install the result.
        let mut edit = VersionEdit::default();
        for f in job.all_inputs() {
            let level = if job.inputs_lo.iter().any(|x| x.number == f.number) {
                job.level
            } else {
                output_level
            };
            edit.delete_file(level, f.number);
        }
        let mut written_bytes = 0u64;
        let mut written_blocks = 0u64;
        for (number, meta) in &outputs {
            written_bytes += meta.file_size;
            written_blocks += meta.num_blocks;
            edit.add_file(
                output_level,
                FileMetaData {
                    number: *number,
                    file_size: meta.file_size,
                    num_entries: meta.num_entries,
                    num_blocks: meta.num_blocks,
                    smallest: meta.smallest.clone(),
                    largest: meta.largest.clone(),
                    sec_file_zones: meta.sec_file_zones.clone(),
                },
            );
        }
        if let Some(largest) = job
            .inputs_lo
            .iter()
            .map(|f| f.largest.clone())
            .max_by(|a, b| ikey::compare_internal(a, b))
        {
            edit.compact_pointers.push((job.level, largest));
        }
        IoStats::add(&self.stats.compaction_bytes_written, written_bytes);
        IoStats::add(&self.stats.compaction_blocks_written, written_blocks);
        IoStats::add(&self.stats.compactions, 1);
        inner.versions.log_and_apply(edit)?;

        // Drop the inputs.
        for f in job.all_inputs() {
            inner.tables.remove(&f.number);
            let _ = self.env.remove(&table_file_name(&self.name, f.number));
        }
        Ok(())
    }

    fn remove_obsolete_files(&self, inner: &mut DbInner) {
        let live: std::collections::HashSet<u64> =
            inner.versions.live_files().into_iter().collect();
        let Ok(names) = self.env.list(&self.name) else {
            return;
        };
        for fname in names {
            if let Some(numtext) = fname.strip_suffix(".ldb") {
                if let Ok(number) = numtext.parse::<u64>() {
                    if !live.contains(&number) {
                        inner.tables.remove(&number);
                        let _ = self.env.remove(&format!("{}/{}", self.name, fname));
                    }
                }
            } else if let Some(numtext) = fname.strip_suffix(".log") {
                if let Ok(number) = numtext.parse::<u64>() {
                    if number < inner.versions.log_number {
                        let _ = self.env.remove(&format!("{}/{}", self.name, fname));
                    }
                }
            }
        }
    }

    // -- read path ----------------------------------------------------------

    fn open_table_locked(
        &self,
        inner: &mut DbInner,
        meta: &FileMetaData,
    ) -> Result<Arc<Table>> {
        if let Some(t) = inner.tables.get(&meta.number) {
            return Ok(t);
        }
        let file = self
            .env
            .open_random(&table_file_name(&self.name, meta.number))?;
        let table = Table::open(
            file,
            meta.number,
            Arc::clone(&self.stats),
            self.block_cache.clone(),
        )?;
        inner.tables.insert(meta.number, Arc::clone(&table), 1);
        Ok(table)
    }

    /// Open (via the table cache) the reader for a live file.
    pub fn open_table(&self, meta: &FileMetaData) -> Result<Arc<Table>> {
        self.open_table_locked(&mut self.inner.lock(), meta)
    }

    /// Point lookup on the primary key.
    ///
    /// Walks sources newest-to-oldest and stops at the first `Value` or
    /// `Deletion`; merge operands encountered on the way are folded onto
    /// whatever base is found (or onto nothing).
    pub fn get(&self, user_key: &[u8]) -> Result<Option<Vec<u8>>> {
        enum Outcome {
            Found(Vec<u8>),
            Deleted,
        }
        let mut operands: Vec<Vec<u8>> = Vec::new(); // newest first
        let mut outcome: Option<Outcome> = None;
        self.fold_key_sources(user_key, |_, entries| {
            for (vtype, value, _seq) in entries {
                match vtype {
                    ValueType::Value => {
                        outcome = Some(Outcome::Found(value.clone()));
                        return ControlFlow::Break(());
                    }
                    ValueType::Deletion => {
                        outcome = Some(Outcome::Deleted);
                        return ControlFlow::Break(());
                    }
                    ValueType::Merge => operands.push(value.clone()),
                }
            }
            ControlFlow::Continue(())
        })?;
        if operands.is_empty() {
            return Ok(match outcome {
                Some(Outcome::Found(v)) => Some(v),
                _ => None,
            });
        }
        let Some(op) = &self.opts.merge_operator else {
            return Err(Error::not_supported(
                "merge entries present but no merge operator configured",
            ));
        };
        operands.reverse(); // oldest first
        let refs: Vec<&[u8]> = operands.iter().map(|o| o.as_slice()).collect();
        let base = match &outcome {
            Some(Outcome::Found(v)) => Some(v.as_slice()),
            _ => None,
        };
        Ok(Some(op.full_merge(user_key, base, &refs)))
    }

    /// The sequence number a read started now would observe — usable later
    /// with [`Db::get_at`] for repeatable (snapshot) reads.
    pub fn snapshot_seq(&self) -> u64 {
        self.last_sequence()
    }

    /// Pin the current state: while the returned handle is alive,
    /// compactions preserve every version at or below its sequence, so
    /// [`Db::get_at`] against it is exact no matter how much churn and
    /// compaction happens afterwards. Dropping the handle releases the
    /// guarantee (space is reclaimed by later compactions).
    pub fn pin_snapshot(&self) -> SnapshotHandle {
        let seq = self.last_sequence();
        *self.pinned.lock().entry(seq).or_insert(0) += 1;
        SnapshotHandle {
            seq,
            registry: Arc::clone(&self.pinned),
        }
    }

    fn snapshot_boundary(&self) -> Option<u64> {
        self.pinned.lock().keys().next_back().copied()
    }

    /// Point lookup as of an earlier snapshot sequence: returns the value
    /// `user_key` had when [`Db::snapshot_seq`] returned `snapshot`.
    ///
    /// Note: snapshots are best-effort across compactions — the engine
    /// keeps no snapshot list, so versions older than `snapshot` may have
    /// been compacted away; in that case the newest surviving version at or
    /// below `snapshot` is returned. Within the memtable and unrelated
    /// levels the read is exact, which covers the read-your-writes and
    /// repeatable-read patterns tests rely on.
    pub fn get_at(&self, user_key: &[u8], snapshot: u64) -> Result<Option<Vec<u8>>> {
        enum Outcome {
            Found(Vec<u8>),
            Deleted,
        }
        let mut operands: Vec<Vec<u8>> = Vec::new();
        let mut outcome: Option<Outcome> = None;
        self.fold_key_sources_at(user_key, Some(snapshot), |_, entries| {
            for (vtype, value, _seq) in entries {
                match vtype {
                    ValueType::Value => {
                        outcome = Some(Outcome::Found(value.clone()));
                        return ControlFlow::Break(());
                    }
                    ValueType::Deletion => {
                        outcome = Some(Outcome::Deleted);
                        return ControlFlow::Break(());
                    }
                    ValueType::Merge => operands.push(value.clone()),
                }
            }
            ControlFlow::Continue(())
        })?;
        if operands.is_empty() {
            return Ok(match outcome {
                Some(Outcome::Found(v)) => Some(v),
                _ => None,
            });
        }
        let Some(op) = &self.opts.merge_operator else {
            return Err(Error::not_supported(
                "merge entries present but no merge operator configured",
            ));
        };
        operands.reverse();
        let refs: Vec<&[u8]> = operands.iter().map(|o| o.as_slice()).collect();
        let base = match &outcome {
            Some(Outcome::Found(v)) => Some(v.as_slice()),
            _ => None,
        };
        Ok(Some(op.full_merge(user_key, base, &refs)))
    }

    /// A human-readable summary of the tree shape and I/O counters —
    /// LevelDB's `GetProperty("leveldb.stats")` equivalent.
    pub fn debug_summary(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.inner.lock();
        let version = inner.versions.current();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "seq={} mem={}B gen={}",
            inner.versions.last_sequence,
            inner.mem.approximate_bytes(),
            inner.mem_generation
        );
        for (level, files) in version.files.iter().enumerate() {
            if files.is_empty() {
                continue;
            }
            let bytes: u64 = files.iter().map(|f| f.file_size).sum();
            let entries: u64 = files.iter().map(|f| f.num_entries).sum();
            let _ = writeln!(
                out,
                "L{level}: {} files, {} B, {} entries",
                files.len(),
                bytes,
                entries
            );
        }
        let s = self.stats.snapshot();
        let _ = writeln!(
            out,
            "io: reads={} cache_hits={} flushes={} compactions={} compaction_io={}B wal={}B",
            s.block_reads,
            s.cache_hits,
            s.flushes,
            s.compactions,
            s.compaction_bytes_read + s.compaction_bytes_written,
            s.wal_bytes_written
        );
        out
    }

    /// Visit each source that may hold `user_key`, newest first, with the
    /// entries found there (each newest-first). The closure may break to
    /// stop early — this is how GET avoids touching deeper levels and how
    /// the Lazy index stops once top-K is satisfied.
    pub fn fold_key_sources<F>(&self, user_key: &[u8], visit: F) -> Result<()>
    where
        F: FnMut(KeySource, &[(ValueType, Vec<u8>, u64)]) -> ControlFlow<()>,
    {
        self.fold_key_sources_at(user_key, None, visit)
    }

    /// [`Db::fold_key_sources`] against an explicit snapshot sequence
    /// (`None` = latest). Entries newer than the snapshot are invisible.
    pub fn fold_key_sources_at<F>(
        &self,
        user_key: &[u8],
        snapshot: Option<u64>,
        mut visit: F,
    ) -> Result<()>
    where
        F: FnMut(KeySource, &[(ValueType, Vec<u8>, u64)]) -> ControlFlow<()>,
    {
        let mut inner = self.inner.lock();
        let snapshot = snapshot.unwrap_or(inner.versions.last_sequence);

        let mem_entries: Vec<(ValueType, Vec<u8>, u64)> = inner
            .mem
            .entries_for(user_key, snapshot)
            .map(|(t, v, s)| (t, v.to_vec(), s))
            .collect();
        if !mem_entries.is_empty() {
            if let ControlFlow::Break(()) = visit(KeySource::Mem, &mem_entries) {
                return Ok(());
            }
        }

        let version = inner.versions.current();
        // L0 files: already ordered newest-first in the version.
        for f in version.files_for_key(0, user_key) {
            let table = self.open_table_locked(&mut inner, &f)?;
            let entries = table.entries_for(user_key, snapshot, ReadPurpose::Query)?;
            if entries.is_empty() {
                continue;
            }
            if let ControlFlow::Break(()) = visit(KeySource::L0File(f.number), &entries) {
                return Ok(());
            }
        }
        for level in 1..version.num_levels() {
            for f in version.files_for_key(level, user_key) {
                let table = self.open_table_locked(&mut inner, &f)?;
                let entries = table.entries_for(user_key, snapshot, ReadPurpose::Query)?;
                if entries.is_empty() {
                    continue;
                }
                if let ControlFlow::Break(()) = visit(KeySource::Level(level), &entries) {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// The paper's `GetLite(k, currentLevel)`: does a (possibly newer)
    /// version of `user_key` exist *above* `below_level`, judged purely
    /// from in-memory metadata (memtable + index blocks + primary bloom
    /// filters)? No data-block I/O. Bloom false positives make this
    /// conservatively over-report presence.
    pub fn get_lite(&self, user_key: &[u8], below_level: usize) -> bool {
        let mut inner = self.inner.lock();
        let snapshot = inner.versions.last_sequence;
        if inner.mem.entries_for(user_key, snapshot).next().is_some() {
            return true;
        }
        let version = inner.versions.current();
        for level in 0..below_level.min(version.num_levels()) {
            for f in version.files_for_key(level, user_key) {
                match self.open_table_locked(&mut inner, &f) {
                    Ok(table) => {
                        if table.primary_may_contain(user_key) {
                            return true;
                        }
                    }
                    Err(_) => return true, // unreadable: fail safe
                }
            }
        }
        false
    }

    /// `GetLite` variant for candidates found in an L0 file: is there a
    /// (possibly newer) version in the memtable or in an L0 file *newer
    /// than* `file_number`? Metadata-only, like [`Db::get_lite`].
    pub fn get_lite_l0(&self, user_key: &[u8], file_number: u64) -> bool {
        let mut inner = self.inner.lock();
        let snapshot = inner.versions.last_sequence;
        if inner.mem.entries_for(user_key, snapshot).next().is_some() {
            return true;
        }
        let version = inner.versions.current();
        for f in version.files_for_key(0, user_key) {
            if f.number <= file_number {
                continue;
            }
            match self.open_table_locked(&mut inner, &f) {
                Ok(table) => {
                    if table.primary_may_contain(user_key) {
                        return true;
                    }
                }
                Err(_) => return true,
            }
        }
        false
    }

    /// Type and sequence of the newest entry for `user_key` anywhere in
    /// the store (reads data blocks like a GET, but stops at the first
    /// entry found). Used to confirm `GetLite` positives exactly.
    pub fn newest_meta(&self, user_key: &[u8]) -> Result<Option<(ValueType, u64)>> {
        let mut newest = None;
        self.fold_key_sources(user_key, |_, entries| {
            if let Some((vtype, _, seq)) = entries.first() {
                newest = Some((*vtype, *seq));
            }
            ControlFlow::Break(())
        })?;
        Ok(newest)
    }

    /// Newest memtable entry for `user_key` (type and sequence), if any —
    /// used to validate candidates found by memtable-side secondary
    /// indexes.
    pub fn mem_newest(&self, user_key: &[u8]) -> Option<(ValueType, u64)> {
        let inner = self.inner.lock();
        let snapshot = inner.versions.last_sequence;
        let newest = inner
            .mem
            .entries_for(user_key, snapshot)
            .next()
            .map(|(t, _, s)| (t, s));
        newest
    }

    /// Snapshot of the memtable as sorted (internal key, value) pairs.
    pub fn mem_snapshot(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let inner = self.inner.lock();
        let mut it = inner.mem.iter();
        it.seek_to_first();
        let mut out = Vec::with_capacity(inner.mem.len());
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        out
    }

    /// One iterator per source (memtable, each L0 file newest-first, each
    /// deeper level), in newest-to-oldest order — the paper's stand-alone
    /// indexes scan "level by level".
    pub fn source_iterators(&self) -> Result<Vec<(KeySource, Box<dyn DbIterator>)>> {
        let mut inner = self.inner.lock();
        let mut out: Vec<(KeySource, Box<dyn DbIterator>)> = Vec::new();
        out.push((
            KeySource::Mem,
            Box::new(VecIterator::new({
                let mut it = inner.mem.iter();
                it.seek_to_first();
                let mut v = Vec::with_capacity(inner.mem.len());
                while it.valid() {
                    v.push((it.key().to_vec(), it.value().to_vec()));
                    it.next();
                }
                v
            })),
        ));
        let version = inner.versions.current();
        for f in &version.files[0] {
            let table = self.open_table_locked(&mut inner, f)?;
            out.push((
                KeySource::L0File(f.number),
                Box::new(table.iter(ReadPurpose::Query)),
            ));
        }
        for level in 1..version.num_levels() {
            if version.files[level].is_empty() {
                continue;
            }
            // Levels ≥ 1 are sorted and disjoint: a concatenating iterator
            // binary-searches the file list on seek, touching one file per
            // level (the paper's per-level cost model).
            let mut tables = Vec::with_capacity(version.files[level].len());
            let mut largests = Vec::with_capacity(version.files[level].len());
            for f in &version.files[level] {
                tables.push(self.open_table_locked(&mut inner, f)?);
                largests.push(f.largest.clone());
            }
            out.push((
                KeySource::Level(level),
                Box::new(crate::table::ConcatIter::new(
                    tables,
                    largests,
                    ReadPurpose::Query,
                )),
            ));
        }
        Ok(out)
    }

    /// A resolved iterator over the whole database: yields each live user
    /// key's newest value (tombstones skipped, merge operands folded).
    pub fn resolved_iter(&self) -> Result<ResolvedIter> {
        let sources = self.source_iterators()?;
        let children: Vec<Box<dyn DbIterator>> =
            sources.into_iter().map(|(_, it)| it).collect();
        Ok(ResolvedIter {
            it: MergingIterator::new(children),
            merge_op: self.opts.merge_operator.clone(),
            positioned: false,
        })
    }
}

/// A pinned snapshot (see [`Db::pin_snapshot`]). Dropping it unpins.
pub struct SnapshotHandle {
    seq: u64,
    registry: Arc<Mutex<std::collections::BTreeMap<u64, usize>>>,
}

impl SnapshotHandle {
    /// The pinned sequence number; pass to [`Db::get_at`] or
    /// [`Db::fold_key_sources_at`].
    pub fn sequence(&self) -> u64 {
        self.seq
    }
}

impl Drop for SnapshotHandle {
    fn drop(&mut self) {
        let mut reg = self.registry.lock();
        if let Some(count) = reg.get_mut(&self.seq) {
            *count -= 1;
            if *count == 0 {
                reg.remove(&self.seq);
            }
        }
    }
}

fn flush_memtable_impl(
    opts: &DbOptions,
    env: &Arc<dyn Env>,
    stats: &Arc<IoStats>,
    name: &str,
    versions: &mut VersionSet,
    mem: &mut MemTable,
    new_log_number: Option<u64>,
) -> Result<()> {
    if mem.is_empty() {
        return Ok(());
    }
    let number = versions.new_file_number();
    let file = env.new_writable(&table_file_name(name, number))?;
    let mut builder = TableBuilder::new(opts, file);
    let mut it = mem.iter();
    it.seek_to_first();
    while it.valid() {
        builder.add(it.key(), it.value())?;
        it.next();
    }
    let meta = builder.finish()?;
    IoStats::add(&stats.flush_bytes_written, meta.file_size);
    IoStats::add(&stats.flush_blocks_written, meta.num_blocks);
    IoStats::add(&stats.flushes, 1);
    let mut edit = VersionEdit {
        log_number: new_log_number,
        ..Default::default()
    };
    edit.add_file(
        0,
        FileMetaData {
            number,
            file_size: meta.file_size,
            num_entries: meta.num_entries,
            num_blocks: meta.num_blocks,
            smallest: meta.smallest,
            largest: meta.largest,
            sec_file_zones: meta.sec_file_zones,
        },
    );
    versions.log_and_apply(edit)?;
    *mem = MemTable::new();
    Ok(())
}

/// One live entry from a [`ResolvedIter`]: `(user_key, seq, value)`.
pub type ResolvedEntry = (Vec<u8>, u64, Vec<u8>);

/// Iterator yielding `(user_key, seq, value)` for each live key.
pub struct ResolvedIter {
    it: MergingIterator,
    merge_op: Option<MergeOperatorRef>,
    positioned: bool,
}

impl ResolvedIter {
    /// Position at the first live entry ≥ `user_key`.
    pub fn seek(&mut self, user_key: &[u8]) {
        self.it
            .seek(&InternalKey::for_seek(user_key, ikey::MAX_SEQUENCE).0);
        self.positioned = true;
    }

    /// Position at the first live entry.
    pub fn seek_to_first(&mut self) {
        self.it.seek_to_first();
        self.positioned = true;
    }

    /// The next live `(user_key, newest_seq, value)`.
    pub fn next_entry(&mut self) -> Result<Option<ResolvedEntry>> {
        assert!(self.positioned, "seek before iterating");
        while self.it.valid() {
            let (user_key, newest_seq, newest_type) =
                ikey::parse_internal_key(self.it.key())?;
            let user_key = user_key.to_vec();

            match newest_type {
                ValueType::Value => {
                    let value = self.it.value().to_vec();
                    self.skip_rest_of_key(&user_key)?;
                    return Ok(Some((user_key, newest_seq, value)));
                }
                ValueType::Deletion => {
                    self.skip_rest_of_key(&user_key)?;
                    continue;
                }
                ValueType::Merge => {
                    // Collect operands down to a base or the end of the run.
                    let mut operands: Vec<Vec<u8>> = vec![self.it.value().to_vec()];
                    let mut base: Option<Vec<u8>> = None;
                    self.it.next();
                    while self.it.valid() {
                        let (uk, _seq, vt) = ikey::parse_internal_key(self.it.key())?;
                        if uk != user_key.as_slice() {
                            break;
                        }
                        match vt {
                            ValueType::Merge => operands.push(self.it.value().to_vec()),
                            ValueType::Value => {
                                base = Some(self.it.value().to_vec());
                                self.it.next();
                                break;
                            }
                            ValueType::Deletion => {
                                self.it.next();
                                break;
                            }
                        }
                        self.it.next();
                    }
                    self.skip_rest_of_key(&user_key)?;
                    let Some(op) = &self.merge_op else {
                        return Err(Error::not_supported(
                            "merge entries present but no merge operator configured",
                        ));
                    };
                    operands.reverse();
                    let refs: Vec<&[u8]> = operands.iter().map(|o| o.as_slice()).collect();
                    let folded = op.full_merge(&user_key, base.as_deref(), &refs);
                    return Ok(Some((user_key, newest_seq, folded)));
                }
            }
        }
        Ok(None)
    }

    fn skip_rest_of_key(&mut self, user_key: &[u8]) -> Result<()> {
        // After handling the newest entry, discard older versions. For
        // Value/Deletion the iterator still sits on the handled entry.
        if self.it.valid() {
            let (uk, _, _) = ikey::parse_internal_key(self.it.key())?;
            if uk != user_key {
                return Ok(());
            }
        }
        while self.it.valid() {
            let (uk, _, _) = ikey::parse_internal_key(self.it.key())?;
            if uk != user_key {
                break;
            }
            self.it.next();
        }
        Ok(())
    }
}
