//! A sharded-free LRU cache.
//!
//! Used for the table cache (open SSTable readers — LevelDB's
//! `max_open_files`) and, when configured, as a block cache that stands in
//! for the OS buffer cache in the paper's Mixed-workload experiments
//! (Figure 12's inflection point is a buffer-cache effect).
//!
//! Implementation: `HashMap` keyed lookups over an intrusive doubly-linked
//! list held in a slab of nodes (index links, no unsafe).

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    charge: usize,
    prev: usize,
    next: usize,
}

/// A capacity-bounded LRU cache.
///
/// Capacity is expressed in *charge units* (bytes for block caches, entry
/// count for table caches — callers pick the unit via the `charge` argument
/// to [`LruCache::insert`]).
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<Node<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    used: usize,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// New cache with the given total charge capacity.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            used: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Total charge of cached entries.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Fetch a value, marking it most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(self.slab[idx].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching recency or hit counters.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map.get(key).map(|&idx| &self.slab[idx].value)
    }

    /// Insert (or replace) an entry with the given charge, evicting LRU
    /// entries as needed. Entries larger than the whole capacity are not
    /// cached.
    pub fn insert(&mut self, key: K, value: V, charge: usize) {
        if charge > self.capacity {
            self.remove(&key);
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.used = self.used - self.slab[idx].charge + charge;
            self.slab[idx].value = value;
            self.slab[idx].charge = charge;
            self.detach(idx);
            self.attach_front(idx);
        } else {
            let node = Node {
                key: key.clone(),
                value,
                charge,
                prev: NIL,
                next: NIL,
            };
            let idx = match self.free.pop() {
                Some(i) => {
                    self.slab[i] = node;
                    i
                }
                None => {
                    self.slab.push(node);
                    self.slab.len() - 1
                }
            };
            self.map.insert(key, idx);
            self.attach_front(idx);
            self.used += charge;
        }
        self.evict_to_fit();
    }

    fn evict_to_fit(&mut self) {
        while self.used > self.capacity && self.tail != NIL {
            let victim = self.tail;
            self.detach(victim);
            let k = self.slab[victim].key.clone();
            self.used -= self.slab[victim].charge;
            self.map.remove(&k);
            self.free.push(victim);
        }
    }

    /// Remove an entry if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.detach(idx);
        self.used -= self.slab[idx].charge;
        self.free.push(idx);
        Some(self.slab[idx].value.clone())
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get() {
        let mut c: LruCache<u32, String> = LruCache::new(100);
        c.insert(1, "one".into(), 10);
        c.insert(2, "two".into(), 10);
        assert_eq!(c.get(&1), Some("one".into()));
        assert_eq!(c.get(&3), None);
        assert_eq!(c.stats(), (1, 1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.used(), 20);
    }

    #[test]
    fn evicts_lru_order() {
        let mut c: LruCache<u32, u32> = LruCache::new(3);
        c.insert(1, 10, 1);
        c.insert(2, 20, 1);
        c.insert(3, 30, 1);
        // Touch 1 so 2 becomes LRU.
        c.get(&1);
        c.insert(4, 40, 1);
        assert_eq!(c.get(&2), None, "2 was LRU and must be evicted");
        assert!(c.get(&1).is_some());
        assert!(c.get(&3).is_some());
        assert!(c.get(&4).is_some());
    }

    #[test]
    fn charge_based_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 1, 60);
        c.insert(2, 2, 60); // 120 > 100 → evict 1
        assert_eq!(c.get(&1), None);
        assert_eq!(c.get(&2), Some(2));
        assert_eq!(c.used(), 60);
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c: LruCache<u32, u32> = LruCache::new(10);
        c.insert(1, 1, 11);
        assert_eq!(c.get(&1), None);
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn replace_updates_charge() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 1, 30);
        c.insert(1, 2, 50);
        assert_eq!(c.used(), 50);
        assert_eq!(c.get(&1), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut c: LruCache<u32, u32> = LruCache::new(100);
        c.insert(1, 1, 10);
        c.insert(2, 2, 10);
        assert_eq!(c.remove(&1), Some(1));
        assert_eq!(c.remove(&1), None);
        assert_eq!(c.used(), 10);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn slab_reuse_after_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        for i in 0..100 {
            c.insert(i, i, 1);
        }
        assert!(c.slab.len() <= 4, "slab should recycle nodes");
        assert_eq!(c.len(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_capacity_invariant(ops in proptest::collection::vec(
            (0u8..20, 1usize..8), 1..200))
        {
            let mut c: LruCache<u8, usize> = LruCache::new(16);
            for (k, charge) in ops {
                c.insert(k, charge, charge);
                prop_assert!(c.used() <= 16);
                // Recompute used from the map for consistency.
                let sum: usize = c.map.values().map(|&i| c.slab[i].charge).sum();
                prop_assert_eq!(sum, c.used());
            }
        }

        #[test]
        fn prop_get_returns_last_insert(ops in proptest::collection::vec(
            (0u8..5, 0u32..100), 1..100))
        {
            // Capacity large enough that nothing evicts: cache must behave
            // like a map.
            let mut c: LruCache<u8, u32> = LruCache::new(1_000_000);
            let mut model = std::collections::HashMap::new();
            for (k, v) in ops {
                c.insert(k, v, 1);
                model.insert(k, v);
            }
            for (k, v) in model {
                prop_assert_eq!(c.get(&k), Some(v));
            }
        }
    }
}
