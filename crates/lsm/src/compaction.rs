//! Compaction policy: what to compact and how key runs resolve.
//!
//! Leveled compaction as in LevelDB: L0 triggers on file count, deeper
//! levels on total bytes with 10× targets; the input file within a level is
//! chosen round-robin by key range (the paper leans on this: composite keys
//! for one secondary key may compact at different times, so cross-level
//! time-ordering cannot be assumed for the Composite index).
//!
//! [`resolve_key_run`] is the pure dropping/merging policy applied to all
//! entries of one user key (newest first) during a compaction — including
//! the merge-operand folding used by Lazy posting lists.

use crate::ikey::{compare_internal, ValueType};
use crate::merge::MergeOperator;
use crate::options::DbOptions;
use crate::version::{FileMetaData, Version};
use std::sync::Arc;

/// A chosen compaction: files from `level` merging into `level + 1`.
#[derive(Debug)]
pub struct CompactionJob {
    /// Input level.
    pub level: usize,
    /// Files taken from `level`.
    pub inputs_lo: Vec<Arc<FileMetaData>>,
    /// Overlapping files taken from `level + 1`.
    pub inputs_hi: Vec<Arc<FileMetaData>>,
}

impl CompactionJob {
    /// Output level.
    pub fn output_level(&self) -> usize {
        self.level + 1
    }

    /// All input files.
    pub fn all_inputs(&self) -> impl Iterator<Item = &Arc<FileMetaData>> {
        self.inputs_lo.iter().chain(self.inputs_hi.iter())
    }

    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.all_inputs().map(|f| f.file_size).sum()
    }
}

/// Compaction pressure of each level; the level with the highest score ≥ 1
/// compacts first.
pub fn level_scores(opts: &DbOptions, version: &Version) -> Vec<f64> {
    let mut scores = vec![0.0; version.num_levels()];
    if !scores.is_empty() {
        scores[0] = version.files[0].len() as f64 / opts.l0_compaction_trigger as f64;
    }
    // The last level has nowhere to compact into.
    #[allow(clippy::needless_range_loop)]
    for level in 1..version.num_levels().saturating_sub(1) {
        scores[level] = version.level_bytes(level) as f64 / opts.max_bytes_for_level(level) as f64;
    }
    scores
}

/// Pick the next compaction, if any level is over threshold.
///
/// `compact_pointer[level]` is the largest key of the last compaction at
/// that level; the next pick is the first file starting after it
/// (round-robin, wrapping).
pub fn pick_compaction(
    opts: &DbOptions,
    version: &Version,
    compact_pointer: &[Vec<u8>],
) -> Option<CompactionJob> {
    let scores = level_scores(opts, version);
    let (level, score) = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))?;
    if *score < 1.0 {
        return None;
    }

    let inputs_lo: Vec<Arc<FileMetaData>> = if level == 0 {
        // Take every L0 file: they overlap each other, and merging them all
        // keeps the policy simple and deterministic.
        version.files[0].clone()
    } else {
        let files = &version.files[level];
        if files.is_empty() {
            return None;
        }
        let ptr = compact_pointer
            .get(level)
            .map(|p| p.as_slice())
            .unwrap_or(b"");
        let next = files
            .iter()
            .find(|f| ptr.is_empty() || compare_internal(&f.largest, ptr).is_gt())
            .or_else(|| files.first())?;
        vec![Arc::clone(next)]
    };
    if inputs_lo.is_empty() {
        return None;
    }

    // Key range of the lower inputs (user-key bounds).
    let lo = inputs_lo
        .iter()
        .map(|f| crate::ikey::user_key(&f.smallest).to_vec())
        .min()?;
    let hi = inputs_lo
        .iter()
        .map(|f| crate::ikey::user_key(&f.largest).to_vec())
        .max()?;

    let inputs_hi = version.overlapping_files(level + 1, &lo, &hi);
    Some(CompactionJob {
        level,
        inputs_lo,
        inputs_hi,
    })
}

/// One entry of a user-key run: `(type, seq, value)`.
pub type RunEntry = (ValueType, u64, Vec<u8>);

/// Resolve all compaction-input entries of one user key (newest first) into
/// the entries to write out.
///
/// * A `Value` shadows everything older.
/// * A `Deletion` shadows everything older; the tombstone itself survives
///   unless `is_base_level` (no older data for this key exists below the
///   output level).
/// * A run of `Merge` operands folds via the operator: onto a base `Value`,
///   over a `Deletion` (base = none), or — with no base among the inputs —
///   stays a single combined operand unless `is_base_level`, in which case
///   it finalizes to a `Value`.
pub fn resolve_key_run(
    key: &[u8],
    entries: &[RunEntry],
    is_base_level: bool,
    merge_op: Option<&dyn MergeOperator>,
) -> Vec<RunEntry> {
    resolve_key_run_with_snapshot(key, entries, is_base_level, merge_op, None)
}

/// [`resolve_key_run`] honouring a pinned-snapshot boundary.
///
/// Entries with `seq ≤ boundary` are preserved verbatim so every pinned
/// snapshot (all of which are ≤ boundary) continues to read its exact
/// historical state; only the prefix newer than the boundary is resolved,
/// and it may not consume a base below the boundary (dangling merge runs
/// stay operands).
pub fn resolve_key_run_with_snapshot(
    key: &[u8],
    entries: &[RunEntry],
    is_base_level: bool,
    merge_op: Option<&dyn MergeOperator>,
    boundary: Option<u64>,
) -> Vec<RunEntry> {
    let Some(boundary) = boundary else {
        return resolve_key_run_inner(key, entries, is_base_level, merge_op);
    };
    let split = entries.partition_point(|e| e.1 > boundary);
    let (newer, preserved) = entries.split_at(split);
    if newer.is_empty() {
        return preserved.to_vec();
    }
    // Resolve the prefix as if more data always exists below (it does:
    // the preserved suffix or deeper levels) so tombstones and dangling
    // merge runs are kept/partial-merged, never finalized.
    let mut out = resolve_key_run_inner(key, newer, false, merge_op);
    out.extend_from_slice(preserved);
    out
}

fn resolve_key_run_inner(
    key: &[u8],
    entries: &[RunEntry],
    is_base_level: bool,
    merge_op: Option<&dyn MergeOperator>,
) -> Vec<RunEntry> {
    let Some((newest_type, newest_seq, newest_value)) = entries.first().cloned() else {
        return Vec::new();
    };
    match newest_type {
        ValueType::Value => vec![(ValueType::Value, newest_seq, newest_value)],
        ValueType::Deletion => {
            if is_base_level {
                Vec::new()
            } else {
                vec![(ValueType::Deletion, newest_seq, Vec::new())]
            }
        }
        ValueType::Merge => {
            let mut operands: Vec<&[u8]> = Vec::new();
            let mut base: Option<&RunEntry> = None;
            for e in entries {
                match e.0 {
                    ValueType::Merge => operands.push(&e.2),
                    _ => {
                        base = Some(e);
                        break;
                    }
                }
            }
            operands.reverse(); // oldest first
            let Some(op) = merge_op else {
                // No operator configured: keep the newest operand only
                // (degenerate but safe).
                return vec![(ValueType::Merge, newest_seq, newest_value)];
            };
            match base {
                Some((ValueType::Value, _, v)) => {
                    vec![(
                        ValueType::Value,
                        newest_seq,
                        op.full_merge(key, Some(v), &operands),
                    )]
                }
                Some((ValueType::Deletion, _, _)) => {
                    // Operands applied over a delete: the folded value
                    // itself shadows anything older, so the tombstone is
                    // consumed.
                    vec![(
                        ValueType::Value,
                        newest_seq,
                        op.full_merge(key, None, &operands),
                    )]
                }
                _ => {
                    if is_base_level {
                        vec![(
                            ValueType::Value,
                            newest_seq,
                            op.full_merge(key, None, &operands),
                        )]
                    } else {
                        vec![(
                            ValueType::Merge,
                            newest_seq,
                            op.partial_merge(key, &operands, false),
                        )]
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ikey::{InternalKey, ValueType};
    use crate::merge::ConcatMerge;

    fn meta(number: u64, lo: &[u8], hi: &[u8], size: u64) -> Arc<FileMetaData> {
        Arc::new(FileMetaData {
            number,
            file_size: size,
            num_entries: 1,
            num_blocks: 1,
            smallest: InternalKey::new(lo, 100, ValueType::Value).0,
            largest: InternalKey::new(hi, 1, ValueType::Value).0,
            sec_file_zones: Vec::new(),
        })
    }

    fn opts() -> DbOptions {
        DbOptions {
            l0_compaction_trigger: 4,
            base_level_bytes: 1000,
            level_size_multiplier: 10,
            num_levels: 4,
            ..DbOptions::small()
        }
    }

    #[test]
    fn no_compaction_when_under_thresholds() {
        let mut v = Version::new(4);
        v.files[0] = vec![meta(1, b"a", b"b", 100)];
        assert!(pick_compaction(&opts(), &v, &vec![Vec::new(); 4]).is_none());
    }

    #[test]
    fn l0_trigger_takes_all_l0_files() {
        let mut v = Version::new(4);
        v.files[0] = (1..=4).map(|i| meta(i, b"a", b"m", 100)).collect();
        v.files[1] = vec![meta(9, b"a", b"c", 100), meta(10, b"x", b"z", 100)];
        let job = pick_compaction(&opts(), &v, &vec![Vec::new(); 4]).unwrap();
        assert_eq!(job.level, 0);
        assert_eq!(job.inputs_lo.len(), 4);
        // Only the overlapping L1 file joins.
        assert_eq!(job.inputs_hi.len(), 1);
        assert_eq!(job.inputs_hi[0].number, 9);
        assert_eq!(job.output_level(), 1);
        assert_eq!(job.input_bytes(), 500);
    }

    #[test]
    fn size_trigger_on_l1_round_robin() {
        let mut v = Version::new(4);
        v.files[1] = vec![
            meta(1, b"a", b"f", 600),
            meta(2, b"g", b"p", 600),
            meta(3, b"q", b"z", 600),
        ];
        // 1800 bytes > 1000 target → compact L1.
        let mut ptr: Vec<Vec<u8>> = vec![Vec::new(); 4];
        let job = pick_compaction(&opts(), &v, &ptr).unwrap();
        assert_eq!(job.level, 1);
        assert_eq!(job.inputs_lo[0].number, 1);

        // After compacting file 1, the pointer advances past "f".
        ptr[1] = InternalKey::new(b"f", 1, ValueType::Value).0;
        let job = pick_compaction(&opts(), &v, &ptr).unwrap();
        assert_eq!(job.inputs_lo[0].number, 2);

        // Pointer past everything wraps to the first file.
        ptr[1] = InternalKey::new(b"zz", 1, ValueType::Value).0;
        let job = pick_compaction(&opts(), &v, &ptr).unwrap();
        assert_eq!(job.inputs_lo[0].number, 1);
    }

    #[test]
    fn last_level_never_scored() {
        let mut v = Version::new(3);
        v.files[2] = vec![meta(1, b"a", b"z", u64::MAX / 2)];
        assert!(pick_compaction(&opts(), &v, &vec![Vec::new(); 3]).is_none());
    }

    // ---- resolve_key_run ----

    fn val(seq: u64, v: &[u8]) -> RunEntry {
        (ValueType::Value, seq, v.to_vec())
    }
    fn del(seq: u64) -> RunEntry {
        (ValueType::Deletion, seq, Vec::new())
    }
    fn mrg(seq: u64, v: &[u8]) -> RunEntry {
        (ValueType::Merge, seq, v.to_vec())
    }

    #[test]
    fn newest_value_shadows_all() {
        let out = resolve_key_run(b"k", &[val(9, b"new"), val(5, b"old"), del(2)], false, None);
        assert_eq!(out, vec![val(9, b"new")]);
    }

    #[test]
    fn tombstone_kept_unless_base_level() {
        let run = [del(9), val(5, b"old")];
        assert_eq!(resolve_key_run(b"k", &run, false, None), vec![del(9)]);
        assert_eq!(resolve_key_run(b"k", &run, true, None), vec![]);
    }

    #[test]
    fn merge_onto_value_folds_to_value() {
        let m = ConcatMerge;
        let run = [mrg(9, b"c"), mrg(8, b"b"), val(5, b"a")];
        let out = resolve_key_run(b"k", &run, false, Some(&m));
        assert_eq!(out, vec![val(9, b"abc")]);
    }

    #[test]
    fn merge_over_delete_consumes_tombstone() {
        let m = ConcatMerge;
        let run = [mrg(9, b"y"), mrg(8, b"x"), del(5), val(2, b"dead")];
        let out = resolve_key_run(b"k", &run, false, Some(&m));
        assert_eq!(out, vec![val(9, b"xy")]);
    }

    #[test]
    fn dangling_merge_stays_operand_above_base_level() {
        let m = ConcatMerge;
        let run = [mrg(9, b"2"), mrg(4, b"1")];
        let out = resolve_key_run(b"k", &run, false, Some(&m));
        assert_eq!(out, vec![mrg(9, b"12")]);
        // At the base level it finalizes.
        let out = resolve_key_run(b"k", &run, true, Some(&m));
        assert_eq!(out, vec![val(9, b"12")]);
    }

    #[test]
    fn merge_without_operator_degrades_gracefully() {
        let run = [mrg(9, b"b"), mrg(4, b"a")];
        let out = resolve_key_run(b"k", &run, false, None);
        assert_eq!(out, vec![mrg(9, b"b")]);
    }

    #[test]
    fn empty_run() {
        assert!(resolve_key_run(b"k", &[], true, None).is_empty());
    }
}
