//! RocksDB-style merge operator hook.
//!
//! The Lazy stand-alone index writes posting-list *fragments*:
//! `PUT(a_i, [k])` appends a new operand instead of read-modify-writing the
//! full list. Fragments for the same secondary key accumulate across levels
//! and are folded (a) at query time by `Db::get`, and (b) physically during
//! compaction — exactly the paper's "the old postings list of u is merged
//! with (u,{t4}) later, during the periodic compaction phase".

use std::sync::Arc;

/// Folds merge operands for a table.
///
/// Operands are always presented **oldest first**. An associative operator
/// (like posting-list union) may be folded incrementally at any level.
pub trait MergeOperator: Send + Sync {
    /// Fold `operands` on top of an optional base value into a full value.
    ///
    /// Called by `get` after collecting every visible operand, and by
    /// compaction when operands meet a base `Value` record.
    fn full_merge(&self, key: &[u8], base: Option<&[u8]>, operands: &[&[u8]]) -> Vec<u8>;

    /// Combine adjacent operands into a single replacement operand during
    /// compaction (no base value in sight). `at_bottom` is true when no
    /// older data for `key` can exist below the compaction output — the
    /// operator may then discard deletion markers it carries.
    fn partial_merge(&self, key: &[u8], operands: &[&[u8]], at_bottom: bool) -> Vec<u8>;
}

/// A merge operator that concatenates operands byte-wise (test helper and
/// simplest useful semantics).
#[derive(Debug, Default, Clone, Copy)]
pub struct ConcatMerge;

impl MergeOperator for ConcatMerge {
    fn full_merge(&self, _key: &[u8], base: Option<&[u8]>, operands: &[&[u8]]) -> Vec<u8> {
        let mut out = base.map(|b| b.to_vec()).unwrap_or_default();
        for op in operands {
            out.extend_from_slice(op);
        }
        out
    }

    fn partial_merge(&self, _key: &[u8], operands: &[&[u8]], _at_bottom: bool) -> Vec<u8> {
        let mut out = Vec::new();
        for op in operands {
            out.extend_from_slice(op);
        }
        out
    }
}

/// Shared handle to a merge operator.
pub type MergeOperatorRef = Arc<dyn MergeOperator>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_full_merge() {
        let m = ConcatMerge;
        assert_eq!(m.full_merge(b"k", Some(b"a"), &[b"b", b"c"]), b"abc");
        assert_eq!(m.full_merge(b"k", None, &[b"x"]), b"x");
        assert_eq!(m.full_merge(b"k", None, &[]), b"");
    }

    #[test]
    fn concat_partial_merge() {
        let m = ConcatMerge;
        assert_eq!(m.partial_merge(b"k", &[b"1", b"2", b"3"], false), b"123");
        assert_eq!(m.partial_merge(b"k", &[], true), b"");
    }
}
