//! The in-memory write buffer: an insertion-only skiplist over internal
//! keys.
//!
//! Mirrors LevelDB's `MemTable`: entries are never deleted or overwritten —
//! an update is simply a new entry at a higher sequence number, a delete is
//! a tombstone entry. The skiplist is index-based (nodes live in a `Vec`
//! arena and link by `u32` index) so it is safe Rust with no unsafe pointer
//! juggling, while preserving the O(log n) insert/seek of the classic
//! structure.

use crate::ikey::{compare_internal, pack_seq_type, parse_internal_key, ValueType};
use crate::iterator::DbIterator;
use ldbpp_common::coding::put_fixed64;
use ldbpp_common::Result;
use parking_lot::RwLock;
use std::cmp::Ordering;
use std::sync::Arc;

const MAX_HEIGHT: usize = 12;
const BRANCHING: u32 = 4;

struct Node {
    /// Encoded internal key.
    key: Vec<u8>,
    /// Record value (empty for tombstones).
    value: Vec<u8>,
    /// next[i] = arena index of the next node at level i (u32::MAX = nil).
    next: [u32; MAX_HEIGHT],
}

const NIL: u32 = u32::MAX;

/// An insertion-only skiplist memtable.
pub struct MemTable {
    arena: Vec<Node>,
    /// Index of the head sentinel (always 0).
    max_height: usize,
    /// Approximate memory usage in bytes.
    approx_bytes: usize,
    /// Cheap xorshift state for randomized heights (deterministic seed so
    /// runs are reproducible).
    rng_state: u64,
    /// Number of real entries.
    len: usize,
    /// Vector-clock domain of the owning `Db` (0 = unstamped); lets the
    /// snapshot iterators report visible entries to [`crate::vclock`].
    #[cfg(feature = "check")]
    vc_domain: u64,
}

impl Default for MemTable {
    fn default() -> Self {
        Self::new()
    }
}

impl MemTable {
    /// Create an empty memtable.
    pub fn new() -> MemTable {
        let head = Node {
            key: Vec::new(),
            value: Vec::new(),
            next: [NIL; MAX_HEIGHT],
        };
        MemTable {
            arena: vec![head],
            max_height: 1,
            approx_bytes: 0,
            rng_state: 0x9e37_79b9_7f4a_7c15,
            len: 0,
            #[cfg(feature = "check")]
            vc_domain: 0,
        }
    }

    /// Stamp this memtable with its owning `Db`'s vector-clock domain
    /// (check builds only; see [`crate::vclock`]).
    #[cfg(feature = "check")]
    pub fn set_vc_domain(&mut self, domain: u64) {
        self.vc_domain = domain;
    }

    /// Number of entries (including tombstones and shadowed versions).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries have been added.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.approx_bytes
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*
        let mut h = 1;
        loop {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            if h < MAX_HEIGHT && self.rng_state.is_multiple_of(BRANCHING as u64) {
                h += 1;
            } else {
                break;
            }
        }
        h
    }

    /// Insert an entry. `seq` must be greater than any previously inserted
    /// sequence number for correct shadowing semantics (the write path
    /// guarantees this).
    pub fn add(&mut self, seq: u64, vtype: ValueType, user_key: &[u8], value: &[u8]) {
        let mut ikey = Vec::with_capacity(user_key.len() + 8);
        ikey.extend_from_slice(user_key);
        put_fixed64(&mut ikey, pack_seq_type(seq, vtype));
        self.approx_bytes += ikey.len() + value.len() + std::mem::size_of::<Node>();
        self.len += 1;

        let height = self.random_height();
        if height > self.max_height {
            self.max_height = height;
        }

        // Find the insertion point at each level.
        let mut prev = [0u32; MAX_HEIGHT];
        let mut x = 0u32; // head
        for level in (0..self.max_height).rev() {
            loop {
                let nxt = self.arena[x as usize].next[level];
                if nxt != NIL
                    && compare_internal(&self.arena[nxt as usize].key, &ikey) == Ordering::Less
                {
                    x = nxt;
                } else {
                    break;
                }
            }
            prev[level] = x;
        }

        let new_idx = self.arena.len() as u32;
        let mut node = Node {
            key: ikey,
            value: value.to_vec(),
            next: [NIL; MAX_HEIGHT],
        };
        for (level, p) in prev.iter().enumerate().take(height) {
            node.next[level] = self.arena[*p as usize].next[level];
        }
        self.arena.push(node);
        for (level, p) in prev.iter().enumerate().take(height) {
            self.arena[*p as usize].next[level] = new_idx;
        }
    }

    /// Index of the first node whose key is >= `ikey` (NIL if none).
    fn find_greater_or_equal(&self, ikey: &[u8]) -> u32 {
        let mut x = 0u32;
        let mut level = self.max_height - 1;
        loop {
            let nxt = self.arena[x as usize].next[level];
            if nxt != NIL && compare_internal(&self.arena[nxt as usize].key, ikey) == Ordering::Less
            {
                x = nxt;
            } else if level == 0 {
                return nxt;
            } else {
                level -= 1;
            }
        }
    }

    /// Look up the newest entry for `user_key` visible at `snapshot_seq`.
    ///
    /// Returns `None` if the key has no entry at all;
    /// `Some((vtype, value, seq))` for the newest visible entry (the caller
    /// interprets tombstones and merge operands).
    pub fn get<'a>(
        &'a self,
        user_key: &'a [u8],
        snapshot_seq: u64,
    ) -> Option<(ValueType, &'a [u8], u64)> {
        let mut hits = self.entries_for(user_key, snapshot_seq);
        hits.next()
    }

    /// All entries for `user_key` visible at `snapshot_seq`, newest first.
    ///
    /// Needed for merge-operand collection: a key may have several live
    /// merge records in the same memtable.
    pub fn entries_for<'a>(
        &'a self,
        user_key: &'a [u8],
        snapshot_seq: u64,
    ) -> impl Iterator<Item = (ValueType, &'a [u8], u64)> + 'a {
        let mut probe = Vec::with_capacity(user_key.len() + 8);
        probe.extend_from_slice(user_key);
        put_fixed64(&mut probe, pack_seq_type(snapshot_seq, ValueType::Merge));
        let mut idx = self.find_greater_or_equal(&probe);
        std::iter::from_fn(move || {
            while idx != NIL {
                let node = &self.arena[idx as usize];
                let (uk, seq, vtype) = parse_internal_key(&node.key).ok()?;
                if uk != user_key {
                    return None;
                }
                idx = node.next[0];
                if seq <= snapshot_seq {
                    #[cfg(feature = "check")]
                    crate::vclock::observe(self.vc_domain, seq, snapshot_seq);
                    return Some((vtype, node.value.as_slice(), seq));
                }
            }
            None
        })
    }

    /// An iterator over all entries in internal-key order.
    pub fn iter(&self) -> MemIter<'_> {
        MemIter {
            mem: self,
            idx: NIL,
        }
    }
}

/// Iterator over memtable entries in internal-key order.
pub struct MemIter<'a> {
    mem: &'a MemTable,
    idx: u32,
}

impl<'a> MemIter<'a> {
    /// Position at the first entry.
    pub fn seek_to_first(&mut self) {
        self.idx = self.mem.arena[0].next[0];
    }

    /// Position at the first entry with internal key >= `ikey`.
    pub fn seek(&mut self, ikey: &[u8]) {
        self.idx = self.mem.find_greater_or_equal(ikey);
    }

    /// Whether the iterator points at an entry.
    pub fn valid(&self) -> bool {
        self.idx != NIL
    }

    /// Advance to the next entry.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        self.idx = self.mem.arena[self.idx as usize].next[0];
    }

    /// The current encoded internal key.
    pub fn key(&self) -> &'a [u8] {
        &self.mem.arena[self.idx as usize].key
    }

    /// The current value.
    pub fn value(&self) -> &'a [u8] {
        &self.mem.arena[self.idx as usize].value
    }

    /// Parse the current entry into (user_key, seq, type, value).
    pub fn entry(&self) -> Result<(&'a [u8], u64, ValueType, &'a [u8])> {
        let (uk, seq, vt) = parse_internal_key(self.key())?;
        Ok((uk, seq, vt, self.value()))
    }
}

/// An owning, lazily-copying iterator over a memtable shared through its
/// `Arc<RwLock<_>>` latch.
///
/// This is the memtable leaf of the streaming read path: unlike the old
/// `copy_out` approach (clone every entry into a `Vec` up front), each
/// `seek`/`next` takes the read latch briefly, walks the skiplist, and
/// copies out only the entry it lands on — O(1) per visited entry, nothing
/// for entries the scan never reaches.
///
/// The skiplist arena is insertion-only (nodes are appended and link by
/// index, never moved or removed), so a node index stays valid across latch
/// release. Entries with a sequence number above `snapshot` are skipped,
/// pinning the iterator to the point-in-time view captured at construction
/// even if writers race in under `background_work`.
pub struct SnapshotMemIter {
    mem: Arc<RwLock<MemTable>>,
    /// Highest visible sequence number.
    snapshot: u64,
    idx: u32,
    key: Vec<u8>,
    value: Vec<u8>,
}

impl SnapshotMemIter {
    /// Iterate over `mem`, exposing only entries with seq ≤ `snapshot`.
    pub fn new(mem: Arc<RwLock<MemTable>>, snapshot: u64) -> SnapshotMemIter {
        SnapshotMemIter {
            mem,
            snapshot,
            idx: NIL,
            key: Vec::new(),
            value: Vec::new(),
        }
    }

    /// Skip entries newer than the snapshot, then copy the landing entry
    /// out so `key`/`value` stay readable after the latch drops.
    fn settle(&mut self, mem: &MemTable) {
        while self.idx != NIL {
            let node = &mem.arena[self.idx as usize];
            match parse_internal_key(&node.key) {
                Ok((_, seq, _)) if seq > self.snapshot => self.idx = node.next[0],
                Ok((_, _seq, _)) => {
                    #[cfg(feature = "check")]
                    crate::vclock::observe(mem.vc_domain, _seq, self.snapshot);
                    break;
                }
                Err(_) => {
                    // Corrupt internal key: invalidate rather than panic,
                    // matching the table iterators' error idiom.
                    self.idx = NIL;
                }
            }
        }
        if self.idx != NIL {
            let node = &mem.arena[self.idx as usize];
            self.key.clear();
            self.key.extend_from_slice(&node.key);
            self.value.clear();
            self.value.extend_from_slice(&node.value);
        }
    }
}

impl DbIterator for SnapshotMemIter {
    fn seek_to_first(&mut self) {
        let mem = self.mem.clone();
        let guard = mem.read();
        self.idx = guard.arena[0].next[0];
        self.settle(&guard);
    }

    fn seek(&mut self, target: &[u8]) {
        let mem = self.mem.clone();
        let guard = mem.read();
        self.idx = guard.find_greater_or_equal(target);
        self.settle(&guard);
    }

    fn valid(&self) -> bool {
        self.idx != NIL
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        let mem = self.mem.clone();
        let guard = mem.read();
        self.idx = guard.arena[self.idx as usize].next[0];
        self.settle(&guard);
    }

    fn key(&self) -> &[u8] {
        &self.key
    }

    fn value(&self) -> &[u8] {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn get_returns_newest_version() {
        let mut m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(2, ValueType::Value, b"k", b"v2");
        m.add(3, ValueType::Value, b"other", b"x");
        let (vt, v, seq) = m.get(b"k", u64::MAX >> 8).unwrap();
        assert_eq!((vt, v, seq), (ValueType::Value, &b"v2"[..], 2));
    }

    #[test]
    fn snapshot_visibility() {
        let mut m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(5, ValueType::Value, b"k", b"v5");
        let (_, v, _) = m.get(b"k", 4).unwrap();
        assert_eq!(v, b"v1");
        let (_, v, _) = m.get(b"k", 5).unwrap();
        assert_eq!(v, b"v5");
        assert!(m.get(b"k", 0).is_none());
    }

    #[test]
    fn tombstones_are_visible_entries() {
        let mut m = MemTable::new();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(2, ValueType::Deletion, b"k", b"");
        let (vt, _, _) = m.get(b"k", 100).unwrap();
        assert_eq!(vt, ValueType::Deletion);
    }

    #[test]
    fn entries_for_returns_all_newest_first() {
        let mut m = MemTable::new();
        m.add(1, ValueType::Merge, b"u1", b"[\"t1\"]");
        m.add(2, ValueType::Merge, b"u1", b"[\"t2\"]");
        m.add(3, ValueType::Merge, b"u2", b"[\"t3\"]");
        let seqs: Vec<u64> = m.entries_for(b"u1", 100).map(|(_, _, s)| s).collect();
        assert_eq!(seqs, vec![2, 1]);
    }

    #[test]
    fn iter_in_internal_key_order() {
        let mut m = MemTable::new();
        m.add(1, ValueType::Value, b"b", b"1");
        m.add(2, ValueType::Value, b"a", b"2");
        m.add(3, ValueType::Value, b"c", b"3");
        m.add(4, ValueType::Value, b"a", b"4");
        let mut it = m.iter();
        it.seek_to_first();
        let mut keys = Vec::new();
        while it.valid() {
            let (uk, seq, _, _) = it.entry().unwrap();
            keys.push((uk.to_vec(), seq));
            it.next();
        }
        // 'a' entries: seq 4 then 2 (newest first), then b, then c.
        assert_eq!(
            keys,
            vec![
                (b"a".to_vec(), 4),
                (b"a".to_vec(), 2),
                (b"b".to_vec(), 1),
                (b"c".to_vec(), 3),
            ]
        );
    }

    #[test]
    fn iter_seek() {
        let mut m = MemTable::new();
        for (i, k) in [b"apple", b"berry", b"cherr"].iter().enumerate() {
            m.add(i as u64 + 1, ValueType::Value, *k, b"v");
        }
        let mut it = m.iter();
        it.seek(crate::ikey::InternalKey::for_seek(b"b", u64::MAX >> 8).as_bytes());
        assert!(it.valid());
        assert_eq!(crate::ikey::user_key(it.key()), b"berry");
        it.seek(crate::ikey::InternalKey::for_seek(b"zzz", u64::MAX >> 8).as_bytes());
        assert!(!it.valid());
    }

    #[test]
    fn approximate_bytes_grows() {
        let mut m = MemTable::new();
        assert_eq!(m.approximate_bytes(), 0);
        m.add(1, ValueType::Value, b"key", &[0u8; 100]);
        assert!(m.approximate_bytes() >= 100);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_iteration_sorted_and_complete(
            keys in proptest::collection::vec("[a-f]{1,4}", 1..60)
        ) {
            let mut m = MemTable::new();
            for (i, k) in keys.iter().enumerate() {
                m.add(i as u64 + 1, ValueType::Value, k.as_bytes(), k.as_bytes());
            }
            let mut it = m.iter();
            it.seek_to_first();
            let mut seen = 0usize;
            let mut prev: Option<Vec<u8>> = None;
            while it.valid() {
                let cur = it.key().to_vec();
                if let Some(p) = &prev {
                    prop_assert!(compare_internal(p, &cur) == Ordering::Less);
                }
                prev = Some(cur);
                seen += 1;
                it.next();
            }
            prop_assert_eq!(seen, keys.len());
        }

        #[test]
        fn prop_get_matches_last_write(
            ops in proptest::collection::vec(("[a-c]", "[a-z]{0,6}"), 1..80)
        ) {
            let mut m = MemTable::new();
            let mut model = std::collections::HashMap::new();
            for (i, (k, v)) in ops.iter().enumerate() {
                m.add(i as u64 + 1, ValueType::Value, k.as_bytes(), v.as_bytes());
                model.insert(k.clone(), v.clone());
            }
            for (k, v) in &model {
                let (vt, got, _) = m.get(k.as_bytes(), u64::MAX >> 8).unwrap();
                prop_assert_eq!(vt, ValueType::Value);
                prop_assert_eq!(got, v.as_bytes());
            }
            prop_assert!(m.get(b"zzz-missing", u64::MAX >> 8).is_none());
        }
    }
}
