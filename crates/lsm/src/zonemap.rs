//! Zone maps: per-block and per-file min/max of attribute values.
//!
//! The Embedded Index keeps, for each indexed secondary attribute, the
//! minimum and maximum value occurring in every data block (block-level
//! zone maps) and in the whole SSTable (file-level zone maps, kept in the
//! version metadata so whole files can be pruned without opening them).
//! The paper notes its zone maps are finer-grained than AsterixDB's, which
//! only keeps file-level min/max.

use crate::attr::AttrValue;
use ldbpp_common::coding::{get_length_prefixed, get_varint32, put_length_prefixed, put_varint32};
use ldbpp_common::{Error, Result};

/// The min/max envelope of one attribute over one extent (block or file).
///
/// `None` means the extent contained no value for the attribute — such an
/// extent never overlaps any query.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ZoneEntry {
    /// Inclusive bounds, or `None` when the extent holds no values.
    pub bounds: Option<(AttrValue, AttrValue)>,
}

impl ZoneEntry {
    /// An empty envelope.
    pub fn new() -> ZoneEntry {
        ZoneEntry::default()
    }

    /// Extend the envelope with one value.
    pub fn update(&mut self, v: &AttrValue) {
        match &mut self.bounds {
            None => self.bounds = Some((v.clone(), v.clone())),
            Some((lo, hi)) => {
                if v < lo {
                    *lo = v.clone();
                }
                if v > hi {
                    *hi = v.clone();
                }
            }
        }
    }

    /// Merge another envelope into this one.
    pub fn merge(&mut self, other: &ZoneEntry) {
        if let Some((lo, hi)) = &other.bounds {
            self.update(lo);
            self.update(hi);
        }
    }

    /// May the extent contain `v`?
    pub fn may_contain(&self, v: &AttrValue) -> bool {
        match &self.bounds {
            None => false,
            Some((lo, hi)) => lo <= v && v <= hi,
        }
    }

    /// May the extent intersect the inclusive range `[a, b]`?
    pub fn overlaps(&self, a: &AttrValue, b: &AttrValue) -> bool {
        match &self.bounds {
            None => false,
            Some((lo, hi)) => !(hi < a || b < lo),
        }
    }

    /// Serialize: `0x00` for empty, `0x01 lo hi` otherwise (length-prefixed
    /// order-preserving encodings).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match &self.bounds {
            None => out.push(0),
            Some((lo, hi)) => {
                out.push(1);
                put_length_prefixed(out, &lo.encode());
                put_length_prefixed(out, &hi.encode());
            }
        }
    }

    /// Decode one entry, returning it and the bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(ZoneEntry, usize)> {
        match data.first() {
            Some(0) => Ok((ZoneEntry::new(), 1)),
            Some(1) => {
                let (lo, n1) = get_length_prefixed(&data[1..])?;
                let (hi, n2) = get_length_prefixed(&data[1 + n1..])?;
                let lo = AttrValue::decode(lo)?;
                let hi = AttrValue::decode(hi)?;
                if hi < lo {
                    return Err(Error::corruption("zone map lo > hi"));
                }
                Ok((
                    ZoneEntry {
                        bounds: Some((lo, hi)),
                    },
                    1 + n1 + n2,
                ))
            }
            _ => Err(Error::corruption("bad zone entry tag")),
        }
    }
}

/// Per-block zone maps for one attribute over one SSTable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ZoneMap {
    /// `blocks[i]` is the envelope of data block `i`.
    pub blocks: Vec<ZoneEntry>,
}

impl ZoneMap {
    /// New empty map.
    pub fn new() -> ZoneMap {
        ZoneMap::default()
    }

    /// Append the envelope of the next data block.
    pub fn push(&mut self, entry: ZoneEntry) {
        self.blocks.push(entry);
    }

    /// Number of blocks covered.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are covered.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The file-level envelope (union of all block envelopes).
    pub fn file_entry(&self) -> ZoneEntry {
        let mut e = ZoneEntry::new();
        for b in &self.blocks {
            e.merge(b);
        }
        e
    }

    /// Serialize the whole map.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_varint32(&mut out, self.blocks.len() as u32);
        for b in &self.blocks {
            b.encode(&mut out);
        }
        out
    }

    /// Parse a serialized map.
    pub fn decode(data: &[u8]) -> Result<ZoneMap> {
        let (count, mut pos) = get_varint32(data)?;
        let mut blocks = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let (e, n) = ZoneEntry::decode(&data[pos..])?;
            pos += n;
            blocks.push(e);
        }
        if pos != data.len() {
            return Err(Error::corruption("zone map trailing bytes"));
        }
        Ok(ZoneMap { blocks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn iv(i: i64) -> AttrValue {
        AttrValue::Int(i)
    }

    #[test]
    fn update_and_query() {
        let mut e = ZoneEntry::new();
        assert!(!e.may_contain(&iv(5)));
        e.update(&iv(10));
        e.update(&iv(3));
        e.update(&iv(7));
        assert!(e.may_contain(&iv(3)));
        assert!(e.may_contain(&iv(10)));
        assert!(e.may_contain(&iv(5)));
        assert!(!e.may_contain(&iv(2)));
        assert!(!e.may_contain(&iv(11)));
    }

    #[test]
    fn overlaps_edges() {
        let mut e = ZoneEntry::new();
        e.update(&iv(10));
        e.update(&iv(20));
        assert!(e.overlaps(&iv(20), &iv(30)));
        assert!(e.overlaps(&iv(0), &iv(10)));
        assert!(e.overlaps(&iv(12), &iv(15)));
        assert!(e.overlaps(&iv(0), &iv(100)));
        assert!(!e.overlaps(&iv(0), &iv(9)));
        assert!(!e.overlaps(&iv(21), &iv(30)));
        assert!(!ZoneEntry::new().overlaps(&iv(0), &iv(100)));
    }

    #[test]
    fn merge_envelopes() {
        let mut a = ZoneEntry::new();
        a.update(&iv(5));
        let mut b = ZoneEntry::new();
        b.update(&iv(1));
        b.update(&iv(9));
        a.merge(&b);
        assert_eq!(a.bounds, Some((iv(1), iv(9))));
        let mut c = ZoneEntry::new();
        c.merge(&ZoneEntry::new());
        assert_eq!(c.bounds, None);
    }

    #[test]
    fn string_zones() {
        let mut e = ZoneEntry::new();
        e.update(&AttrValue::str("banana"));
        e.update(&AttrValue::str("apple"));
        assert!(e.may_contain(&AttrValue::str("avocado")));
        assert!(!e.may_contain(&AttrValue::str("cherry")));
        // Integers sort below all strings.
        assert!(!e.may_contain(&iv(5)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m = ZoneMap::new();
        let mut e1 = ZoneEntry::new();
        e1.update(&iv(1));
        e1.update(&iv(5));
        m.push(e1);
        m.push(ZoneEntry::new());
        let mut e3 = ZoneEntry::new();
        e3.update(&AttrValue::str("x"));
        m.push(e3);
        let enc = m.encode();
        assert_eq!(ZoneMap::decode(&enc).unwrap(), m);
    }

    #[test]
    fn file_entry_unions_blocks() {
        let mut m = ZoneMap::new();
        let mut e1 = ZoneEntry::new();
        e1.update(&iv(10));
        m.push(e1);
        let mut e2 = ZoneEntry::new();
        e2.update(&iv(-3));
        m.push(e2);
        m.push(ZoneEntry::new());
        assert_eq!(m.file_entry().bounds, Some((iv(-3), iv(10))));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(ZoneMap::decode(&[]).is_err());
        assert!(ZoneEntry::decode(&[7]).is_err());
        // lo > hi
        let mut out = vec![1];
        put_length_prefixed(&mut out, &iv(9).encode());
        put_length_prefixed(&mut out, &iv(1).encode());
        assert!(ZoneEntry::decode(&out).is_err());
        // trailing bytes
        let mut m = ZoneMap::new();
        m.push(ZoneEntry::new());
        let mut enc = m.encode();
        enc.push(0);
        assert!(ZoneMap::decode(&enc).is_err());
    }

    fn arb_attr() -> impl Strategy<Value = AttrValue> {
        prop_oneof![
            any::<i64>().prop_map(AttrValue::Int),
            "[a-z]{0,12}".prop_map(AttrValue::Str),
        ]
    }

    proptest! {
        #[test]
        fn prop_zone_contains_all_updates(vals in proptest::collection::vec(arb_attr(), 1..50)) {
            let mut e = ZoneEntry::new();
            for v in &vals {
                e.update(v);
            }
            for v in &vals {
                prop_assert!(e.may_contain(v));
            }
            let min = vals.iter().min().unwrap();
            let max = vals.iter().max().unwrap();
            prop_assert_eq!(e.bounds.clone(), Some((min.clone(), max.clone())));
        }

        #[test]
        fn prop_map_roundtrip(blockvals in proptest::collection::vec(
            proptest::collection::vec(arb_attr(), 0..8), 0..12))
        {
            let mut m = ZoneMap::new();
            for vals in &blockvals {
                let mut e = ZoneEntry::new();
                for v in vals {
                    e.update(v);
                }
                m.push(e);
            }
            prop_assert_eq!(ZoneMap::decode(&m.encode()).unwrap(), m);
        }
    }
}
