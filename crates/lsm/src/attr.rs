//! Secondary-attribute values and extraction.
//!
//! The Embedded Index attaches bloom filters and zone maps for *secondary
//! attributes* to every data block. The storage engine itself is agnostic to
//! the record format: callers supply an [`AttrExtractor`] that pulls typed
//! attribute values out of a record's value bytes (the core crate implements
//! one over the JSON document model).
//!
//! [`AttrValue`] has a total order (integers before strings) and an
//! **order-preserving byte encoding** — the Composite stand-alone index
//! concatenates this encoding with the primary key so that a plain
//! byte-ordered range scan is a prefix scan on the secondary key.

use ldbpp_common::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// A typed secondary-attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AttrValue {
    /// 64-bit signed integer attribute (e.g. `CreationTime`).
    Int(i64),
    /// String attribute (e.g. `UserID`).
    Str(String),
}

impl AttrValue {
    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Self {
        AttrValue::Str(s.into())
    }

    /// The bytes hashed into secondary bloom filters.
    ///
    /// Uses the order-preserving encoding so that equal values hash equally
    /// regardless of how they were constructed.
    pub fn filter_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Order-preserving byte encoding.
    ///
    /// Layout: a type tag (`0x01` int, `0x02` string) followed by the
    /// payload. Integers are big-endian with the sign bit flipped so that
    /// unsigned byte comparison matches signed integer order; strings are
    /// raw UTF-8. Byte-wise comparison of two encodings orders exactly like
    /// [`Ord`] on `AttrValue` (ints sort before strings).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            AttrValue::Int(i) => {
                let mut out = Vec::with_capacity(9);
                out.push(0x01);
                out.extend_from_slice(&((*i as u64) ^ (1u64 << 63)).to_be_bytes());
                out
            }
            AttrValue::Str(s) => {
                let mut out = Vec::with_capacity(1 + s.len());
                out.push(0x02);
                out.extend_from_slice(s.as_bytes());
                out
            }
        }
    }

    /// Order-preserving, **self-terminating** encoding for use as the
    /// prefix of a composite key (`secondary ‖ primary`, the paper's
    /// Composite stand-alone index).
    ///
    /// Plain [`AttrValue::encode`] is not prefix-free for strings ("u1" is
    /// a prefix of "u10", so their composite entries would interleave), so
    /// here string payloads escape `0x00 → 0x00 0xFF` and terminate with
    /// `0x00 0x01`. Integers are fixed-width and need no terminator. The
    /// encoding remains order-preserving.
    pub fn encode_composite(&self) -> Vec<u8> {
        match self {
            AttrValue::Int(_) => self.encode(),
            AttrValue::Str(s) => {
                let bytes = s.as_bytes();
                let mut out = Vec::with_capacity(bytes.len() + 3);
                out.push(0x02);
                for &b in bytes {
                    out.push(b);
                    if b == 0x00 {
                        out.push(0xff);
                    }
                }
                out.push(0x00);
                out.push(0x01);
                out
            }
        }
    }

    /// Parse a composite key `encode_composite(attr) ‖ primary_key`,
    /// returning the attribute value and the primary-key remainder.
    pub fn decode_composite(bytes: &[u8]) -> Result<(AttrValue, &[u8])> {
        match bytes.first() {
            Some(0x01) => {
                if bytes.len() < 9 {
                    return Err(Error::corruption("short composite int"));
                }
                let raw = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
                Ok((AttrValue::Int((raw ^ (1u64 << 63)) as i64), &bytes[9..]))
            }
            Some(0x02) => {
                let mut s = Vec::new();
                let mut i = 1;
                loop {
                    let Some(&b) = bytes.get(i) else {
                        return Err(Error::corruption("unterminated composite string"));
                    };
                    if b == 0x00 {
                        match bytes.get(i + 1) {
                            Some(0xff) => {
                                s.push(0x00);
                                i += 2;
                            }
                            Some(0x01) => {
                                let s = String::from_utf8(s)
                                    .map_err(|_| Error::corruption("bad composite utf8"))?;
                                return Ok((AttrValue::Str(s), &bytes[i + 2..]));
                            }
                            _ => return Err(Error::corruption("bad composite escape")),
                        }
                    } else {
                        s.push(b);
                        i += 1;
                    }
                }
            }
            _ => Err(Error::corruption("bad composite type tag")),
        }
    }

    /// Decode an encoding produced by [`AttrValue::encode`].
    pub fn decode(bytes: &[u8]) -> Result<AttrValue> {
        match bytes.first() {
            Some(0x01) => {
                if bytes.len() != 9 {
                    return Err(Error::corruption("bad int attr encoding"));
                }
                let raw = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
                Ok(AttrValue::Int((raw ^ (1u64 << 63)) as i64))
            }
            Some(0x02) => {
                let s = std::str::from_utf8(&bytes[1..])
                    .map_err(|_| Error::corruption("bad str attr encoding"))?;
                Ok(AttrValue::Str(s.to_string()))
            }
            _ => Err(Error::corruption("bad attr type tag")),
        }
    }
}

impl PartialOrd for AttrValue {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AttrValue {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => a.cmp(b),
            (AttrValue::Str(a), AttrValue::Str(b)) => a.cmp(b),
            (AttrValue::Int(_), AttrValue::Str(_)) => Ordering::Less,
            (AttrValue::Str(_), AttrValue::Int(_)) => Ordering::Greater,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(i) => write!(f, "{i}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Extracts secondary-attribute values from record value bytes.
///
/// Called by the table builder for every record added to a data block so the
/// Embedded Index's per-block filters can be computed at SSTable-build time
/// (and hence never need updating — SSTables are immutable).
pub trait AttrExtractor: Send + Sync {
    /// Extract the value of attribute `attr` from the record's raw value.
    ///
    /// Returns `None` when the record has no such attribute (the record then
    /// simply does not participate in that attribute's filters).
    fn extract(&self, attr: &str, value: &[u8]) -> Option<AttrValue>;

    /// Extract several attributes at once. The default delegates to
    /// [`AttrExtractor::extract`] per attribute; implementations whose
    /// decoding dominates (e.g. JSON parsing) should override this to
    /// decode the record once — the table builder calls it for every
    /// record on every flush and compaction.
    fn extract_many(&self, attrs: &[String], value: &[u8]) -> Vec<Option<AttrValue>> {
        attrs.iter().map(|a| self.extract(a, value)).collect()
    }
}

/// An extractor that never finds attributes; used when a table carries no
/// embedded secondary metadata.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAttrs;

impl AttrExtractor for NoAttrs {
    fn extract(&self, _attr: &str, _value: &[u8]) -> Option<AttrValue> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encode_roundtrip() {
        for v in [
            AttrValue::Int(0),
            AttrValue::Int(i64::MIN),
            AttrValue::Int(i64::MAX),
            AttrValue::Int(-1),
            AttrValue::str(""),
            AttrValue::str("user42"),
            AttrValue::str("ünïcode"),
        ] {
            assert_eq!(AttrValue::decode(&v.encode()).unwrap(), v);
        }
    }

    #[test]
    fn int_encoding_orders_like_ints() {
        let vals = [i64::MIN, -100, -1, 0, 1, 99, i64::MAX];
        for w in vals.windows(2) {
            let a = AttrValue::Int(w[0]).encode();
            let b = AttrValue::Int(w[1]).encode();
            assert!(a < b, "{} should encode below {}", w[0], w[1]);
        }
    }

    #[test]
    fn cross_type_ordering() {
        assert!(AttrValue::Int(i64::MAX) < AttrValue::str(""));
        assert!(AttrValue::Int(i64::MAX).encode() < AttrValue::str("").encode());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(AttrValue::decode(&[]).is_err());
        assert!(AttrValue::decode(&[0x03, 1, 2]).is_err());
        assert!(AttrValue::decode(&[0x01, 1, 2]).is_err()); // short int
        assert!(AttrValue::decode(&[0x02, 0xff, 0xfe]).is_err()); // bad utf8
    }

    #[test]
    fn filter_bytes_equal_for_equal_values() {
        assert_eq!(
            AttrValue::str("u1").filter_bytes(),
            AttrValue::Str("u1".to_string()).filter_bytes()
        );
        assert_ne!(
            AttrValue::str("1").filter_bytes(),
            AttrValue::Int(1).filter_bytes()
        );
    }

    #[test]
    fn no_attrs_extractor() {
        assert!(NoAttrs.extract("UserID", b"{}").is_none());
    }

    fn arb_attr() -> impl Strategy<Value = AttrValue> {
        prop_oneof![
            any::<i64>().prop_map(AttrValue::Int),
            "[a-zA-Z0-9]{0,24}".prop_map(AttrValue::Str),
        ]
    }

    #[test]
    fn composite_roundtrip_with_pk() {
        for v in [
            AttrValue::Int(-5),
            AttrValue::Int(i64::MAX),
            AttrValue::str("u1"),
            AttrValue::str(""),
            AttrValue::str("has\0nul"),
        ] {
            let mut key = v.encode_composite();
            key.extend_from_slice(b"tweet42");
            let (got, pk) = AttrValue::decode_composite(&key).unwrap();
            assert_eq!(got, v);
            assert_eq!(pk, b"tweet42");
        }
    }

    #[test]
    fn composite_prefixes_do_not_collide() {
        // "u1" + pk must never parse as belonging to "u10".
        let mut k1 = AttrValue::str("u1").encode_composite();
        k1.extend_from_slice(b"zzz");
        let (a, _) = AttrValue::decode_composite(&k1).unwrap();
        assert_eq!(a, AttrValue::str("u1"));
        let p10 = AttrValue::str("u10").encode_composite();
        assert!(!k1.starts_with(&p10));
        assert!(!p10.starts_with(&AttrValue::str("u1").encode_composite()));
    }

    #[test]
    fn composite_groups_are_contiguous() {
        // All composite keys for one attr sort together: no key of another
        // attr falls between two keys of the same attr.
        let attrs = ["u1", "u10", "u1\u{0}x", "u2", ""];
        let pks = ["a", "z", "m"];
        let mut keys: Vec<(Vec<u8>, String)> = Vec::new();
        for a in attrs {
            for p in pks {
                let mut k = AttrValue::str(a).encode_composite();
                k.extend_from_slice(p.as_bytes());
                keys.push((k, a.to_string()));
            }
        }
        keys.sort();
        let order: Vec<&String> = keys.iter().map(|(_, a)| a).collect();
        let mut seen = Vec::new();
        for a in order {
            if seen.last() != Some(&a) {
                assert!(!seen.contains(&a), "attr {a:?} split into two groups");
                seen.push(a);
            }
        }
    }

    #[test]
    fn decode_composite_rejects_garbage() {
        assert!(AttrValue::decode_composite(&[]).is_err());
        assert!(AttrValue::decode_composite(&[0x09]).is_err());
        assert!(AttrValue::decode_composite(&[0x01, 1]).is_err());
        assert!(AttrValue::decode_composite(&[0x02, b'a']).is_err()); // unterminated
        assert!(AttrValue::decode_composite(&[0x02, 0x00, 0x07]).is_err()); // bad escape
    }

    proptest! {
        #[test]
        fn prop_roundtrip(v in arb_attr()) {
            prop_assert_eq!(AttrValue::decode(&v.encode()).unwrap(), v);
        }

        #[test]
        fn prop_encoding_is_order_preserving(a in arb_attr(), b in arb_attr()) {
            prop_assert_eq!(a.encode().cmp(&b.encode()), a.cmp(&b));
        }

        #[test]
        fn prop_composite_roundtrip(v in arb_attr(), pk in proptest::collection::vec(any::<u8>(), 0..16)) {
            let mut key = v.encode_composite();
            key.extend_from_slice(&pk);
            let (got, rest) = AttrValue::decode_composite(&key).unwrap();
            prop_assert_eq!(got, v);
            prop_assert_eq!(rest, &pk[..]);
        }

        #[test]
        fn prop_composite_order_preserving(a in arb_attr(), b in arb_attr()) {
            prop_assert_eq!(a.encode_composite().cmp(&b.encode_composite()), a.cmp(&b));
        }
    }
}
